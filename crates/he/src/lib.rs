//! # pds2-he
//!
//! Paillier additively homomorphic encryption — the **homomorphic
//! encryption** candidate from §III-B of the PDS² paper.
//!
//! The paper argues that HE "provide\[s\] confidentiality guarantees derived
//! from cryptographic principles" but "introduce\[s\] large overheads in the
//! computation … impractical for most applications". This crate makes that
//! claim measurable: it performs real Paillier arithmetic over the
//! workspace's own bignum library, so experiment E4 can compare plaintext,
//! HE, SMC and TEE inference on equal footing.
//!
//! Supported operations (the additive subset relevant to linear workloads):
//!
//! - `Enc(a) ⊕ Enc(b) = Enc(a + b)` — [`PublicKey::add`]
//! - `Enc(a) ⊗ k = Enc(a · k)` — [`PublicKey::mul_plain`]
//! - encrypted dot products for linear-model inference — [`encrypted_dot`]
//!
//! Signed values are encoded into `Z_n` by modular wrap-around
//! ([`PublicKey::encode_signed`] / [`PrivateKey::decode_signed`]); real
//! features use fixed-point scaling ([`fixed`]).

use pds2_crypto::bigint::BigUint;
use rand::Rng;

/// Fixed-point helpers for carrying `f64` features through `Z_n`.
pub mod fixed {
    /// Default fixed-point scale (2^20 ≈ 1e6 resolution).
    pub const SCALE: f64 = 1_048_576.0;

    /// Converts an `f64` into a scaled integer.
    pub fn to_fixed(v: f64) -> i64 {
        (v * SCALE).round() as i64
    }

    /// Converts a scaled integer back to `f64`.
    pub fn from_fixed(v: i64) -> f64 {
        v as f64 / SCALE
    }

    /// Undoes the double scaling after a fixed-point multiplication.
    pub fn from_fixed_product(v: i64) -> f64 {
        v as f64 / (SCALE * SCALE)
    }
}

/// A Paillier public key `(n, n²)` with `g = n + 1` implied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    /// Modulus `n = p·q`.
    pub n: BigUint,
    n_squared: BigUint,
    half_n: BigUint,
}

/// A Paillier private key (Carmichael value λ and precomputed μ).
#[derive(Clone)]
pub struct PrivateKey {
    /// Matching public key.
    pub public: PublicKey,
    lambda: BigUint,
    mu: BigUint,
}

impl std::fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PrivateKey(n={} bits, <redacted>)", self.public.n.bits())
    }
}

/// A Paillier ciphertext (element of `Z_{n²}*`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext(BigUint);

impl Ciphertext {
    /// Raw group element (for serialization / size accounting).
    pub fn value(&self) -> &BigUint {
        &self.0
    }

    /// Ciphertext size in bytes (for communication accounting in E4).
    pub fn byte_len(&self) -> usize {
        self.0.to_bytes_be().len()
    }
}

/// Errors from key generation or decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeError {
    /// Requested modulus is too small to be useful.
    KeyTooSmall,
    /// A plaintext fell outside `Z_n`.
    PlaintextOutOfRange,
    /// Ciphertext failed the `Z_{n²}` membership check.
    CiphertextOutOfRange,
}

impl std::fmt::Display for HeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeError::KeyTooSmall => write!(f, "modulus must be at least 32 bits"),
            HeError::PlaintextOutOfRange => write!(f, "plaintext out of range for modulus"),
            HeError::CiphertextOutOfRange => write!(f, "ciphertext out of range"),
        }
    }
}

impl std::error::Error for HeError {}

/// Generates a Paillier key pair with an `n_bits`-bit modulus.
///
/// `n_bits = 512` is comfortable for tests; benchmarks sweep larger sizes.
pub fn generate_keypair<R: Rng + ?Sized>(rng: &mut R, n_bits: u32) -> Result<PrivateKey, HeError> {
    if n_bits < 32 {
        return Err(HeError::KeyTooSmall);
    }
    let half = n_bits / 2;
    loop {
        let p = BigUint::random_prime(rng, half);
        let q = BigUint::random_prime(rng, n_bits - half);
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        let p1 = p.sub(&BigUint::one());
        let q1 = q.sub(&BigUint::one());
        let phi = p1.mul(&q1);
        // gcd(n, φ(n)) must be 1; guaranteed for distinct same-size primes,
        // but check anyway.
        if !n.gcd(&phi).is_one() {
            continue;
        }
        // λ = lcm(p-1, q-1)
        let lambda = phi.divrem(&p1.gcd(&q1)).0;
        let n_squared = n.mul(&n);
        // μ = (L(g^λ mod n²))^{-1} mod n with g = n+1:
        // g^λ = (1+n)^λ = 1 + λ·n (mod n²), so L(g^λ) = λ mod n.
        let mu = match lambda.rem(&n).modinv(&n) {
            Some(m) => m,
            None => continue,
        };
        let half_n = n.shr(1);
        return Ok(PrivateKey {
            public: PublicKey {
                n,
                n_squared,
                half_n,
            },
            lambda,
            mu,
        });
    }
}

impl PublicKey {
    /// Modulus bit length.
    pub fn bits(&self) -> u32 {
        self.n.bits()
    }

    /// Encrypts a plaintext in `Z_n`.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        m: &BigUint,
    ) -> Result<Ciphertext, HeError> {
        if m.cmp_val(&self.n) != std::cmp::Ordering::Less {
            return Err(HeError::PlaintextOutOfRange);
        }
        // r uniform in Z_n*, i.e. gcd(r, n) = 1.
        let r = loop {
            let candidate = BigUint::random_below(rng, &self.n);
            if !candidate.is_zero() && candidate.gcd(&self.n).is_one() {
                break candidate;
            }
        };
        // c = (1+n)^m · r^n mod n² = (1 + m·n) · r^n mod n².
        let g_m = BigUint::one().add(&m.mul(&self.n).rem(&self.n_squared));
        let r_n = r.modpow(&self.n, &self.n_squared);
        Ok(Ciphertext(g_m.mul_mod(&r_n, &self.n_squared)))
    }

    /// Encrypts a signed 64-bit integer via wrap-around encoding.
    pub fn encrypt_signed<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        v: i64,
    ) -> Result<Ciphertext, HeError> {
        let m = self.encode_signed(v)?;
        self.encrypt(rng, &m)
    }

    /// Maps a signed integer into `Z_n` (negatives as `n - |v|`).
    pub fn encode_signed(&self, v: i64) -> Result<BigUint, HeError> {
        let mag = BigUint::from_u64(v.unsigned_abs());
        if mag.cmp_val(&self.half_n) != std::cmp::Ordering::Less {
            return Err(HeError::PlaintextOutOfRange);
        }
        Ok(if v < 0 { self.n.sub(&mag) } else { mag })
    }

    /// Homomorphic addition: `Enc(a) ⊕ Enc(b) = Enc(a + b mod n)`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        Ciphertext(a.0.mul_mod(&b.0, &self.n_squared))
    }

    /// Homomorphic plaintext multiplication: `Enc(a) ⊗ k = Enc(a·k mod n)`.
    pub fn mul_plain(&self, a: &Ciphertext, k: &BigUint) -> Ciphertext {
        Ciphertext(a.0.modpow(k, &self.n_squared))
    }

    /// Homomorphic multiplication by a signed plaintext.
    pub fn mul_plain_signed(&self, a: &Ciphertext, k: i64) -> Result<Ciphertext, HeError> {
        let enc = self.encode_signed(k)?;
        Ok(self.mul_plain(a, &enc))
    }

    /// A trivial (deterministic) encryption of zero, used as the additive
    /// identity when folding.
    pub fn zero_ciphertext(&self) -> Ciphertext {
        Ciphertext(BigUint::one())
    }
}

impl PrivateKey {
    /// Decrypts a ciphertext to its plaintext residue in `Z_n`.
    pub fn decrypt(&self, c: &Ciphertext) -> Result<BigUint, HeError> {
        let pk = &self.public;
        if c.0.is_zero() || c.0.cmp_val(&pk.n_squared) != std::cmp::Ordering::Less {
            return Err(HeError::CiphertextOutOfRange);
        }
        // m = L(c^λ mod n²) · μ mod n, L(x) = (x - 1) / n.
        let x = c.0.modpow(&self.lambda, &pk.n_squared);
        let l = x.sub(&BigUint::one()).divrem(&pk.n).0;
        Ok(l.mul_mod(&self.mu, &pk.n))
    }

    /// Decrypts and decodes a wrap-around signed integer.
    pub fn decrypt_signed(&self, c: &Ciphertext) -> Result<i64, HeError> {
        let m = self.decrypt(c)?;
        self.decode_signed(&m)
    }

    /// Decodes a `Z_n` residue into a signed integer.
    pub fn decode_signed(&self, m: &BigUint) -> Result<i64, HeError> {
        let pk = &self.public;
        if m.cmp_val(&pk.half_n) == std::cmp::Ordering::Less {
            m.to_u64()
                .and_then(|v| i64::try_from(v).ok())
                .ok_or(HeError::PlaintextOutOfRange)
        } else {
            let mag = pk.n.sub(m);
            mag.to_u64()
                .and_then(|v| i64::try_from(v).ok())
                .map(|v| -v)
                .ok_or(HeError::PlaintextOutOfRange)
        }
    }
}

/// Computes `Enc(Σ wᵢ·xᵢ)` from encrypted weights and plaintext features.
///
/// This is the HE inference kernel of experiment E4: the data consumer's
/// model weights stay encrypted; the party holding the features performs
/// `d` ciphertext exponentiations and `d-1` ciphertext multiplications.
pub fn encrypted_dot(
    pk: &PublicKey,
    encrypted_weights: &[Ciphertext],
    features: &[i64],
) -> Result<Ciphertext, HeError> {
    assert_eq!(
        encrypted_weights.len(),
        features.len(),
        "dimension mismatch"
    );
    let mut acc = pk.zero_ciphertext();
    for (w, &x) in encrypted_weights.iter().zip(features) {
        if x == 0 {
            continue;
        }
        let term = pk.mul_plain_signed(w, x)?;
        acc = pk.add(&acc, &term);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(bits: u32, seed: u64) -> PrivateKey {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_keypair(&mut rng, bits).unwrap()
    }

    #[test]
    fn keygen_rejects_tiny_modulus() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            generate_keypair(&mut rng, 16).unwrap_err(),
            HeError::KeyTooSmall
        );
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let sk = key(128, 1);
        let mut rng = StdRng::seed_from_u64(2);
        for v in [0u64, 1, 42, 1_000_000, u32::MAX as u64] {
            let m = BigUint::from_u64(v);
            let c = sk.public.encrypt(&mut rng, &m).unwrap();
            assert_eq!(sk.decrypt(&c).unwrap(), m, "v={v}");
        }
    }

    #[test]
    fn encryption_is_probabilistic() {
        let sk = key(128, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let m = BigUint::from_u64(7);
        let c1 = sk.public.encrypt(&mut rng, &m).unwrap();
        let c2 = sk.public.encrypt(&mut rng, &m).unwrap();
        assert_ne!(c1, c2, "same plaintext must yield different ciphertexts");
        assert_eq!(sk.decrypt(&c1).unwrap(), sk.decrypt(&c2).unwrap());
    }

    #[test]
    fn homomorphic_addition() {
        let sk = key(128, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let a = sk
            .public
            .encrypt(&mut rng, &BigUint::from_u64(100))
            .unwrap();
        let b = sk.public.encrypt(&mut rng, &BigUint::from_u64(23)).unwrap();
        let sum = sk.public.add(&a, &b);
        assert_eq!(sk.decrypt(&sum).unwrap(), BigUint::from_u64(123));
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let sk = key(128, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let a = sk.public.encrypt(&mut rng, &BigUint::from_u64(9)).unwrap();
        let c = sk.public.mul_plain(&a, &BigUint::from_u64(11));
        assert_eq!(sk.decrypt(&c).unwrap(), BigUint::from_u64(99));
    }

    #[test]
    fn signed_roundtrip() {
        let sk = key(128, 9);
        let mut rng = StdRng::seed_from_u64(10);
        for v in [-1_000_000i64, -1, 0, 1, 987654] {
            let c = sk.public.encrypt_signed(&mut rng, v).unwrap();
            assert_eq!(sk.decrypt_signed(&c).unwrap(), v, "v={v}");
        }
    }

    #[test]
    fn signed_arithmetic() {
        let sk = key(128, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let a = sk.public.encrypt_signed(&mut rng, -5).unwrap();
        let b = sk.public.encrypt_signed(&mut rng, 3).unwrap();
        let sum = sk.public.add(&a, &b);
        assert_eq!(sk.decrypt_signed(&sum).unwrap(), -2);
        let prod = sk.public.mul_plain_signed(&a, -4).unwrap();
        assert_eq!(sk.decrypt_signed(&prod).unwrap(), 20);
    }

    #[test]
    fn encrypted_dot_product() {
        let sk = key(160, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let weights = [3i64, -2, 0, 7];
        let features = [10i64, 5, 999, -1];
        let enc_w: Vec<Ciphertext> = weights
            .iter()
            .map(|&w| sk.public.encrypt_signed(&mut rng, w).unwrap())
            .collect();
        let dot = encrypted_dot(&sk.public, &enc_w, &features).unwrap();
        let expected: i64 = weights.iter().zip(&features).map(|(w, x)| w * x).sum();
        assert_eq!(sk.decrypt_signed(&dot).unwrap(), expected);
    }

    #[test]
    fn plaintext_out_of_range_rejected() {
        let sk = key(64, 15);
        let mut rng = StdRng::seed_from_u64(16);
        let too_big = sk.public.n.clone();
        assert_eq!(
            sk.public.encrypt(&mut rng, &too_big).unwrap_err(),
            HeError::PlaintextOutOfRange
        );
    }

    #[test]
    fn ciphertext_out_of_range_rejected() {
        let sk = key(64, 17);
        let big = Ciphertext(sk.public.n.mul(&sk.public.n));
        assert_eq!(sk.decrypt(&big).unwrap_err(), HeError::CiphertextOutOfRange);
        assert_eq!(
            sk.decrypt(&Ciphertext(BigUint::zero())).unwrap_err(),
            HeError::CiphertextOutOfRange
        );
    }

    #[test]
    fn fixed_point_helpers() {
        use super::fixed::*;
        let x = 2.348712;
        let f = to_fixed(x);
        assert!((from_fixed(f) - x).abs() < 1e-5);
        // Product of two fixed-point values carries double scale.
        let a = to_fixed(1.5);
        let b = to_fixed(-2.0);
        assert!((from_fixed_product(a * b) - -3.0).abs() < 1e-5);
    }

    #[test]
    fn deterministic_keygen_from_seed() {
        let sk1 = key(96, 42);
        let sk2 = key(96, 42);
        assert_eq!(sk1.public, sk2.public);
    }

    #[test]
    fn larger_modulus_roundtrip() {
        // 512-bit key exercises multi-limb paths end to end.
        let sk = key(512, 18);
        let mut rng = StdRng::seed_from_u64(19);
        let m = BigUint::from_u128(0xdead_beef_cafe_babe_0123_4567_89ab_cdef);
        let c = sk.public.encrypt(&mut rng, &m).unwrap();
        assert_eq!(sk.decrypt(&c).unwrap(), m);
        assert!(c.byte_len() >= 100, "512-bit key -> ~128-byte ciphertexts");
    }
}
