//! # pds2-net
//!
//! A deterministic discrete-event network simulator: the substrate under
//! the decentralized-learning experiments (E5/E6). Protocols implement the
//! [`Node`] trait; the [`Simulator`] owns the virtual clock, delivers
//! messages through a configurable [`LinkModel`] (latency, bandwidth,
//! jitter, loss, per-node slowdown) and injects churn.
//!
//! Everything is seeded: the same seed reproduces the same event trace,
//! which the integration tests assert.

//! Chaos engineering: [`fault::FaultPlan`] compiles seeded fault
//! schedules — partitions, byzantine links, crash-recovery, typed
//! censorship — into the same event queue, replaying bit-identically
//! from the seed.

//! Scale: the event queue is a hierarchical timing wheel
//! ([`sched::TimingWheel`], with the original heap retained as a
//! differential oracle behind `PDS2_NET_SCHED=heap`), and
//! [`topology::Topology`] derives per-node attributes, regional
//! latencies, churn traces and arrival schedules from `hash(seed,
//! node_id)` instead of materialized vectors — 100k+-node scenarios run
//! in cache-resident state (`bench_scale`, E19).

pub mod fault;
pub mod link;
pub mod sched;
pub mod sim;
pub mod topology;

pub use fault::{
    CrashSpec, FaultPlan, LinkEffect, LinkFault, LinkScope, PartitionSpec, TypedDrop, Window,
};
pub use link::LinkModel;
pub use sched::{EventQueue, SchedulerKind, TimingWheel};
pub use sim::{Ctx, NetStats, Node, NodeId, SimTime, Simulator};
pub use topology::{ArrivalGen, ArrivalPattern, ChurnModel, Topology};
