//! Generator-backed topologies: per-node attributes, regional latency,
//! churn traces and arrival schedules derived on demand from
//! `hash(seed, node_id)` instead of materialized per-node vectors.
//!
//! At 100k+ nodes, storing per-node link state (the old
//! `LinkModel::node_slowdown` vector, explicit churn schedules, per-node
//! load curves) costs memory and — worse — setup time that scales with
//! the fleet. A [`Topology`] stores only a seed plus an r×r regional
//! latency matrix; everything per-node (region, slowdown, churn
//! sessions, arrival jitter) is a couple of integer hashes away. Two
//! simulators built from the same `(seed, matrix)` agree on every
//! attribute without exchanging any state, which keeps the wheel-vs-heap
//! and thread-invariance differential checks cheap at any scale.
//!
//! All derived quantities use integer arithmetic only (fixed-point in
//! 1/1024ths where fractions are needed), so delivery times are
//! platform-independent by construction.

use crate::fault::CrashSpec;
use crate::sim::{NodeId, SimTime};

const DOMAIN_REGION: u64 = 0x7031_5245_4749_4f4e; // "REGION" tag
const DOMAIN_SLOW: u64 = 0x7032_534c_4f57_444e; // "SLOWDN" tag
const DOMAIN_CHURN: u64 = 0x7033_4348_5552_4e00; // "CHURN" tag
const DOMAIN_ARRIVAL: u64 = 0x7034_4152_5249_5645; // "ARRIVE" tag

/// splitmix64 finalizer: the stateless hash behind every derived
/// attribute.
#[inline]
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded two-input hash: `node` attributes under a domain tag.
#[inline]
fn node_hash(seed: u64, domain: u64, node: u64) -> u64 {
    mix(mix(seed ^ domain) ^ node)
}

/// A generator-backed network topology: regions with a pairwise base
/// latency matrix, plus hash-derived per-node region assignment and
/// slowdown. No per-node storage — attributes are recomputed on demand.
#[derive(Clone, Debug)]
pub struct Topology {
    seed: u64,
    /// Cumulative region weights for weighted node→region assignment.
    cum_weights: Vec<u64>,
    total_weight: u64,
    /// Row-major r×r one-way base latency in µs.
    latency_us: Vec<u64>,
    n_regions: usize,
    /// Per-node slowdown is hash-uniform in `[min, max]`, in 1/1024ths
    /// (1024 = no slowdown).
    slow_min_x1024: u64,
    slow_max_x1024: u64,
}

impl Topology {
    /// A topology over `weights.len()` regions. `weights[r]` is the
    /// relative share of nodes assigned to region `r`;
    /// `latency_us[a][b]` is the one-way base latency from region `a`
    /// to region `b` in microseconds.
    pub fn regional(seed: u64, weights: &[u64], latency_us: &[Vec<u64>]) -> Topology {
        let r = weights.len();
        assert!(r > 0, "at least one region");
        assert_eq!(latency_us.len(), r, "latency matrix must be r x r");
        let mut flat = Vec::with_capacity(r * r);
        for row in latency_us {
            assert_eq!(row.len(), r, "latency matrix must be r x r");
            flat.extend_from_slice(row);
        }
        let mut cum = Vec::with_capacity(r);
        let mut total = 0u64;
        for &w in weights {
            assert!(w > 0, "region weights must be positive");
            total += w;
            cum.push(total);
        }
        Topology {
            seed,
            cum_weights: cum,
            total_weight: total,
            latency_us: flat,
            n_regions: r,
            slow_min_x1024: 1024,
            slow_max_x1024: 1024,
        }
    }

    /// A five-region WAN preset (NA / EU / APAC / SA / AF) with
    /// continent-scale one-way latencies and population-skewed weights.
    pub fn five_continents(seed: u64) -> Topology {
        let lat = |ms: u64| ms * 1_000;
        let m = vec![
            vec![lat(15), lat(45), lat(75), lat(65), lat(85)],
            vec![lat(45), lat(10), lat(90), lat(95), lat(55)],
            vec![lat(75), lat(90), lat(20), lat(140), lat(110)],
            vec![lat(65), lat(95), lat(140), lat(25), lat(120)],
            vec![lat(85), lat(55), lat(110), lat(120), lat(30)],
        ];
        Topology::regional(seed, &[30, 25, 25, 12, 8], &m)
    }

    /// Gives nodes a hash-uniform slowdown in `[min, max]` (1/1024ths;
    /// both at least 1024). Models heterogeneous device speeds without
    /// a per-node vector.
    pub fn with_slowdown_spread(mut self, min_x1024: u64, max_x1024: u64) -> Topology {
        assert!(
            (1024..=max_x1024).contains(&min_x1024),
            "need 1024 <= min <= max"
        );
        self.slow_min_x1024 = min_x1024;
        self.slow_max_x1024 = max_x1024;
        self
    }

    /// Number of regions.
    pub fn n_regions(&self) -> usize {
        self.n_regions
    }

    /// The region `node` is assigned to (hash-derived, weight-skewed).
    pub fn region_of(&self, node: NodeId) -> usize {
        let h = node_hash(self.seed, DOMAIN_REGION, node as u64) % self.total_weight;
        self.cum_weights.partition_point(|&c| c <= h)
    }

    /// One-way base latency between the regions of `from` and `to`.
    pub fn base_latency_us(&self, from: NodeId, to: NodeId) -> u64 {
        self.latency_us[self.region_of(from) * self.n_regions + self.region_of(to)]
    }

    /// `node`'s speed multiplier in 1/1024ths (≥ 1024; 1024 = full
    /// speed), hash-uniform in the configured spread.
    pub fn slowdown_x1024(&self, node: NodeId) -> u64 {
        let span = self.slow_max_x1024 - self.slow_min_x1024;
        if span == 0 {
            return self.slow_min_x1024;
        }
        self.slow_min_x1024 + node_hash(self.seed, DOMAIN_SLOW, node as u64) % (span + 1)
    }
}

/// A mobile-churn generator: a hash-selected fraction of the fleet
/// alternates up/down sessions with hash-jittered durations, compiled
/// into the [`CrashSpec`] list the fault plan already understands.
#[derive(Clone, Copy, Debug)]
pub struct ChurnModel {
    /// Sessions are generated up to this horizon (µs).
    pub horizon_us: SimTime,
    /// Mean up-session length (µs); actual sessions are hash-uniform in
    /// `[mean/2, 3*mean/2)`.
    pub mean_uptime_us: SimTime,
    /// Mean down-session length (µs), jittered the same way.
    pub mean_downtime_us: SimTime,
    /// Fraction of nodes that churn at all, in 1/1024ths.
    pub churn_fraction_x1024: u64,
}

impl ChurnModel {
    /// Compiles the churn trace for an `n_nodes` fleet under `seed`.
    /// Deterministic in `(seed, model, n_nodes)`; feed the result to
    /// [`crate::fault::FaultPlan::crashes_from`].
    pub fn trace(&self, seed: u64, n_nodes: usize) -> Vec<CrashSpec> {
        let mut out = Vec::new();
        let jitter = |h: u64, mean: SimTime| mean / 2 + h % mean.max(1);
        for node in 0..n_nodes {
            let h0 = node_hash(seed, DOMAIN_CHURN, node as u64);
            if h0 % 1024 >= self.churn_fraction_x1024 {
                continue;
            }
            let mut t = jitter(mix(h0 ^ 1), self.mean_uptime_us);
            let mut k = 2u64;
            while t < self.horizon_us {
                let down = jitter(mix(h0 ^ k), self.mean_downtime_us).max(1);
                out.push(CrashSpec {
                    node,
                    at: t,
                    recover_at: Some(t + down),
                });
                let up = jitter(mix(h0 ^ (k + 1)), self.mean_uptime_us).max(1);
                t = t + down + up;
                k += 2;
            }
        }
        out
    }
}

/// Workload arrival-rate shapes, modulating a mean inter-arrival time.
#[derive(Clone, Copy, Debug)]
pub enum ArrivalPattern {
    /// Flat offered load.
    Constant,
    /// Diurnal load curve: a triangle wave dipping to
    /// `trough_x1024/1024` of peak rate at phase 0 and back to peak at
    /// mid-period.
    Diurnal {
        /// Full day length (µs).
        period_us: u64,
        /// Trough rate as a fraction of peak, in 1/1024ths.
        trough_x1024: u64,
    },
    /// Flash crowd: rate jumps by `surge_x1024/1024` at `at_us` and
    /// decays linearly back to baseline over `decay_us`.
    FlashCrowd {
        /// Surge onset (µs).
        at_us: u64,
        /// Extra rate at onset, in 1/1024ths of baseline.
        surge_x1024: u64,
        /// Linear decay window (µs).
        decay_us: u64,
    },
}

/// A per-node arrival generator: hash-jittered inter-arrival delays
/// around a pattern-modulated mean. Stateless — the k-th delay of any
/// node is a pure function of `(seed, node, k, now)`.
#[derive(Clone, Copy, Debug)]
pub struct ArrivalGen {
    /// Seed for the per-arrival jitter hash.
    pub seed: u64,
    /// Baseline mean inter-arrival time per node (µs).
    pub mean_interval_us: u64,
    /// Rate modulation over simulated time.
    pub pattern: ArrivalPattern,
}

impl ArrivalGen {
    /// Instantaneous arrival rate at `t` as a multiple of baseline, in
    /// 1/1024ths.
    pub fn rate_x1024(&self, t: SimTime) -> u64 {
        match self.pattern {
            ArrivalPattern::Constant => 1024,
            ArrivalPattern::Diurnal {
                period_us,
                trough_x1024,
            } => {
                let period = period_us.max(2);
                let phase = t % period;
                let dist = phase.min(period - phase); // 0 at trough, period/2 at peak
                trough_x1024 + (1024 - trough_x1024.min(1024)) * 2 * dist / period
            }
            ArrivalPattern::FlashCrowd {
                at_us,
                surge_x1024,
                decay_us,
            } => {
                if t < at_us || t >= at_us + decay_us.max(1) {
                    1024
                } else {
                    let left = at_us + decay_us - t;
                    1024 + surge_x1024 * left / decay_us.max(1)
                }
            }
        }
    }

    /// Delay until `node`'s next arrival, where `k` counts that node's
    /// arrivals so far and `now` selects the rate. Hash-uniform in
    /// `[eff/2, 3*eff/2)` around the effective interval `eff`
    /// (baseline / rate).
    pub fn next_delay_us(&self, node: NodeId, k: u64, now: SimTime) -> u64 {
        let rate = self.rate_x1024(now).max(1);
        let eff = (self.mean_interval_us.saturating_mul(1024) / rate).max(2);
        let h = node_hash(self.seed, DOMAIN_ARRIVAL, mix(node as u64) ^ k);
        (eff / 2 + h % eff).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_deterministic_and_weight_skewed() {
        let t = Topology::five_continents(11);
        let n = 50_000;
        let mut counts = vec![0usize; t.n_regions()];
        for node in 0..n {
            let r = t.region_of(node);
            assert_eq!(r, t.region_of(node), "assignment must be stable");
            counts[r] += 1;
        }
        // Weights are [30, 25, 25, 12, 8] / 100: each region's share
        // should land within a few percent of its weight.
        let expect: [usize; 5] = [30, 25, 25, 12, 8];
        for (r, &c) in counts.iter().enumerate() {
            let pct = c * 100 / n;
            let want = expect[r];
            assert!(
                (want.saturating_sub(3)..=want + 3).contains(&pct),
                "region {r}: {pct}% vs weight {want}%"
            );
        }
    }

    #[test]
    fn latency_is_symmetric_per_preset_and_intra_region_is_cheapest() {
        let t = Topology::five_continents(3);
        for a in 0..200 {
            for b in 0..10 {
                assert_eq!(t.base_latency_us(a, b), t.base_latency_us(b, a));
            }
        }
        // Two nodes in the same region see the intra-region latency.
        let (mut a, mut b) = (0, 1);
        while t.region_of(a) != 0 {
            a += 1;
        }
        b = b.max(a + 1);
        while t.region_of(b) != 0 {
            b += 1;
        }
        assert_eq!(t.base_latency_us(a, b), 15_000);
    }

    #[test]
    fn slowdown_spread_is_bounded_and_stable() {
        let t = Topology::five_continents(5).with_slowdown_spread(1024, 8 * 1024);
        for node in 0..10_000 {
            let s = t.slowdown_x1024(node);
            assert!((1024..=8 * 1024).contains(&s));
            assert_eq!(s, t.slowdown_x1024(node));
        }
        // Default topology has no slowdown at all.
        let flat = Topology::five_continents(5);
        assert_eq!(flat.slowdown_x1024(123), 1024);
    }

    #[test]
    fn churn_trace_sessions_are_ordered_and_bounded() {
        let model = ChurnModel {
            horizon_us: 60_000_000,
            mean_uptime_us: 10_000_000,
            mean_downtime_us: 2_000_000,
            churn_fraction_x1024: 512, // ~half the fleet
        };
        let n = 2_000;
        let trace = model.trace(9, n);
        assert_eq!(trace, model.trace(9, n), "trace must be deterministic");
        let churners: std::collections::HashSet<usize> = trace.iter().map(|c| c.node).collect();
        assert!(
            (700..1300).contains(&churners.len()),
            "~half should churn, got {}",
            churners.len()
        );
        // Per node: sessions strictly ordered, downtime within
        // [mean/2, 3*mean/2), first crash no earlier than mean/2 uptime.
        for node in churners {
            let mut last_recover = 0;
            for c in trace.iter().filter(|c| c.node == node) {
                assert!(c.at >= last_recover);
                assert!(c.at < model.horizon_us);
                let rec = c.recover_at.expect("churn sessions always recover");
                let down = rec - c.at;
                assert!((1_000_000..3_000_000).contains(&down), "down={down}");
                last_recover = rec;
            }
        }
    }

    #[test]
    fn diurnal_rate_peaks_mid_period_and_flash_crowd_decays() {
        let d = ArrivalGen {
            seed: 1,
            mean_interval_us: 1_000_000,
            pattern: ArrivalPattern::Diurnal {
                period_us: 86_400_000_000,
                trough_x1024: 256,
            },
        };
        assert_eq!(d.rate_x1024(0), 256);
        assert_eq!(d.rate_x1024(43_200_000_000), 1024);
        assert!(d.rate_x1024(21_600_000_000) > 256);
        assert!(d.rate_x1024(21_600_000_000) < 1024);

        let f = ArrivalGen {
            seed: 1,
            mean_interval_us: 1_000_000,
            pattern: ArrivalPattern::FlashCrowd {
                at_us: 1_000_000,
                surge_x1024: 10 * 1024,
                decay_us: 2_000_000,
            },
        };
        assert_eq!(f.rate_x1024(0), 1024);
        assert_eq!(f.rate_x1024(1_000_000), 11 * 1024);
        let mid = f.rate_x1024(2_000_000);
        assert!((1024..11 * 1024).contains(&mid));
        assert_eq!(f.rate_x1024(3_000_001), 1024);
    }

    #[test]
    fn arrival_delays_track_the_rate() {
        let g = ArrivalGen {
            seed: 2,
            mean_interval_us: 1_000_000,
            pattern: ArrivalPattern::FlashCrowd {
                at_us: 10_000_000,
                surge_x1024: 9 * 1024, // 10x rate at onset
                decay_us: 1_000_000,
            },
        };
        // Baseline delays are uniform in [mean/2, 3*mean/2).
        for k in 0..100 {
            let d = g.next_delay_us(7, k, 0);
            assert!((500_000..1_500_000).contains(&d), "d={d}");
            assert_eq!(d, g.next_delay_us(7, k, 0));
        }
        // At the surge the effective interval is 10x shorter.
        for k in 0..100 {
            let d = g.next_delay_us(7, k, 10_000_000);
            assert!((50_000..150_000).contains(&d), "d={d}");
        }
    }
}
