//! Link models: latency, bandwidth, jitter, loss and node heterogeneity.

use crate::topology::Topology;
use rand::Rng;

/// Fixed-point scale for slowdown multipliers: 1024 = no slowdown.
pub const SLOWDOWN_ONE_X1024: u64 = 1024;

/// Parameters describing the network links between simulated nodes.
#[derive(Clone, Debug)]
pub struct LinkModel {
    /// Base one-way latency in microseconds (overridden per node pair
    /// when a [`Topology`] is attached).
    pub base_latency_us: u64,
    /// Uniform jitter added on top, in microseconds.
    pub jitter_us: u64,
    /// Link bandwidth in bytes per second (serialization delay).
    pub bandwidth_bytes_per_sec: u64,
    /// Probability that any message is silently lost.
    pub drop_probability: f64,
    /// Optional per-node speed multipliers (>1 = slower node). Models the
    /// "highly heterogeneous environments" of the gossip-learning papers
    /// the PDS² paper cites. Quantized to 1/1024ths before use so delay
    /// arithmetic is pure-integer; superseded by the topology's
    /// hash-derived slowdown when one is attached.
    pub node_slowdown: Vec<f64>,
    /// Optional generator-backed topology: per-pair base latency from a
    /// regional matrix and hash-derived per-node slowdown, no per-node
    /// storage. `None` keeps the flat single-latency model.
    pub topology: Option<Topology>,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            base_latency_us: 50_000, // 50 ms WAN-ish
            jitter_us: 10_000,
            bandwidth_bytes_per_sec: 1_250_000, // 10 Mbit/s
            drop_probability: 0.0,
            node_slowdown: Vec::new(),
            topology: None,
        }
    }
}

impl LinkModel {
    /// An idealized instantaneous network (for protocol-logic tests).
    pub fn instant() -> Self {
        LinkModel {
            base_latency_us: 1,
            jitter_us: 0,
            bandwidth_bytes_per_sec: u64::MAX,
            drop_probability: 0.0,
            node_slowdown: Vec::new(),
            topology: None,
        }
    }

    /// A WAN link model driven by a generator-backed [`Topology`]:
    /// per-pair base latency from the regional matrix, modest jitter,
    /// 10 Mbit/s links.
    pub fn regional(topology: Topology) -> Self {
        LinkModel {
            base_latency_us: 0, // unused: the topology supplies it
            jitter_us: 2_000,
            bandwidth_bytes_per_sec: 1_250_000,
            drop_probability: 0.0,
            node_slowdown: Vec::new(),
            topology: Some(topology),
        }
    }

    /// Samples the delivery delay for a message of `size_bytes` from
    /// `from` to `to`. All arithmetic is integer (slowdowns are applied
    /// in 1/1024th fixed point), so delays are platform-independent by
    /// construction.
    pub fn delay_us<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        from: usize,
        to: usize,
        size_bytes: u64,
    ) -> u64 {
        let jitter = if self.jitter_us > 0 {
            rng.random_range(0..=self.jitter_us)
        } else {
            0
        };
        let serialization = if self.bandwidth_bytes_per_sec == u64::MAX {
            0
        } else {
            size_bytes.saturating_mul(1_000_000) / self.bandwidth_bytes_per_sec.max(1)
        };
        let base = match &self.topology {
            Some(t) => t.base_latency_us(from, to),
            None => self.base_latency_us,
        };
        let slowdown = self.slowdown_x1024(from).max(self.slowdown_x1024(to));
        let raw = base + jitter + serialization;
        apply_slowdown(raw, slowdown)
    }

    /// Whether a message is dropped in transit.
    pub fn drops<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.drop_probability > 0.0 && rng.random::<f64>() < self.drop_probability
    }

    /// `node`'s slowdown in 1/1024ths (≥ 1024): the topology's
    /// hash-derived value when attached, otherwise the quantized
    /// `node_slowdown` entry.
    pub fn slowdown_x1024(&self, node: usize) -> u64 {
        if let Some(t) = &self.topology {
            return t.slowdown_x1024(node);
        }
        let s = self
            .node_slowdown
            .get(node)
            .copied()
            .unwrap_or(1.0)
            .max(1.0);
        quantize_slowdown(s)
    }
}

/// Quantizes an f64 slowdown multiplier to 1/1024ths (≥ 1024).
pub fn quantize_slowdown(s: f64) -> u64 {
    ((s.max(1.0) * SLOWDOWN_ONE_X1024 as f64) as u64).max(SLOWDOWN_ONE_X1024)
}

/// Applies a 1/1024th fixed-point slowdown to a raw delay.
#[inline]
pub fn apply_slowdown(raw_us: u64, slowdown_x1024: u64) -> u64 {
    raw_us.saturating_mul(slowdown_x1024) >> 10
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn instant_model_is_fast_and_lossless() {
        let m = LinkModel::instant();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.delay_us(&mut rng, 0, 1, 1_000_000), 1);
        assert!(!m.drops(&mut rng));
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let m = LinkModel {
            base_latency_us: 0,
            jitter_us: 0,
            bandwidth_bytes_per_sec: 1_000_000, // 1 MB/s
            drop_probability: 0.0,
            node_slowdown: Vec::new(),
            topology: None,
        };
        let mut rng = StdRng::seed_from_u64(1);
        // 1 MB at 1 MB/s = 1 second = 1e6 us.
        assert_eq!(m.delay_us(&mut rng, 0, 1, 1_000_000), 1_000_000);
        assert_eq!(m.delay_us(&mut rng, 0, 1, 500_000), 500_000);
    }

    #[test]
    fn slowdown_applies_to_either_endpoint() {
        let m = LinkModel {
            base_latency_us: 100,
            jitter_us: 0,
            bandwidth_bytes_per_sec: u64::MAX,
            drop_probability: 0.0,
            node_slowdown: vec![1.0, 3.0],
            topology: None,
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.delay_us(&mut rng, 0, 1, 0), 300);
        assert_eq!(m.delay_us(&mut rng, 1, 0, 0), 300);
        // Unlisted nodes default to 1.0.
        assert_eq!(m.delay_us(&mut rng, 0, 7, 0), 100);
    }

    #[test]
    fn fixed_point_matches_f64_for_exact_multipliers() {
        // Every multiplier expressible in 1/1024ths reproduces the old
        // f64 formula exactly; the proptest in `tests/proptests.rs`
        // covers arbitrary multipliers to within 1 tick.
        for s in [1.0, 1.5, 2.0, 3.0, 10.0, 50.0, 1000.0] {
            let q = quantize_slowdown(s);
            for raw in [0u64, 1, 99, 100_000, 1_000_000_000] {
                assert_eq!(
                    apply_slowdown(raw, q),
                    (raw as f64 * s) as u64,
                    "s={s} raw={raw}"
                );
            }
        }
    }

    #[test]
    fn topology_supplies_per_pair_latency() {
        use crate::topology::Topology;
        let m = LinkModel {
            jitter_us: 0,
            bandwidth_bytes_per_sec: u64::MAX,
            ..LinkModel::regional(Topology::five_continents(7))
        };
        let mut rng = StdRng::seed_from_u64(1);
        let t = m.topology.as_ref().unwrap();
        for (a, b) in [(0usize, 1usize), (2, 9), (17, 3)] {
            assert_eq!(m.delay_us(&mut rng, a, b, 0), t.base_latency_us(a, b));
        }
    }

    #[test]
    fn drop_probability_statistics() {
        let m = LinkModel {
            drop_probability: 0.3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let drops = (0..10_000).filter(|_| m.drops(&mut rng)).count();
        assert!((2500..3500).contains(&drops), "drops={drops}");
    }

    #[test]
    fn jitter_bounded() {
        let m = LinkModel {
            base_latency_us: 1000,
            jitter_us: 100,
            bandwidth_bytes_per_sec: u64::MAX,
            drop_probability: 0.0,
            node_slowdown: Vec::new(),
            topology: None,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let d = m.delay_us(&mut rng, 0, 1, 0);
            assert!((1000..=1100).contains(&d));
        }
    }
}
