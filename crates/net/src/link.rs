//! Link models: latency, bandwidth, jitter, loss and node heterogeneity.

use rand::Rng;

/// Parameters describing the network links between simulated nodes.
#[derive(Clone, Debug)]
pub struct LinkModel {
    /// Base one-way latency in microseconds.
    pub base_latency_us: u64,
    /// Uniform jitter added on top, in microseconds.
    pub jitter_us: u64,
    /// Link bandwidth in bytes per second (serialization delay).
    pub bandwidth_bytes_per_sec: u64,
    /// Probability that any message is silently lost.
    pub drop_probability: f64,
    /// Optional per-node speed multipliers (>1 = slower node). Models the
    /// "highly heterogeneous environments" of the gossip-learning papers
    /// the PDS² paper cites.
    pub node_slowdown: Vec<f64>,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            base_latency_us: 50_000, // 50 ms WAN-ish
            jitter_us: 10_000,
            bandwidth_bytes_per_sec: 1_250_000, // 10 Mbit/s
            drop_probability: 0.0,
            node_slowdown: Vec::new(),
        }
    }
}

impl LinkModel {
    /// An idealized instantaneous network (for protocol-logic tests).
    pub fn instant() -> Self {
        LinkModel {
            base_latency_us: 1,
            jitter_us: 0,
            bandwidth_bytes_per_sec: u64::MAX,
            drop_probability: 0.0,
            node_slowdown: Vec::new(),
        }
    }

    /// Samples the delivery delay for a message of `size_bytes` from
    /// `from` to `to`.
    pub fn delay_us<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        from: usize,
        to: usize,
        size_bytes: u64,
    ) -> u64 {
        let jitter = if self.jitter_us > 0 {
            rng.random_range(0..=self.jitter_us)
        } else {
            0
        };
        let serialization = if self.bandwidth_bytes_per_sec == u64::MAX {
            0
        } else {
            size_bytes.saturating_mul(1_000_000) / self.bandwidth_bytes_per_sec.max(1)
        };
        let slowdown = self.slowdown(from).max(self.slowdown(to));
        let raw = self.base_latency_us + jitter + serialization;
        (raw as f64 * slowdown) as u64
    }

    /// Whether a message is dropped in transit.
    pub fn drops<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.drop_probability > 0.0 && rng.random::<f64>() < self.drop_probability
    }

    fn slowdown(&self, node: usize) -> f64 {
        self.node_slowdown
            .get(node)
            .copied()
            .unwrap_or(1.0)
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn instant_model_is_fast_and_lossless() {
        let m = LinkModel::instant();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.delay_us(&mut rng, 0, 1, 1_000_000), 1);
        assert!(!m.drops(&mut rng));
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let m = LinkModel {
            base_latency_us: 0,
            jitter_us: 0,
            bandwidth_bytes_per_sec: 1_000_000, // 1 MB/s
            drop_probability: 0.0,
            node_slowdown: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(1);
        // 1 MB at 1 MB/s = 1 second = 1e6 us.
        assert_eq!(m.delay_us(&mut rng, 0, 1, 1_000_000), 1_000_000);
        assert_eq!(m.delay_us(&mut rng, 0, 1, 500_000), 500_000);
    }

    #[test]
    fn slowdown_applies_to_either_endpoint() {
        let m = LinkModel {
            base_latency_us: 100,
            jitter_us: 0,
            bandwidth_bytes_per_sec: u64::MAX,
            drop_probability: 0.0,
            node_slowdown: vec![1.0, 3.0],
        };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.delay_us(&mut rng, 0, 1, 0), 300);
        assert_eq!(m.delay_us(&mut rng, 1, 0, 0), 300);
        // Unlisted nodes default to 1.0.
        assert_eq!(m.delay_us(&mut rng, 0, 7, 0), 100);
    }

    #[test]
    fn drop_probability_statistics() {
        let m = LinkModel {
            drop_probability: 0.3,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let drops = (0..10_000).filter(|_| m.drops(&mut rng)).count();
        assert!((2500..3500).contains(&drops), "drops={drops}");
    }

    #[test]
    fn jitter_bounded() {
        let m = LinkModel {
            base_latency_us: 1000,
            jitter_us: 100,
            bandwidth_bytes_per_sec: u64::MAX,
            drop_probability: 0.0,
            node_slowdown: Vec::new(),
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let d = m.delay_us(&mut rng, 0, 1, 0);
            assert!((1000..=1100).contains(&d));
        }
    }
}
