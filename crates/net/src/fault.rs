//! Deterministic fault plans: the chaos-engineering substrate.
//!
//! A [`FaultPlan`] is a declarative, *seeded* description of everything
//! that goes wrong in a simulation run — network partitions that split
//! and heal, byzantine links that corrupt, duplicate or reorder traffic,
//! crash-stop/crash-recovery of nodes, and targeted drops of specific
//! message types. Installing the same plan into the same simulator twice
//! replays the exact same fault schedule bit-for-bit: fault randomness
//! comes from a dedicated RNG seeded by the plan (so adding a fault
//! never perturbs the protocol RNG stream), and every probabilistic
//! decision is drawn in deterministic event order.
//!
//! Fault semantics:
//!
//! * **Partition** — while a partition window is active, messages whose
//!   endpoints sit in different groups are destroyed, both at send time
//!   and (for messages already in flight when the split happens) at
//!   delivery time. Nodes not listed in any group are unaffected.
//! * **Byzantine link** — a [`LinkEffect`] applies to matching messages
//!   at send time: silent drop, in-flight corruption (via
//!   [`Node::corrupt_msg`]), duplication, or reordering far beyond
//!   ordinary jitter.
//! * **Crash** — unlike the benign churn of
//!   [`Simulator::schedule_outage`], a crash invokes
//!   [`Node::on_crash`] (volatile state is lost) and a recovery invokes
//!   [`Node::on_recover`] so the protocol can re-arm timers and resync.
//! * **Typed drop** — drops messages whose [`Node::msg_kind`] matches,
//!   modelling an adversary that censors e.g. catch-up responses.
//!
//! [`Node::corrupt_msg`]: crate::Node::corrupt_msg
//! [`Node::on_crash`]: crate::Node::on_crash
//! [`Node::on_recover`]: crate::Node::on_recover
//! [`Node::msg_kind`]: crate::Node::msg_kind
//! [`Simulator::schedule_outage`]: crate::Simulator::schedule_outage

use crate::sim::{NodeId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A half-open fault window `[from, until)` in simulated microseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// First microsecond the fault is active.
    pub from: SimTime,
    /// First microsecond the fault is no longer active.
    pub until: SimTime,
}

impl Window {
    /// A window covering `[from, until)`.
    pub fn new(from: SimTime, until: SimTime) -> Window {
        Window { from, until }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// Which directed links a fault applies to (`None` = wildcard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkScope {
    /// Restrict to messages sent by this node.
    pub from: Option<NodeId>,
    /// Restrict to messages addressed to this node.
    pub to: Option<NodeId>,
}

impl LinkScope {
    /// Every link in the simulation.
    pub fn any() -> LinkScope {
        LinkScope::default()
    }

    /// Every message sent by `node`.
    pub fn from_node(node: NodeId) -> LinkScope {
        LinkScope {
            from: Some(node),
            to: None,
        }
    }

    /// Every message addressed to `node`.
    pub fn to_node(node: NodeId) -> LinkScope {
        LinkScope {
            from: None,
            to: Some(node),
        }
    }

    /// The single directed link `from → to`.
    pub fn link(from: NodeId, to: NodeId) -> LinkScope {
        LinkScope {
            from: Some(from),
            to: Some(to),
        }
    }

    fn matches(&self, from: NodeId, to: NodeId) -> bool {
        self.from.is_none_or(|f| f == from) && self.to.is_none_or(|t| t == to)
    }
}

/// Byzantine behaviour applied to messages crossing a faulty link.
#[derive(Clone, Copy, Debug)]
pub enum LinkEffect {
    /// Silently destroy the message with the given probability.
    Drop {
        /// Per-message drop probability.
        probability: f64,
    },
    /// Corrupt the message in flight via [`crate::Node::corrupt_msg`];
    /// messages the protocol cannot represent as corrupted are destroyed.
    Corrupt {
        /// Per-message corruption probability.
        probability: f64,
    },
    /// Deliver the message twice, the copy arriving `extra_delay_us`
    /// later.
    Duplicate {
        /// Per-message duplication probability.
        probability: f64,
        /// Additional delay of the duplicate copy.
        extra_delay_us: u64,
    },
    /// Add a uniform extra delay in `[0, max_extra_delay_us]`, reordering
    /// traffic far beyond the link model's jitter.
    Reorder {
        /// Per-message reorder probability.
        probability: f64,
        /// Maximum extra delay added to a reordered message.
        max_extra_delay_us: u64,
    },
}

/// A [`LinkEffect`] active on a set of links during a window.
#[derive(Clone, Debug)]
pub struct LinkFault {
    /// When the fault is active.
    pub window: Window,
    /// Which links it affects.
    pub scope: LinkScope,
    /// What it does to matching messages.
    pub effect: LinkEffect,
}

/// A network split into disjoint groups during a window.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// When the partition is active (healing at `window.until`).
    pub window: Window,
    /// The islands. Nodes in different groups cannot exchange messages;
    /// nodes absent from every group are unaffected.
    pub groups: Vec<Vec<NodeId>>,
}

impl PartitionSpec {
    /// Whether the partition severs the directed link `from → to` at `t`.
    pub fn severs(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        if !self.window.contains(t) {
            return false;
        }
        let group_of = |n: NodeId| self.groups.iter().position(|g| g.contains(&n));
        match (group_of(from), group_of(to)) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }
}

/// A crash-stop (and optional crash-recovery) of one node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The crashing node.
    pub node: NodeId,
    /// Crash instant.
    pub at: SimTime,
    /// Recovery instant (`None` = crash-stop forever).
    pub recover_at: Option<SimTime>,
}

/// Targeted censorship of one message type during a window.
#[derive(Clone, Copy, Debug)]
pub struct TypedDrop {
    /// When the censorship is active.
    pub window: Window,
    /// Which links it affects.
    pub scope: LinkScope,
    /// The [`crate::Node::msg_kind`] value to censor.
    pub kind: u8,
    /// Per-message drop probability.
    pub probability: f64,
}

/// A complete seeded fault schedule for one simulation run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic fault decision.
    pub seed: u64,
    /// Partition windows.
    pub partitions: Vec<PartitionSpec>,
    /// Byzantine link behaviours.
    pub link_faults: Vec<LinkFault>,
    /// Crash-stop / crash-recovery schedule.
    pub crashes: Vec<CrashSpec>,
    /// Message-type censorship.
    pub typed_drops: Vec<TypedDrop>,
}

impl FaultPlan {
    /// An empty plan drawing fault randomness from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Splits the network into `groups` during `[at, heal_at)`.
    pub fn partition(mut self, at: SimTime, heal_at: SimTime, groups: Vec<Vec<NodeId>>) -> Self {
        self.partitions.push(PartitionSpec {
            window: Window::new(at, heal_at),
            groups,
        });
        self
    }

    /// Crashes `node` at `at`, recovering at `recover_at` (`None` =
    /// permanent crash-stop).
    pub fn crash(mut self, node: NodeId, at: SimTime, recover_at: Option<SimTime>) -> Self {
        self.crashes.push(CrashSpec {
            node,
            at,
            recover_at,
        });
        self
    }

    /// Appends a pre-compiled crash schedule — typically a generated
    /// churn trace from [`crate::topology::ChurnModel::trace`].
    pub fn crashes_from(mut self, specs: Vec<CrashSpec>) -> Self {
        self.crashes.extend(specs);
        self
    }

    /// Applies a byzantine `effect` on `scope` during `[from, until)`.
    pub fn byzantine(
        mut self,
        from: SimTime,
        until: SimTime,
        scope: LinkScope,
        effect: LinkEffect,
    ) -> Self {
        self.link_faults.push(LinkFault {
            window: Window::new(from, until),
            scope,
            effect,
        });
        self
    }

    /// Censors messages of `kind` on `scope` during `[from, until)` with
    /// the given probability.
    pub fn drop_kind(
        mut self,
        from: SimTime,
        until: SimTime,
        scope: LinkScope,
        kind: u8,
        probability: f64,
    ) -> Self {
        self.typed_drops.push(TypedDrop {
            window: Window::new(from, until),
            scope,
            kind,
            probability,
        });
        self
    }

    /// Whether any partition severs `from → to` at `t`.
    pub fn severed(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        self.partitions.iter().any(|p| p.severs(from, to, t))
    }
}

/// What the fault layer decided to do with one outgoing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SendVerdict {
    /// Deliver normally (possibly with extra delay).
    Deliver,
    /// Deliver a corrupted version (extra delay may still apply).
    DeliverCorrupted,
    /// Destroy the message: partitioned away.
    DropPartition,
    /// Destroy the message: byzantine drop / censorship / unrepresentable
    /// corruption.
    DropFault,
}

/// Outcome of running one send through the fault layer.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SendFate {
    pub verdict: SendVerdict,
    /// Extra delivery delay from reordering.
    pub extra_delay_us: u64,
    /// Schedule a duplicate copy this much later than the original.
    pub duplicate_after_us: Option<u64>,
}

/// Runtime fault state compiled into a [`crate::Simulator`].
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        // Domain-separate the fault stream from the protocol stream so
        // installing a plan never perturbs protocol randomness.
        let rng = StdRng::seed_from_u64(plan.seed ^ 0xFA01_7C4A_0511_77ED);
        FaultState { plan, rng }
    }

    pub(crate) fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Whether a message in flight must be destroyed at delivery time.
    pub(crate) fn severed_at_delivery(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        self.plan.severed(from, to, t)
    }

    /// Runs one outgoing message through the fault layer at send time.
    ///
    /// Draws from the fault RNG in deterministic (event) order; the
    /// corruption itself is resolved by the caller because it needs the
    /// node's message type.
    pub(crate) fn judge_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        kind: u8,
        now: SimTime,
    ) -> SendFate {
        let mut fate = SendFate {
            verdict: SendVerdict::Deliver,
            extra_delay_us: 0,
            duplicate_after_us: None,
        };
        if self.plan.severed(from, to, now) {
            fate.verdict = SendVerdict::DropPartition;
            return fate;
        }
        // Typed censorship first: it models an adversary filtering by
        // content, upstream of generic link mangling.
        for td in &self.plan.typed_drops {
            if td.window.contains(now)
                && td.scope.matches(from, to)
                && td.kind == kind
                && self.rng.random::<f64>() < td.probability
            {
                fate.verdict = SendVerdict::DropFault;
                return fate;
            }
        }
        for lf in &self.plan.link_faults {
            if !lf.window.contains(now) || !lf.scope.matches(from, to) {
                continue;
            }
            match lf.effect {
                LinkEffect::Drop { probability } => {
                    if self.rng.random::<f64>() < probability {
                        fate.verdict = SendVerdict::DropFault;
                        return fate;
                    }
                }
                LinkEffect::Corrupt { probability } => {
                    if self.rng.random::<f64>() < probability {
                        fate.verdict = SendVerdict::DeliverCorrupted;
                    }
                }
                LinkEffect::Duplicate {
                    probability,
                    extra_delay_us,
                } => {
                    if self.rng.random::<f64>() < probability {
                        fate.duplicate_after_us = Some(extra_delay_us);
                    }
                }
                LinkEffect::Reorder {
                    probability,
                    max_extra_delay_us,
                } => {
                    if self.rng.random::<f64>() < probability {
                        fate.extra_delay_us = fate
                            .extra_delay_us
                            .saturating_add(self.rng.random_range(0..=max_extra_delay_us));
                    }
                }
            }
        }
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_half_open() {
        let w = Window::new(10, 20);
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
    }

    #[test]
    fn partition_severs_across_groups_only() {
        let p = PartitionSpec {
            window: Window::new(0, 100),
            groups: vec![vec![0, 1], vec![2]],
        };
        assert!(p.severs(0, 2, 50));
        assert!(p.severs(2, 1, 50));
        assert!(!p.severs(0, 1, 50));
        // Unlisted nodes are unaffected.
        assert!(!p.severs(0, 7, 50));
        assert!(!p.severs(7, 2, 50));
        // Healed.
        assert!(!p.severs(0, 2, 100));
    }

    #[test]
    fn scope_wildcards() {
        assert!(LinkScope::any().matches(3, 4));
        assert!(LinkScope::from_node(3).matches(3, 9));
        assert!(!LinkScope::from_node(3).matches(4, 9));
        assert!(LinkScope::to_node(9).matches(3, 9));
        assert!(LinkScope::link(3, 9).matches(3, 9));
        assert!(!LinkScope::link(3, 9).matches(9, 3));
    }

    #[test]
    fn judge_send_is_deterministic_per_seed() {
        let plan = FaultPlan::new(7).byzantine(
            0,
            1_000,
            LinkScope::any(),
            LinkEffect::Drop { probability: 0.5 },
        );
        let run = |plan: &FaultPlan| {
            let mut st = FaultState::new(plan.clone());
            (0..100)
                .map(|i| st.judge_send(0, 1, 0, i as SimTime).verdict)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&plan), run(&plan));
        let verdicts = run(&plan);
        assert!(verdicts.contains(&SendVerdict::Deliver));
        assert!(verdicts.contains(&SendVerdict::DropFault));
    }

    #[test]
    fn typed_drop_filters_by_kind() {
        let plan = FaultPlan::new(1).drop_kind(0, 1_000, LinkScope::any(), 3, 1.0);
        let mut st = FaultState::new(plan);
        assert_eq!(st.judge_send(0, 1, 3, 10).verdict, SendVerdict::DropFault);
        assert_eq!(st.judge_send(0, 1, 2, 10).verdict, SendVerdict::Deliver);
        assert_eq!(st.judge_send(0, 1, 3, 2_000).verdict, SendVerdict::Deliver);
    }
}
