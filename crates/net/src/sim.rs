//! The deterministic discrete-event simulator.
//!
//! Protocol logic is written against the [`Node`] trait; the simulator owns
//! all node instances, a global virtual clock in microseconds and an event
//! queue. Determinism: a seeded RNG drives every random choice, and ties in
//! the queue break on a monotone sequence number.

use crate::fault::{FaultPlan, FaultState, SendVerdict};
use crate::link::LinkModel;
use crate::sched::{EventQueue, SchedulerKind};
use pds2_crypto::{Digest, Sha256};
use pds2_obs::TraceCtx;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Index of a node in the simulation.
pub type NodeId = usize;

/// One simulated microsecond-resolution timestamp.
pub type SimTime = u64;

/// A protocol participant.
pub trait Node {
    /// Message type exchanged by this protocol.
    type Msg: Clone;

    /// Called once when the simulation starts (schedule initial timers
    /// here).
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called when a message arrives.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: u64);

    /// Wire size of a message in bytes (drives serialization delay and
    /// traffic accounting).
    fn msg_size(msg: &Self::Msg) -> u64 {
        let _ = msg;
        64
    }

    /// Coarse message-type tag used by [`crate::fault::TypedDrop`]
    /// censorship and the delivered-message trace. Protocols with a
    /// single message type can keep the default.
    fn msg_kind(msg: &Self::Msg) -> u8 {
        let _ = msg;
        0
    }

    /// Content fingerprint folded into the delivered-message trace.
    /// Override with a real digest of the payload so the golden trace
    /// detects silent content changes, not just shape changes.
    fn msg_digest(msg: &Self::Msg) -> u64 {
        Self::msg_size(msg)
    }

    /// Produces an in-flight-corrupted version of `msg` for byzantine
    /// link faults. `None` (the default) means corruption destroys the
    /// message entirely — appropriate when any flipped bit would fail
    /// decoding anyway.
    fn corrupt_msg(msg: &Self::Msg, rng: &mut StdRng) -> Option<Self::Msg> {
        let _ = (msg, rng);
        None
    }

    /// Called when a fault-plan crash takes this node down. Crash-stop
    /// semantics: wipe whatever state would not survive a process
    /// restart. The default loses nothing (fail-silent).
    fn on_crash(&mut self) {}

    /// Called when a fault-plan crash recovers. Re-arm timers and kick
    /// off resynchronisation here; the default does nothing.
    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }
}

/// Context handed to node callbacks: clock, RNG and outgoing actions.
pub struct Ctx<'a, M> {
    /// This node's id.
    pub id: NodeId,
    /// Current simulated time (µs).
    pub now: SimTime,
    /// Total number of nodes in the simulation.
    pub n_nodes: usize,
    rng: &'a mut StdRng,
    actions: Vec<Action<M>>,
    incoming: TraceCtx,
}

enum Action<M> {
    Send { to: NodeId, msg: M, ctx: TraceCtx },
    Timer { delay_us: u64, tag: u64 },
}

impl<'a, M> Ctx<'a, M> {
    /// Sends a message (subject to link latency/loss and the recipient
    /// being online at delivery time). The causal context of the event
    /// being handled rides along in the envelope, so the receiver's
    /// spans link back to this delivery without any protocol changes.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let ctx = self.incoming;
        self.send_traced(to, msg, ctx);
    }

    /// Sends a message under an explicit causal context (overrides the
    /// automatic propagation of [`Ctx::incoming`]).
    pub fn send_traced(&mut self, to: NodeId, msg: M, ctx: TraceCtx) {
        self.actions.push(Action::Send { to, msg, ctx });
    }

    /// Causal context this callback runs under: the delivery span of
    /// the message being handled, the simulator's root context for
    /// start/timer/recover callbacks, or [`TraceCtx::NONE`] when
    /// tracing is off.
    pub fn incoming(&self) -> TraceCtx {
        self.incoming
    }

    /// Schedules `on_timer(tag)` after `delay_us`.
    pub fn set_timer(&mut self, delay_us: u64, tag: u64) {
        self.actions.push(Action::Timer { delay_us, tag });
    }

    /// Seeded RNG for protocol randomness (peer sampling etc.).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Samples a uniformly random peer different from this node.
    pub fn random_peer(&mut self) -> Option<NodeId> {
        if self.n_nodes < 2 {
            return None;
        }
        loop {
            let p = self.rng.random_range(0..self.n_nodes);
            if p != self.id {
                return Some(p);
            }
        }
    }
}

#[derive(Debug)]
enum EventKind<M> {
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        size: u64,
        ctx: TraceCtx,
        sent_us: SimTime,
    },
    Timer {
        node: NodeId,
        tag: u64,
    },
    SetOnline {
        node: NodeId,
        online: bool,
    },
    Crash {
        node: NodeId,
    },
    Recover {
        node: NodeId,
    },
}

/// Per-node online flags packed into a bitset, with the population
/// count maintained incrementally so [`Simulator::online_count`] is
/// O(1) at any fleet size.
struct OnlineSet {
    words: Vec<u64>,
    online: usize,
}

impl OnlineSet {
    fn all_online(n: usize) -> OnlineSet {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if !n.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        OnlineSet { words, online: n }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    fn set(&mut self, i: usize, v: bool) {
        let (w, bit) = (i >> 6, 1u64 << (i & 63));
        let was = self.words[w] & bit != 0;
        if was == v {
            return;
        }
        if v {
            self.words[w] |= bit;
            self.online += 1;
        } else {
            self.words[w] &= !bit;
            self.online -= 1;
        }
    }

    #[inline]
    fn count(&self) -> usize {
        self.online
    }
}

/// Traffic and liveness statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network.
    pub sent: u64,
    /// Messages delivered to an online node.
    pub delivered: u64,
    /// Messages lost to random link loss.
    pub dropped_loss: u64,
    /// Messages addressed to an offline node.
    pub dropped_offline: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
    /// Timer callbacks fired.
    pub timers_fired: u64,
    /// Messages destroyed by an active partition (at send or delivery).
    pub dropped_partition: u64,
    /// Messages destroyed by byzantine drops / typed censorship /
    /// unrepresentable corruption.
    pub dropped_fault: u64,
    /// Messages corrupted in flight and still delivered.
    pub corrupted: u64,
    /// Extra copies injected by duplication faults.
    pub duplicated: u64,
    /// Messages delayed by reorder faults.
    pub reordered: u64,
    /// Fault-plan crashes executed.
    pub crashes: u64,
    /// Fault-plan recoveries executed.
    pub recoveries: u64,
}

/// The discrete-event simulator.
pub struct Simulator<N: Node> {
    nodes: Vec<N>,
    online: OnlineSet,
    queue: EventQueue<EventKind<N::Msg>>,
    now: SimTime,
    seq: u64,
    link: LinkModel,
    rng: StdRng,
    stats: NetStats,
    started: bool,
    fault: Option<FaultState>,
    trace: Option<Sha256>,
    root_ctx: TraceCtx,
}

impl<N: Node> Simulator<N> {
    /// Creates a simulator over `nodes` with the given link model and
    /// seed, using the scheduler selected by `PDS2_NET_SCHED` (timing
    /// wheel unless `heap` is requested).
    pub fn new(nodes: Vec<N>, link: LinkModel, seed: u64) -> Self {
        Simulator::with_scheduler(nodes, link, seed, SchedulerKind::from_env())
    }

    /// Creates a simulator with an explicit scheduler — the differential
    /// tests and `bench_scale` drive both kinds side by side.
    pub fn with_scheduler(
        nodes: Vec<N>,
        link: LinkModel,
        seed: u64,
        scheduler: SchedulerKind,
    ) -> Self {
        let n = nodes.len();
        Simulator {
            nodes,
            online: OnlineSet::all_online(n),
            queue: EventQueue::new(scheduler),
            now: 0,
            seq: 0,
            link,
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            started: false,
            fault: None,
            trace: None,
            root_ctx: TraceCtx::NONE,
        }
    }

    /// Which event scheduler backs this simulator.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Lifetime overflow-cascade count of the backing timing wheel
    /// (0 under the heap oracle).
    pub fn sched_cascades(&self) -> u64 {
        self.queue.cascades()
    }

    /// Sets the causal root context: spontaneous node activity
    /// (`on_start`, timers, recovery) and the sends it produces join
    /// this trace. Mint one with `pds2_obs::new_trace` at experiment
    /// start; deliveries then chain their own child spans off it.
    pub fn set_root_ctx(&mut self, ctx: TraceCtx) {
        self.root_ctx = ctx;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current simulated time (µs).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Traffic statistics.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Immutable access to a node's state.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id]
    }

    /// Mutable access to a node's state (for experiment instrumentation).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id]
    }

    /// Iterates over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// Whether a node is currently online.
    pub fn is_online(&self, id: NodeId) -> bool {
        self.online.get(id)
    }

    /// Number of currently online nodes (O(1): the count is maintained
    /// on every `SetOnline`/`Crash`/`Recover` transition).
    pub fn online_count(&self) -> usize {
        self.online.count()
    }

    /// Schedules a node to go offline at `at` and return at `until`
    /// (`until = SimTime::MAX` for a permanent failure).
    pub fn schedule_outage(&mut self, node: NodeId, at: SimTime, until: SimTime) {
        self.push(
            at,
            EventKind::SetOnline {
                node,
                online: false,
            },
        );
        if until != SimTime::MAX {
            self.push(until, EventKind::SetOnline { node, online: true });
        }
    }

    /// Schedules random outages: each node independently fails with
    /// probability `fail_prob` at a uniform time within `[0, horizon_us)`,
    /// staying down for `downtime_us` (or forever if `downtime_us == 0`).
    pub fn schedule_random_churn(
        &mut self,
        fail_prob: f64,
        horizon_us: SimTime,
        downtime_us: SimTime,
    ) {
        for node in 0..self.nodes.len() {
            if self.rng.random::<f64>() < fail_prob {
                let at = self.rng.random_range(0..horizon_us.max(1));
                let until = if downtime_us == 0 {
                    SimTime::MAX
                } else {
                    at + downtime_us
                };
                self.schedule_outage(node, at, until);
            }
        }
    }

    /// Installs a seeded [`FaultPlan`]: schedules its crash/recovery
    /// events and arms partitions, byzantine links and typed drops for
    /// every subsequent send. Fault randomness comes from the plan's own
    /// seed, so the protocol RNG stream is unchanged by installing a
    /// plan. Call before [`Simulator::start`].
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        for crash in plan.crashes.clone() {
            self.push(crash.at, EventKind::Crash { node: crash.node });
            if let Some(recover_at) = crash.recover_at {
                self.push(recover_at, EventKind::Recover { node: crash.node });
            }
        }
        self.fault = Some(FaultState::new(plan));
    }

    /// Starts hashing every delivered message into a running trace
    /// digest. Call before [`Simulator::start`] so the trace covers the
    /// full run.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Sha256::new());
    }

    /// The running delivered-message trace digest, if
    /// [`Simulator::enable_trace`] was called. Two runs with identical
    /// seeds, plans and protocols yield identical hashes.
    pub fn trace_hash(&self) -> Option<Digest> {
        self.trace.clone().map(|h| h.finalize())
    }

    fn record_trace(&mut self, from: NodeId, to: NodeId, kind: u8, size: u64, digest: u64) {
        if let Some(trace) = &mut self.trace {
            let mut row = [0u8; 33];
            row[..8].copy_from_slice(&self.now.to_le_bytes());
            row[8..16].copy_from_slice(&(from as u64).to_le_bytes());
            row[16..24].copy_from_slice(&(to as u64).to_le_bytes());
            row[24] = kind;
            row[25..33].copy_from_slice(&size.to_le_bytes());
            trace.update(&row);
            trace.update(&digest.to_le_bytes());
        }
    }

    fn push(&mut self, time: SimTime, kind: EventKind<N::Msg>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(time, seq, kind);
    }

    fn dispatch_actions(&mut self, origin: NodeId, actions: Vec<Action<N::Msg>>) {
        for action in actions {
            match action {
                Action::Send { to, msg, ctx } => {
                    self.stats.sent += 1;
                    pds2_obs::counter!("net.sent").inc();
                    // Fault layer first (dedicated RNG, deterministic
                    // event order), then the benign link model — so the
                    // protocol RNG stream is identical with and without
                    // an installed plan.
                    let mut msg = msg;
                    let mut extra_delay_us = 0;
                    let mut duplicate_after_us = None;
                    if let Some(fault) = &mut self.fault {
                        let kind = N::msg_kind(&msg);
                        let fate = fault.judge_send(origin, to, kind, self.now);
                        match fate.verdict {
                            SendVerdict::DropPartition => {
                                self.stats.dropped_partition += 1;
                                pds2_obs::counter!("net.dropped_partition").inc();
                                pds2_obs::trace_event!(
                                    "net",
                                    "drop.partition",
                                    pds2_obs::Stamp::Sim(self.now),
                                    ctx,
                                    "from" => origin, "to" => to, "kind" => kind as u64,
                                );
                                continue;
                            }
                            SendVerdict::DropFault => {
                                self.stats.dropped_fault += 1;
                                pds2_obs::counter!("net.dropped_fault").inc();
                                pds2_obs::trace_event!(
                                    "net",
                                    "drop.censor",
                                    pds2_obs::Stamp::Sim(self.now),
                                    ctx,
                                    "from" => origin, "to" => to, "kind" => kind as u64,
                                );
                                continue;
                            }
                            SendVerdict::DeliverCorrupted => {
                                match N::corrupt_msg(&msg, fault.rng_mut()) {
                                    Some(mangled) => {
                                        self.stats.corrupted += 1;
                                        pds2_obs::counter!("net.corrupted").inc();
                                        pds2_obs::trace_event!(
                                            "net",
                                            "corrupt",
                                            pds2_obs::Stamp::Sim(self.now),
                                            ctx,
                                            "from" => origin, "to" => to, "kind" => kind as u64,
                                        );
                                        msg = mangled;
                                    }
                                    None => {
                                        // Corruption the protocol cannot
                                        // even represent: the frame is
                                        // destroyed on the wire.
                                        self.stats.dropped_fault += 1;
                                        pds2_obs::counter!("net.dropped_fault").inc();
                                        pds2_obs::trace_event!(
                                            "net",
                                            "drop.censor",
                                            pds2_obs::Stamp::Sim(self.now),
                                            ctx,
                                            "from" => origin, "to" => to, "kind" => kind as u64,
                                        );
                                        continue;
                                    }
                                }
                            }
                            SendVerdict::Deliver => {}
                        }
                        if fate.extra_delay_us > 0 {
                            self.stats.reordered += 1;
                            pds2_obs::counter!("net.reordered").inc();
                            pds2_obs::trace_event!(
                                "net",
                                "reorder",
                                pds2_obs::Stamp::Sim(self.now),
                                ctx,
                                "from" => origin, "to" => to,
                                "extra_delay_us" => fate.extra_delay_us,
                            );
                            extra_delay_us = fate.extra_delay_us;
                        }
                        duplicate_after_us = fate.duplicate_after_us;
                    }
                    if self.link.drops(&mut self.rng) {
                        self.stats.dropped_loss += 1;
                        pds2_obs::counter!("net.dropped_loss").inc();
                        pds2_obs::trace_event!(
                            "net",
                            "drop.loss",
                            pds2_obs::Stamp::Sim(self.now),
                            ctx,
                            "from" => origin, "to" => to,
                        );
                        continue;
                    }
                    let size = N::msg_size(&msg);
                    let delay = self.link.delay_us(&mut self.rng, origin, to, size);
                    let at = self.now + delay + extra_delay_us;
                    if let Some(after_us) = duplicate_after_us {
                        self.stats.duplicated += 1;
                        pds2_obs::counter!("net.duplicated").inc();
                        pds2_obs::trace_event!(
                            "net",
                            "duplicate",
                            pds2_obs::Stamp::Sim(self.now),
                            ctx,
                            "from" => origin, "to" => to,
                        );
                        self.push(
                            at + after_us.max(1),
                            EventKind::Deliver {
                                from: origin,
                                to,
                                msg: msg.clone(),
                                size,
                                ctx,
                                sent_us: self.now,
                            },
                        );
                    }
                    self.push(
                        at,
                        EventKind::Deliver {
                            from: origin,
                            to,
                            msg,
                            size,
                            ctx,
                            sent_us: self.now,
                        },
                    );
                }
                Action::Timer { delay_us, tag } => {
                    let at = self.now + delay_us;
                    pds2_obs::counter!("net.timers_set").inc();
                    self.push(at, EventKind::Timer { node: origin, tag });
                }
            }
        }
    }

    fn call_node<F>(&mut self, id: NodeId, incoming: TraceCtx, f: F)
    where
        F: FnOnce(&mut N, &mut Ctx<'_, N::Msg>),
    {
        let mut ctx = Ctx {
            id,
            now: self.now,
            n_nodes: self.nodes.len(),
            rng: &mut self.rng,
            actions: Vec::new(),
            incoming,
        };
        f(&mut self.nodes[id], &mut ctx);
        let actions = ctx.actions;
        self.dispatch_actions(id, actions);
    }

    /// Runs `on_start` on every node (idempotent).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let root = self.root_ctx;
        for id in 0..self.nodes.len() {
            self.call_node(id, root, |n, ctx| n.on_start(ctx));
        }
    }

    /// Processes events until the queue is empty or `deadline_us` passes.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline_us: SimTime) -> u64 {
        self.start();
        let span = pds2_obs::span("net", "run", pds2_obs::Stamp::Sim(self.now));
        let cascades_before = self.queue.cascades();
        let mut processed = 0;
        while let Some(time) = self.queue.peek_time() {
            if time > deadline_us {
                break;
            }
            let (time, _seq, kind) = self.queue.pop().unwrap();
            self.now = time;
            processed += 1;
            match kind {
                EventKind::SetOnline { node, online } => {
                    self.online.set(node, online);
                }
                EventKind::Timer { node, tag } => {
                    pds2_obs::counter!("net.timers_fired").inc();
                    if self.online.get(node) {
                        self.stats.timers_fired += 1;
                        let root = self.root_ctx;
                        self.call_node(node, root, |n, ctx| n.on_timer(ctx, tag));
                    } else {
                        // Timers on offline nodes are silently skipped;
                        // protocols re-arm on their own schedule.
                        self.stats.timers_fired += 1;
                    }
                }
                EventKind::Deliver {
                    from,
                    to,
                    msg,
                    size,
                    ctx,
                    sent_us,
                } => {
                    // A partition that split while this message was in
                    // flight destroys it at the boundary.
                    if self
                        .fault
                        .as_ref()
                        .is_some_and(|f| f.severed_at_delivery(from, to, self.now))
                    {
                        self.stats.dropped_partition += 1;
                        pds2_obs::counter!("net.dropped_partition").inc();
                        pds2_obs::trace_event!(
                            "net",
                            "drop.partition",
                            pds2_obs::Stamp::Sim(self.now),
                            ctx,
                            "from" => from, "to" => to,
                        );
                    } else if self.online.get(to) {
                        self.stats.delivered += 1;
                        self.stats.bytes_delivered += size;
                        pds2_obs::counter!("net.delivered").inc();
                        pds2_obs::counter!("net.bytes_delivered").add(size);
                        let kind = N::msg_kind(&msg);
                        let digest = N::msg_digest(&msg);
                        self.record_trace(from, to, kind, size, digest);
                        // One hop of the causal DAG: the delivery span is
                        // a child of the sender's context, and everything
                        // the handler does (sends, chain spans) chains
                        // off the span. Fields carry the same
                        // (from, to, kind, size, digest) tuple the
                        // delivery trace hash commits to, plus `sent_us`
                        // so `obs_report` can compute per-hop latency.
                        let span = pds2_obs::span_traced(
                            "net",
                            "deliver",
                            pds2_obs::Stamp::Sim(self.now),
                            ctx,
                            vec![
                                ("from", pds2_obs::Value::from(from)),
                                ("to", pds2_obs::Value::from(to)),
                                ("kind", pds2_obs::Value::from(kind as u64)),
                                ("size", pds2_obs::Value::from(size)),
                                ("digest", pds2_obs::Value::from(digest)),
                                ("sent_us", pds2_obs::Value::from(sent_us)),
                            ],
                        );
                        let incoming = if span.id() != 0 { span.ctx() } else { ctx };
                        self.call_node(to, incoming, |n, ctx| n.on_message(ctx, from, msg));
                        span.finish(pds2_obs::Stamp::Sim(self.now), Vec::new());
                    } else {
                        self.stats.dropped_offline += 1;
                        pds2_obs::counter!("net.dropped_offline").inc();
                        pds2_obs::trace_event!(
                            "net",
                            "drop.offline",
                            pds2_obs::Stamp::Sim(self.now),
                            ctx,
                            "from" => from, "to" => to,
                        );
                    }
                }
                EventKind::Crash { node } => {
                    self.stats.crashes += 1;
                    pds2_obs::counter!("net.crashes").inc();
                    pds2_obs::event!(
                        "net",
                        "crash",
                        pds2_obs::Stamp::Sim(self.now),
                        "node" => node,
                    );
                    self.online.set(node, false);
                    self.nodes[node].on_crash();
                }
                EventKind::Recover { node } => {
                    self.stats.recoveries += 1;
                    pds2_obs::counter!("net.recoveries").inc();
                    pds2_obs::event!(
                        "net",
                        "recover",
                        pds2_obs::Stamp::Sim(self.now),
                        "node" => node,
                    );
                    self.online.set(node, true);
                    let root = self.root_ctx;
                    self.call_node(node, root, |n, ctx| n.on_recover(ctx));
                }
            }
        }
        pds2_obs::counter!("net.sched.events_processed").add(processed);
        let cascades = self.queue.cascades() - cascades_before;
        pds2_obs::counter!("net.sched.wheel_cascades").add(cascades);
        span.finish(
            pds2_obs::Stamp::Sim(self.now),
            vec![
                ("events", pds2_obs::Value::from(processed)),
                ("pending", pds2_obs::Value::from(self.queue.len() as u64)),
            ],
        );
        processed
    }

    /// Consumes the simulator, returning the node states.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{LinkEffect, LinkScope};

    /// Test protocol: a ping-pong counter. Node 0 starts; each node
    /// forwards `count+1` to a fixed next hop until TTL.
    struct Ring {
        next: NodeId,
        received: Vec<u64>,
        start: bool,
    }

    impl Node for Ring {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if self.start {
                ctx.send(self.next, 1);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _from: NodeId, msg: u64) {
            self.received.push(msg);
            if msg < 10 {
                ctx.send(self.next, msg + 1);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, _tag: u64) {}

        fn msg_size(_msg: &u64) -> u64 {
            8
        }
    }

    fn ring(n: usize) -> Vec<Ring> {
        (0..n)
            .map(|i| Ring {
                next: (i + 1) % n,
                received: Vec::new(),
                start: i == 0,
            })
            .collect()
    }

    #[test]
    fn messages_travel_the_ring() {
        let mut sim = Simulator::new(ring(3), LinkModel::instant(), 1);
        sim.run_until(1_000_000);
        // 10 hops total: counts 1..=10 distributed around the ring.
        let total: usize = sim.nodes().map(|n| n.received.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(sim.stats().sent, 10);
        assert_eq!(sim.stats().delivered, 10);
        assert_eq!(sim.stats().bytes_delivered, 80);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut sim = Simulator::new(ring(5), LinkModel::default(), seed);
            sim.run_until(10_000_000);
            (sim.now(), sim.stats())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn offline_nodes_drop_messages() {
        let mut sim = Simulator::new(ring(3), LinkModel::instant(), 1);
        sim.schedule_outage(1, 0, SimTime::MAX);
        sim.run_until(1_000_000);
        // Node 0 sends to 1 which is down: chain stops immediately.
        assert_eq!(sim.stats().dropped_offline, 1);
        assert_eq!(sim.stats().delivered, 0);
        assert_eq!(sim.online_count(), 2);
    }

    #[test]
    fn outage_with_recovery() {
        let mut sim = Simulator::new(ring(2), LinkModel::instant(), 1);
        sim.schedule_outage(1, 0, 500);
        sim.run_until(400);
        assert!(!sim.is_online(1));
        sim.run_until(1_000);
        assert!(sim.is_online(1));
    }

    #[test]
    fn timers_fire() {
        struct TimerNode {
            fired: Vec<(SimTime, u64)>,
        }
        impl Node for TimerNode {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(100, 1);
                ctx.set_timer(50, 2);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, tag: u64) {
                self.fired.push((ctx.now, tag));
            }
        }
        let mut sim = Simulator::new(
            vec![TimerNode { fired: Vec::new() }],
            LinkModel::instant(),
            1,
        );
        sim.run_until(1_000);
        assert_eq!(sim.node(0).fired, vec![(50, 2), (100, 1)]);
    }

    #[test]
    fn random_peer_excludes_self() {
        struct P;
        impl Node for P {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                for _ in 0..100 {
                    let peer = ctx.random_peer().unwrap();
                    assert_ne!(peer, ctx.id);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: u64) {}
        }
        let mut sim = Simulator::new(vec![P, P, P], LinkModel::instant(), 3);
        sim.start();
    }

    /// Flood protocol for fault-layer tests: every node broadcasts a
    /// counter on a periodic timer and remembers the highest value seen.
    struct Flood {
        highest: u64,
        peers_seen: u32,
        sent: u64,
        crashes: u64,
        recoveries: u64,
    }

    impl Flood {
        fn new() -> Flood {
            Flood {
                highest: 0,
                peers_seen: 0,
                sent: 0,
                crashes: 0,
                recoveries: 0,
            }
        }
    }

    impl Node for Flood {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.set_timer(100, 0);
        }

        fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
            self.highest = self.highest.max(msg);
            self.peers_seen |= 1 << from;
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
            self.sent += 1;
            let value = self.sent * 1_000 + ctx.id as u64;
            for to in 0..ctx.n_nodes {
                if to != ctx.id {
                    ctx.send(to, value);
                }
            }
            ctx.set_timer(100, 0);
        }

        fn msg_size(_msg: &u64) -> u64 {
            8
        }

        fn msg_digest(msg: &u64) -> u64 {
            *msg
        }

        fn corrupt_msg(msg: &u64, rng: &mut StdRng) -> Option<u64> {
            Some(msg ^ (1 << rng.random_range(0..64)))
        }

        fn on_crash(&mut self) {
            self.crashes += 1;
            self.highest = 0;
        }

        fn on_recover(&mut self, ctx: &mut Ctx<'_, u64>) {
            self.recoveries += 1;
            ctx.set_timer(100, 0);
        }
    }

    fn flood_sim(n: usize, seed: u64) -> Simulator<Flood> {
        Simulator::new(
            (0..n).map(|_| Flood::new()).collect(),
            LinkModel::instant(),
            seed,
        )
    }

    #[test]
    fn partition_severs_and_heals() {
        let mut sim = flood_sim(4, 1);
        sim.install_fault_plan(FaultPlan::new(1).partition(0, 5_000, vec![vec![0, 1], vec![2, 3]]));
        sim.run_until(4_000);
        // During the split, traffic never crosses the islands {0,1} and
        // {2,3}: each node has only heard from its island peer.
        assert!(sim.stats().dropped_partition > 0);
        assert_eq!(sim.node(0).peers_seen, 0b0010);
        assert_eq!(sim.node(1).peers_seen, 0b0001);
        assert_eq!(sim.node(2).peers_seen, 0b1000);
        assert_eq!(sim.node(3).peers_seen, 0b0100);
        // After healing, traffic crosses again: everyone hears from every
        // peer.
        sim.run_until(10_000);
        for i in 0..4u32 {
            assert_eq!(sim.node(i as usize).peers_seen, 0b1111 & !(1 << i));
        }
    }

    #[test]
    fn crash_invokes_hooks_and_recovery_restarts() {
        let mut sim = flood_sim(3, 2);
        sim.install_fault_plan(FaultPlan::new(2).crash(1, 1_000, Some(3_000)));
        sim.run_until(10_000);
        assert_eq!(sim.stats().crashes, 1);
        assert_eq!(sim.stats().recoveries, 1);
        assert_eq!(sim.node(1).crashes, 1);
        assert_eq!(sim.node(1).recoveries, 1);
        // The recovered node re-armed its broadcast timer and caught up.
        assert!(sim.node(1).highest > 0);
    }

    #[test]
    fn byzantine_corruption_and_duplication_are_counted() {
        let mut sim = flood_sim(2, 3);
        sim.install_fault_plan(
            FaultPlan::new(3)
                .byzantine(
                    0,
                    100_000,
                    LinkScope::any(),
                    LinkEffect::Corrupt { probability: 0.5 },
                )
                .byzantine(
                    0,
                    100_000,
                    LinkScope::any(),
                    LinkEffect::Duplicate {
                        probability: 0.5,
                        extra_delay_us: 10,
                    },
                ),
        );
        sim.run_until(100_000);
        let s = sim.stats();
        assert!(s.corrupted > 0);
        assert!(s.duplicated > 0);
        // Duplicates arrive a little late, so a few may still be in
        // flight at the deadline.
        assert!(s.delivered >= s.sent - s.dropped_fault);
        assert!(s.delivered <= s.sent - s.dropped_fault + s.duplicated);
    }

    #[test]
    fn typed_drops_censor_only_matching_kind() {
        // Flood uses kind 0 everywhere; censor kind 0 from node 0 only.
        let mut sim = flood_sim(3, 4);
        sim.install_fault_plan(FaultPlan::new(4).drop_kind(
            0,
            100_000,
            LinkScope::from_node(0),
            0,
            1.0,
        ));
        sim.run_until(10_000);
        // Node 0's broadcasts are all censored; 1 and 2 still exchange.
        assert!(sim.stats().dropped_fault > 0);
        assert!(!sim.node(1).highest.is_multiple_of(1_000));
        assert!(!sim.node(2).highest.is_multiple_of(1_000));
    }

    #[test]
    fn trace_hash_is_reproducible_and_fault_sensitive() {
        let run = |plan: Option<FaultPlan>| {
            let mut sim = flood_sim(3, 9);
            if let Some(p) = plan {
                sim.install_fault_plan(p);
            }
            sim.enable_trace();
            sim.run_until(20_000);
            sim.trace_hash().unwrap()
        };
        let clean_a = run(None);
        let clean_b = run(None);
        assert_eq!(clean_a, clean_b, "same seed must give same trace");
        let faulty = run(Some(FaultPlan::new(9).crash(2, 5_000, None)));
        assert_ne!(clean_a, faulty, "faults must change the trace");
    }

    #[test]
    fn installing_a_plan_does_not_perturb_protocol_rng() {
        // A no-op plan (faults outside the horizon) must leave the
        // delivered-message trace byte-identical to a plan-free run.
        let run = |install: bool| {
            let mut sim = flood_sim(3, 11);
            if install {
                sim.install_fault_plan(FaultPlan::new(999).crash(0, 1_000_000, None).byzantine(
                    1_000_000,
                    2_000_000,
                    LinkScope::any(),
                    LinkEffect::Drop { probability: 1.0 },
                ));
            }
            sim.enable_trace();
            sim.run_until(20_000);
            sim.trace_hash().unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn lossy_links_drop_statistically() {
        // Broadcast-ish: node 0 sends 1000 one-off messages via timers.
        struct Spammer {
            n: u32,
        }
        impl Node for Spammer {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.id == 0 {
                    for _ in 0..self.n {
                        ctx.send(1, ());
                    }
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, ()>, _: u64) {}
        }
        let link = LinkModel {
            drop_probability: 0.5,
            ..LinkModel::instant()
        };
        let mut sim = Simulator::new(vec![Spammer { n: 1000 }, Spammer { n: 0 }], link, 5);
        sim.run_until(10_000_000);
        let s = sim.stats();
        assert_eq!(s.sent, 1000);
        assert!((300..700).contains(&s.dropped_loss), "{}", s.dropped_loss);
        assert_eq!(s.delivered + s.dropped_loss, 1000);
    }
}
