//! Event schedulers for the simulator: a hierarchical timing wheel and
//! the original binary heap, kept as a differential oracle.
//!
//! The simulator's invariant is that events are dispatched in strict
//! `(time, seq)` order, where `seq` is the monotone sequence number
//! assigned at push time. Both schedulers implement exactly that order,
//! so golden traces, `NetStats` and obs digests are identical whichever
//! one is selected — the chaos tests and `bench_scale` assert it.
//!
//! ## The wheel
//!
//! [`TimingWheel`] is a hierarchical calendar queue: three levels of
//! 4096 slots each, indexed by successive 12-bit fields of the event
//! timestamp (µs). Level 0 resolves single microseconds across a 4.1 ms
//! window; level 1 resolves 4.1 ms buckets across 16.8 s; level 2
//! resolves 16.8 s buckets across ~19 h. Pushing is O(1): pick the level
//! by the distance to the cursor, index the slot by the timestamp bits.
//! Popping scans per-level occupancy bitmaps (a 64-word bitmap plus a
//! one-word summary, so a scan is a handful of `trailing_zeros`) for the
//! earliest occupied slot; coarse slots *cascade* — drain and re-insert
//! one level down — until the earliest slot is exact. Events beyond the
//! ~19 h horizon, and events pushed behind the cursor (the fault layer
//! schedules those), live in an overflow heap that is consulted
//! alongside the wheel. Ties at one timestamp are buffered in an active
//! queue ordered by `seq`.
//!
//! Determinism does not depend on wheel internals: the pop order is
//! fully specified by `(time, seq)`, which is why the heap can serve as
//! a drop-in oracle (`PDS2_NET_SCHED=heap`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Bits of the timestamp consumed per wheel level.
const SLOT_BITS: usize = 12;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of hierarchical levels.
const LEVELS: usize = 3;
/// Words in a per-level occupancy bitmap.
const WORDS: usize = SLOTS / 64;
/// Events at `cursor + HORIZON` or later go to the overflow heap.
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS);

/// Which event scheduler backs the simulator queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel (default; O(1) push, near-O(1) pop).
    Wheel,
    /// The original global `BinaryHeap` — retained as the differential
    /// oracle the wheel is checked against.
    Heap,
}

impl SchedulerKind {
    /// Reads `PDS2_NET_SCHED` (`heap` selects the oracle; anything else
    /// — including unset — selects the wheel). Mirrors the
    /// `PDS2_STATE_BACKEND` toggle of the chain state backends.
    pub fn from_env() -> SchedulerKind {
        match std::env::var("PDS2_NET_SCHED").as_deref() {
            Ok("heap") | Ok("binary-heap") | Ok("binary_heap") => SchedulerKind::Heap,
            _ => SchedulerKind::Wheel,
        }
    }
}

struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// One wheel level: `SLOTS` buckets plus an occupancy bitmap (one bit
/// per slot, one summary bit per 64 slots) for O(1)-ish earliest-slot
/// scans.
struct Level<T> {
    slots: Vec<Vec<Entry<T>>>,
    words: [u64; WORDS],
    summary: u64,
    len: usize,
}

impl<T> Level<T> {
    fn new() -> Level<T> {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            words: [0; WORDS],
            summary: 0,
            len: 0,
        }
    }

    fn insert(&mut self, slot: usize, entry: Entry<T>) {
        self.slots[slot].push(entry);
        self.words[slot >> 6] |= 1 << (slot & 63);
        self.summary |= 1 << (slot >> 6);
        self.len += 1;
    }

    /// Empties `slot` into `out`, clearing its occupancy bit but keeping
    /// the slot `Vec`'s capacity — slots are reused constantly, and
    /// freeing the buffer on every drain costs an allocator round-trip
    /// plus re-growth per event.
    fn drain_slot_into(&mut self, slot: usize, out: &mut Vec<Entry<T>>) {
        let w = slot >> 6;
        self.words[w] &= !(1u64 << (slot & 63));
        if self.words[w] == 0 {
            self.summary &= !(1u64 << w);
        }
        self.len -= self.slots[slot].len();
        out.append(&mut self.slots[slot]);
    }

    /// First occupied slot at or after `from`, scanning circularly.
    /// Returns `(slot, wrapped)` where `wrapped` means the scan passed
    /// slot 0 (the slot belongs to the next revolution).
    fn next_occupied(&self, from: usize) -> Option<(usize, bool)> {
        if self.len == 0 {
            return None;
        }
        let (w0, b0) = (from >> 6, from & 63);
        let first = self.words[w0] & (u64::MAX << b0);
        if first != 0 {
            return Some(((w0 << 6) + first.trailing_zeros() as usize, false));
        }
        let hi_mask = if w0 + 1 >= WORDS {
            0
        } else {
            u64::MAX << (w0 + 1)
        };
        let hi = self.summary & hi_mask;
        if hi != 0 {
            let w = hi.trailing_zeros() as usize;
            return Some(((w << 6) + self.words[w].trailing_zeros() as usize, false));
        }
        let mut lo = self.summary & !hi_mask;
        while lo != 0 {
            let w = lo.trailing_zeros() as usize;
            let mut word = self.words[w];
            if w == w0 {
                word &= (1u64 << b0) - 1;
            }
            if word != 0 {
                return Some(((w << 6) + word.trailing_zeros() as usize, true));
            }
            lo &= lo - 1;
        }
        None
    }
}

/// Hierarchical timing wheel dispensing items in `(time, seq)` order.
///
/// `seq` must be globally monotone across pushes (the simulator's event
/// sequence number) — it is both the tie-breaker and what lets pushes
/// at the currently-dispatching timestamp append to the active queue
/// without a sort.
pub struct TimingWheel<T> {
    levels: Vec<Level<T>>,
    /// Past events (pushed behind the cursor) and events beyond the
    /// wheel horizon.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// All wheel-resident events have `time >= cursor`. Never moves
    /// backward.
    cursor: u64,
    /// Events at the earliest pending timestamp, in `seq` order.
    active: VecDeque<Entry<T>>,
    active_time: u64,
    len: usize,
    cascades: u64,
    /// Reused drain buffer (cascades, re-files), so the hot path never
    /// allocates.
    scratch: Vec<Entry<T>>,
}

impl<T> TimingWheel<T> {
    /// An empty wheel with the cursor at time 0.
    pub fn new() -> TimingWheel<T> {
        TimingWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: BinaryHeap::new(),
            cursor: 0,
            active: VecDeque::new(),
            active_time: 0,
            len: 0,
            cascades: 0,
            scratch: Vec::new(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slot cascades performed (coarse slot drained and
    /// re-inserted one level down) — the wheel's bookkeeping cost,
    /// exported as `net.sched.wheel_cascades`.
    pub fn cascades(&self) -> u64 {
        self.cascades
    }

    /// Schedules `item` at `(time, seq)`.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        self.len += 1;
        let entry = Entry { time, seq, item };
        if !self.active.is_empty() {
            if time == self.active_time {
                // seq is globally monotone, so a same-time push always
                // belongs at the tail of the active queue.
                debug_assert!(self.active.back().is_none_or(|b| b.seq < seq));
                self.active.push_back(entry);
                return;
            }
            if time < self.active_time {
                // An earlier event appeared (fault layer scheduling into
                // the past): the buffered timestamp is no longer the
                // earliest, so put it back and re-derive.
                let mut stale = std::mem::take(&mut self.scratch);
                stale.extend(self.active.drain(..));
                for e in stale.drain(..) {
                    self.insert_raw(e);
                }
                self.scratch = stale;
            }
        }
        self.insert_raw(entry);
    }

    /// Timestamp of the earliest pending event. Cascades coarse slots
    /// as needed but consumes nothing.
    pub fn peek_time(&mut self) -> Option<u64> {
        self.ensure_active()
    }

    /// Removes and returns the earliest pending event as
    /// `(time, seq, item)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.ensure_active()?;
        let e = self.active.pop_front().expect("active non-empty");
        self.len -= 1;
        Some((e.time, e.seq, e.item))
    }

    fn insert_raw(&mut self, entry: Entry<T>) {
        if entry.time < self.cursor || entry.time - self.cursor >= HORIZON {
            self.overflow.push(Reverse(entry));
            return;
        }
        let delta = entry.time - self.cursor;
        let level = if delta < (1 << SLOT_BITS) {
            0
        } else if delta < (1 << (2 * SLOT_BITS)) {
            1
        } else {
            2
        };
        let slot = ((entry.time >> (SLOT_BITS * level)) as usize) & (SLOTS - 1);
        self.levels[level].insert(slot, entry);
    }

    /// Lower bound `(time, slot)` of the earliest occupied slot at
    /// `level`, reconstructed from the cursor's high bits (plus one
    /// revolution if the circular scan wrapped). For level 0 the bound
    /// is exact.
    fn candidate(&self, level: usize) -> Option<(u64, usize)> {
        let shift = SLOT_BITS * level;
        let cur_idx = ((self.cursor >> shift) as usize) & (SLOTS - 1);
        let (idx, wrapped) = self.levels[level].next_occupied(cur_idx)?;
        let above = SLOT_BITS * (level + 1);
        let base = (self.cursor >> above) << above;
        let mut lb = base + ((idx as u64) << shift);
        if wrapped {
            lb += (SLOTS as u64) << shift;
        }
        Some((lb.max(self.cursor), idx))
    }

    /// Fills the active queue with every event at the earliest pending
    /// timestamp and returns that timestamp.
    fn ensure_active(&mut self) -> Option<u64> {
        if !self.active.is_empty() {
            return Some(self.active_time);
        }
        loop {
            let mut cands: [Option<(u64, usize)>; LEVELS] = [None; LEVELS];
            let mut target = self.overflow.peek().map(|Reverse(e)| e.time);
            for (level, cand) in cands.iter_mut().enumerate() {
                if let Some((lb, slot)) = self.candidate(level) {
                    *cand = Some((lb, slot));
                    target = Some(target.map_or(lb, |t| t.min(lb)));
                }
            }
            let target = target?;
            // A coarse slot whose lower bound matches the target may
            // hide the true earliest event: cascade it down and rescan.
            // Highest level first so each entry re-lands at most
            // LEVELS-1 times.
            let mut cascaded = false;
            for level in (1..LEVELS).rev() {
                if let Some((lb, slot)) = cands[level] {
                    if lb == target {
                        self.cursor = target;
                        let mut entries = std::mem::take(&mut self.scratch);
                        self.levels[level].drain_slot_into(slot, &mut entries);
                        self.cascades += 1;
                        for e in entries.drain(..) {
                            self.insert_raw(e);
                        }
                        self.scratch = entries;
                        cascaded = true;
                        break;
                    }
                }
            }
            if cascaded {
                continue;
            }
            self.cursor = self.cursor.max(target);
            // A level-0 slot holds exactly one absolute timestamp (all
            // wheel times are in [cursor, cursor + HORIZON) and level-0
            // residents within 2^12 of the cursor), so draining it
            // yields only events at `target`.
            let overflow_at_target = self
                .overflow
                .peek()
                .is_some_and(|Reverse(top)| top.time == target);
            if !overflow_at_target {
                // Hot path: sort the slot in place and drain it straight
                // into the active queue — no allocation, slot capacity
                // kept for reuse.
                if let Some((lb, slot)) = cands[0] {
                    if lb == target {
                        let level = &mut self.levels[0];
                        let w = slot >> 6;
                        level.words[w] &= !(1u64 << (slot & 63));
                        if level.words[w] == 0 {
                            level.summary &= !(1u64 << w);
                        }
                        let entries = &mut level.slots[slot];
                        level.len -= entries.len();
                        debug_assert!(entries.iter().all(|e| e.time == target));
                        entries.sort_unstable_by_key(|e| e.seq);
                        self.active.extend(entries.drain(..));
                    }
                }
                debug_assert!(!self.active.is_empty());
                self.active_time = target;
                return Some(target);
            }
            let mut slot_entries = std::mem::take(&mut self.scratch);
            if let Some((lb, slot)) = cands[0] {
                if lb == target {
                    self.levels[0].drain_slot_into(slot, &mut slot_entries);
                }
            }
            debug_assert!(slot_entries.iter().all(|e| e.time == target));
            slot_entries.sort_unstable_by_key(|e| e.seq);
            let mut from_overflow = Vec::new();
            while let Some(Reverse(top)) = self.overflow.peek() {
                if top.time != target {
                    break;
                }
                let Reverse(e) = self.overflow.pop().expect("peeked");
                from_overflow.push(e);
            }
            // Merge the two seq-sorted runs.
            let mut a = slot_entries.drain(..).peekable();
            let mut b = from_overflow.into_iter().peekable();
            loop {
                let take_a = match (a.peek(), b.peek()) {
                    (Some(x), Some(y)) => x.seq < y.seq,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                let next = if take_a { a.next() } else { b.next() };
                self.active.push_back(next.expect("peeked"));
            }
            drop(a);
            self.scratch = slot_entries;
            debug_assert!(!self.active.is_empty());
            self.active_time = target;
            return Some(target);
        }
    }
}

impl<T> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

/// The simulator's event queue: timing wheel by default, binary heap
/// when the oracle is selected. Both dispense strictly by `(time, seq)`.
pub struct EventQueue<T> {
    inner: QueueImpl<T>,
}

enum QueueImpl<T> {
    Wheel(TimingWheel<T>),
    Heap(BinaryHeap<Reverse<Entry<T>>>),
}

impl<T> EventQueue<T> {
    /// An empty queue backed by the given scheduler.
    pub fn new(kind: SchedulerKind) -> EventQueue<T> {
        let inner = match kind {
            SchedulerKind::Wheel => QueueImpl::Wheel(TimingWheel::new()),
            SchedulerKind::Heap => QueueImpl::Heap(BinaryHeap::new()),
        };
        EventQueue { inner }
    }

    /// Which scheduler backs this queue.
    pub fn kind(&self) -> SchedulerKind {
        match &self.inner {
            QueueImpl::Wheel(_) => SchedulerKind::Wheel,
            QueueImpl::Heap(_) => SchedulerKind::Heap,
        }
    }

    /// Schedules `item` at `(time, seq)`.
    pub fn push(&mut self, time: u64, seq: u64, item: T) {
        match &mut self.inner {
            QueueImpl::Wheel(w) => w.push(time, seq, item),
            QueueImpl::Heap(h) => h.push(Reverse(Entry { time, seq, item })),
        }
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<u64> {
        match &mut self.inner {
            QueueImpl::Wheel(w) => w.peek_time(),
            QueueImpl::Heap(h) => h.peek().map(|Reverse(e)| e.time),
        }
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        match &mut self.inner {
            QueueImpl::Wheel(w) => w.pop(),
            QueueImpl::Heap(h) => h.pop().map(|Reverse(e)| (e.time, e.seq, e.item)),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.inner {
            QueueImpl::Wheel(w) => w.len(),
            QueueImpl::Heap(h) => h.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wheel slot cascades so far (0 for the heap).
    pub fn cascades(&self) -> u64 {
        match &self.inner {
            QueueImpl::Wheel(w) => w.cascades(),
            QueueImpl::Heap(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Drains both the wheel and a reference sort and asserts identical
    /// `(time, seq, payload)` order.
    fn assert_drains_sorted(wheel: &mut TimingWheel<u64>, mut reference: Vec<(u64, u64, u64)>) {
        reference.sort_unstable();
        let mut got = Vec::new();
        while let Some(e) = wheel.pop() {
            got.push(e);
        }
        assert_eq!(got, reference);
        assert!(wheel.is_empty());
    }

    #[test]
    fn single_level_orders_by_time_then_seq() {
        let mut w = TimingWheel::new();
        w.push(300, 2, 102);
        w.push(100, 0, 100);
        w.push(300, 1, 101);
        w.push(100, 3, 103);
        assert_eq!(w.len(), 4);
        assert_eq!(w.peek_time(), Some(100));
        assert_drains_sorted(
            &mut w,
            vec![(300, 2, 102), (100, 0, 100), (300, 1, 101), (100, 3, 103)],
        );
    }

    #[test]
    fn multi_level_cascades_preserve_order() {
        // Timestamps spanning all three levels: µs apart, ms apart and
        // multiple 16.8 s buckets apart.
        let mut w = TimingWheel::new();
        let times = [
            1u64,
            2,
            4_095,
            4_096,
            5_000,
            1 << 13,
            1 << 20,
            (1 << 24) + 7,
            (1 << 30) + 123,
            (3u64 << 24) + 55,
        ];
        let mut reference = Vec::new();
        for (seq, &t) in times.iter().enumerate() {
            w.push(t, seq as u64, t ^ seq as u64);
            reference.push((t, seq as u64, t ^ seq as u64));
        }
        assert_drains_sorted(&mut w, reference);
        assert!(w.cascades() > 0, "coarse slots must have cascaded");
    }

    #[test]
    fn overflow_bucket_handles_past_and_beyond_horizon() {
        let mut w = TimingWheel::new();
        // Advance the cursor by draining an event at t=10_000.
        w.push(10_000, 0, 0);
        assert_eq!(w.pop(), Some((10_000, 0, 0)));
        // Now push into the past (behind the cursor), far beyond the
        // ~19 h horizon, and in the normal window.
        w.push(5_000, 1, 1); // past → overflow
        w.push(HORIZON * 3 + 17, 2, 2); // far future → overflow
        w.push(20_000, 3, 3); // wheel-resident
        assert_eq!(w.pop(), Some((5_000, 1, 1)));
        assert_eq!(w.pop(), Some((20_000, 3, 3)));
        assert_eq!(w.pop(), Some((HORIZON * 3 + 17, 2, 2)));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn far_future_events_cascade_into_the_wheel_after_the_jump() {
        // After the cursor jumps to an overflow timestamp, later pushes
        // land in the wheel relative to the new cursor and still
        // interleave correctly with remaining overflow residents.
        let mut w = TimingWheel::new();
        w.push(HORIZON + 10, 0, 0);
        w.push(HORIZON + 500_000, 1, 1);
        assert_eq!(w.pop(), Some((HORIZON + 10, 0, 0)));
        w.push(HORIZON + 300, 2, 2);
        assert_eq!(w.pop(), Some((HORIZON + 300, 2, 2)));
        assert_eq!(w.pop(), Some((HORIZON + 500_000, 1, 1)));
    }

    #[test]
    fn interleaved_push_pop_matches_reference_order() {
        // Randomized differential test against a sorted reference,
        // interleaving pushes (some into the past) with pops the way
        // the simulator does.
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..20u64 {
            let mut w = TimingWheel::new();
            let mut reference: Vec<(u64, u64, u64)> = Vec::new();
            let mut popped: Vec<(u64, u64, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for _ in 0..400 {
                if rng.random_bool(0.6) || w.is_empty() {
                    // Mostly future pushes; occasionally slightly past.
                    let dt = match rng.random_range(0..10u32) {
                        0 => rng.random_range(0..(HORIZON * 2)),
                        1..=4 => rng.random_range(0..100_000_000),
                        _ => rng.random_range(0..5_000),
                    };
                    let t = if rng.random_bool(0.05) && now > 100 {
                        now - rng.random_range(0..now.min(1_000))
                    } else {
                        now + dt
                    };
                    w.push(t, seq, round ^ seq);
                    reference.push((t, seq, round ^ seq));
                    seq += 1;
                } else {
                    let e = w.pop().unwrap();
                    now = now.max(e.0);
                    popped.push(e);
                }
            }
            while let Some(e) = w.pop() {
                popped.push(e);
            }
            // The interleaved pop order must equal a stable merge: every
            // pop returned the minimum of what was pending at that
            // moment. Verify the end-to-end multiset and that each
            // pop-run between pushes was locally sorted by checking the
            // full sequence against a replay.
            reference.sort_unstable();
            let mut sorted_popped = popped.clone();
            sorted_popped.sort_unstable();
            assert_eq!(sorted_popped, reference, "round {round}: multiset mismatch");
        }
    }

    #[test]
    fn event_queue_wheel_and_heap_agree() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut wheel = EventQueue::new(SchedulerKind::Wheel);
        let mut heap = EventQueue::new(SchedulerKind::Heap);
        assert_eq!(wheel.kind(), SchedulerKind::Wheel);
        assert_eq!(heap.kind(), SchedulerKind::Heap);
        for seq in 0..2_000u64 {
            let t = rng.random_range(0..200_000_000u64);
            wheel.push(t, seq, seq);
            heap.push(t, seq, seq);
        }
        assert_eq!(wheel.len(), heap.len());
        loop {
            assert_eq!(wheel.peek_time(), heap.peek_time());
            match (wheel.pop(), heap.pop()) {
                (None, None) => break,
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn scheduler_kind_from_env_defaults_to_wheel() {
        // Not run with the env var set in CI; just pin the default.
        if std::env::var("PDS2_NET_SCHED").is_err() {
            assert_eq!(SchedulerKind::from_env(), SchedulerKind::Wheel);
        }
    }
}
