//! Differential tests: the timing-wheel scheduler against the retained
//! binary-heap oracle.
//!
//! Both schedulers promise strict `(time, seq)` dispatch order, so any
//! workload — random sends, timers, outages scheduled behind the clock,
//! fault plans, segmented deadlines — must produce bit-identical
//! delivered-message traces, `NetStats` and final clocks whichever
//! scheduler runs it.

use pds2_net::fault::{FaultPlan, LinkEffect, LinkScope};
use pds2_net::sched::SchedulerKind;
use pds2_net::sim::{Ctx, NetStats, Node, NodeId, SimTime, Simulator};
use pds2_net::LinkModel;
use proptest::prelude::*;
use rand::Rng;

/// A protocol that exercises every event type: each node runs a
/// periodic timer, fans a counter out to hash-chosen peers, and replies
/// to even values. Message digests commit to payloads so the golden
/// trace catches any reordering.
struct Chatter {
    period_us: u64,
    fanout: usize,
    sent: u64,
    received: Vec<u64>,
}

impl Node for Chatter {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        let jitter = ctx.rng().random_range(0..self.period_us);
        ctx.set_timer(jitter + 1, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        self.received.push(msg);
        if msg % 2 == 0 && msg < 1_000_000 {
            ctx.send(from, msg + 1_000_001);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
        self.sent += 1;
        let value = self.sent * 2 + ctx.id as u64 * 1_000;
        for _ in 0..self.fanout {
            if let Some(peer) = ctx.random_peer() {
                ctx.send(peer, value);
            }
        }
        ctx.set_timer(self.period_us, 0);
    }

    fn msg_size(_msg: &u64) -> u64 {
        24
    }

    fn msg_digest(msg: &u64) -> u64 {
        msg.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    fn corrupt_msg(msg: &u64, rng: &mut rand::rngs::StdRng) -> Option<u64> {
        Some(msg ^ (1 << rng.random_range(0..64)))
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer(self.period_us, 0);
    }
}

/// Everything comparable about one run.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    trace: pds2_crypto::Digest,
    stats: NetStats,
    now: SimTime,
    processed: u64,
    online: usize,
    received: Vec<usize>,
}

/// Runs the chatter workload under the given scheduler. `segments`
/// splits the horizon into that many `run_until` calls, with outages
/// scheduled *between* segments — after the clock has advanced — so the
/// wheel's past-event overflow path is exercised exactly like the
/// heap's.
fn run(
    kind: SchedulerKind,
    n: usize,
    seed: u64,
    horizon_us: u64,
    segments: u64,
    with_faults: bool,
) -> RunFingerprint {
    let nodes = (0..n)
        .map(|i| Chatter {
            period_us: 500 + (i as u64 % 7) * 190,
            fanout: 1 + i % 3,
            sent: 0,
            received: Vec::new(),
        })
        .collect();
    let link = LinkModel {
        base_latency_us: 900,
        jitter_us: 300,
        bandwidth_bytes_per_sec: 1_250_000,
        drop_probability: 0.02,
        node_slowdown: vec![1.0, 4.0],
        topology: None,
    };
    let mut sim = Simulator::with_scheduler(nodes, link, seed, kind);
    assert_eq!(sim.scheduler_kind(), kind);
    if with_faults {
        sim.install_fault_plan(
            FaultPlan::new(seed ^ 0xFA)
                .crash(n - 1, horizon_us / 3, Some(horizon_us / 2))
                .byzantine(
                    horizon_us / 4,
                    horizon_us / 2,
                    LinkScope::any(),
                    LinkEffect::Duplicate {
                        probability: 0.2,
                        extra_delay_us: 40,
                    },
                )
                .byzantine(
                    0,
                    horizon_us,
                    LinkScope::from_node(0),
                    LinkEffect::Corrupt { probability: 0.1 },
                ),
        );
    }
    sim.enable_trace();
    let mut processed = 0;
    for s in 1..=segments {
        processed += sim.run_until(horizon_us * s / segments);
        // Schedule an outage behind the advanced clock: the heap fires
        // it on the next pop, so the wheel must as well.
        if s == 1 && sim.now() > 100 {
            sim.schedule_outage(0, sim.now() - 100, sim.now() + horizon_us / 8);
        }
    }
    processed += sim.run_until(horizon_us);
    RunFingerprint {
        trace: sim.trace_hash().unwrap(),
        stats: sim.stats(),
        now: sim.now(),
        processed,
        online: sim.online_count(),
        received: sim.nodes().map(|c| c.received.len()).collect(),
    }
}

#[test]
fn wheel_matches_heap_on_a_fixed_chaos_workload() {
    let a = run(SchedulerKind::Wheel, 12, 77, 300_000, 4, true);
    let b = run(SchedulerKind::Heap, 12, 77, 300_000, 4, true);
    assert_eq!(a, b);
    assert!(a.stats.delivered > 100, "workload should be non-trivial");
    assert!(a.stats.crashes > 0 && a.stats.duplicated > 0);
}

#[test]
fn wheel_matches_heap_beyond_the_wheel_horizon() {
    // Timers alone, but spanning > 2^36 µs (~19 h) so every level and
    // the far-future overflow bucket participate.
    struct SparseTimers {
        fired: Vec<(SimTime, u64)>,
    }
    impl Node for SparseTimers {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            for k in 0..12u64 {
                // 1 µs .. ~38 h, geometric spacing.
                ctx.set_timer(1u64 << (2 * k + 15), k);
            }
            ctx.set_timer(1, 99);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, ()>, _: NodeId, _: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, tag: u64) {
            self.fired.push((ctx.now, tag));
            if tag == 99 && self.fired.len() < 40 {
                ctx.set_timer(1u64 << 37, 99); // repeatedly beyond horizon
            }
        }
    }
    let run = |kind| {
        let nodes = (0..3).map(|_| SparseTimers { fired: Vec::new() }).collect();
        let mut sim = Simulator::with_scheduler(nodes, LinkModel::instant(), 5, kind);
        let processed = sim.run_until(u64::MAX);
        let fired: Vec<Vec<(SimTime, u64)>> = sim.nodes().map(|n| n.fired.clone()).collect();
        (processed, sim.now(), fired)
    };
    let wheel = run(SchedulerKind::Wheel);
    let heap = run(SchedulerKind::Heap);
    assert_eq!(wheel, heap);
    assert!(wheel.1 > 1 << 37, "run must cross the wheel horizon");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random workload shapes: any (n, seed, horizon, segmentation,
    /// faults) must fingerprint identically under both schedulers.
    #[test]
    fn wheel_and_heap_fingerprints_agree(
        n in 2usize..14,
        seed in 0u64..1_000_000,
        horizon_us in 20_000u64..400_000,
        segments in 1u64..6,
        with_faults in any::<bool>(),
    ) {
        let a = run(SchedulerKind::Wheel, n, seed, horizon_us, segments, with_faults);
        let b = run(SchedulerKind::Heap, n, seed, horizon_us, segments, with_faults);
        prop_assert_eq!(a, b);
    }
}
