//! Shamir (t, n) threshold secret sharing over F_{2^61 - 1}.
//!
//! Used where the marketplace needs robustness to missing parties (e.g.
//! splitting a storage decryption key across Key-Keeper-style nodes, as in
//! the related work the paper surveys): any `t` of `n` shares reconstruct,
//! fewer reveal nothing. The same (t, n) polynomial structure — with the
//! field swapped for the Schnorr group's scalar field — underlies the
//! `pds2-gov` validator committees that threshold-sign blocks.
//!
//! # Example
//!
//! ```
//! use pds2_mpc::field::Fp;
//! use pds2_mpc::shamir::{reconstruct, split};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let secret = Fp::from_signed(271_828);
//!
//! // Split into 5 shares, any 3 of which reconstruct.
//! let shares = split(&mut rng, secret, 3, 5).unwrap();
//!
//! // A non-contiguous subset of exactly t shares suffices…
//! let subset = [shares[0], shares[2], shares[4]];
//! assert_eq!(reconstruct(&subset, 3).unwrap(), secret);
//!
//! // …while t-1 shares interpolate an unrelated value.
//! let guess = reconstruct(&shares[..2], 2).unwrap();
//! assert_ne!(guess, secret);
//! ```

use crate::field::Fp;
use rand::Rng;

/// A single Shamir share: the evaluation point and the polynomial value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShamirShare {
    /// Evaluation point `x` (nonzero).
    pub x: Fp,
    /// Share value `f(x)`.
    pub y: Fp,
}

/// Errors from Shamir operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShamirError {
    /// Threshold must satisfy `1 <= t <= n`.
    BadThreshold,
    /// Not enough shares to reconstruct.
    NotEnoughShares,
    /// Two shares carry the same evaluation point.
    DuplicatePoint,
}

impl std::fmt::Display for ShamirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShamirError::BadThreshold => write!(f, "threshold must satisfy 1 <= t <= n"),
            ShamirError::NotEnoughShares => write!(f, "not enough shares to reconstruct"),
            ShamirError::DuplicatePoint => write!(f, "duplicate evaluation point"),
        }
    }
}

impl std::error::Error for ShamirError {}

/// Splits `secret` into `n` shares with reconstruction threshold `t`.
///
/// The dealer samples a uniformly random polynomial `f` of degree `t - 1`
/// with `f(0) = secret` and hands party `i` the point `(i, f(i))`.
///
/// ```
/// use pds2_mpc::field::Fp;
/// use pds2_mpc::shamir::{split, ShamirError};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let shares = split(&mut rng, Fp::new(12345), 2, 4).unwrap();
/// assert_eq!(shares.len(), 4);
///
/// // The threshold must satisfy 1 <= t <= n.
/// assert_eq!(
///     split(&mut rng, Fp::ZERO, 5, 4).unwrap_err(),
///     ShamirError::BadThreshold,
/// );
/// ```
pub fn split<R: Rng + ?Sized>(
    rng: &mut R,
    secret: Fp,
    t: usize,
    n: usize,
) -> Result<Vec<ShamirShare>, ShamirError> {
    if t == 0 || t > n {
        return Err(ShamirError::BadThreshold);
    }
    // Random polynomial of degree t-1 with f(0) = secret.
    let mut coeffs = Vec::with_capacity(t);
    coeffs.push(secret);
    for _ in 1..t {
        coeffs.push(Fp::random(rng));
    }
    let shares = (1..=n as u64)
        .map(|i| {
            let x = Fp::new(i);
            // Horner evaluation.
            let y = coeffs
                .iter()
                .rev()
                .fold(Fp::ZERO, |acc, &c| acc.mul(x).add(c));
            ShamirShare { x, y }
        })
        .collect();
    Ok(shares)
}

/// Reconstructs the secret from at least `t` shares by Lagrange
/// interpolation at zero.
///
/// Only the first `t` shares are consumed; they must carry pairwise
/// distinct evaluation points.
///
/// ```
/// use pds2_mpc::field::Fp;
/// use pds2_mpc::shamir::{reconstruct, split, ShamirError};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let secret = Fp::new(555);
/// let shares = split(&mut rng, secret, 3, 5).unwrap();
///
/// assert_eq!(reconstruct(&shares, 3).unwrap(), secret);
/// assert_eq!(
///     reconstruct(&shares[..2], 3).unwrap_err(),
///     ShamirError::NotEnoughShares,
/// );
/// ```
pub fn reconstruct(shares: &[ShamirShare], t: usize) -> Result<Fp, ShamirError> {
    if shares.len() < t {
        return Err(ShamirError::NotEnoughShares);
    }
    let points = &shares[..t];
    for (i, a) in points.iter().enumerate() {
        for b in &points[i + 1..] {
            if a.x == b.x {
                return Err(ShamirError::DuplicatePoint);
            }
        }
    }
    let mut secret = Fp::ZERO;
    for (i, si) in points.iter().enumerate() {
        // Lagrange basis at x = 0: Π_{j≠i} x_j / (x_j - x_i)
        let mut num = Fp::ONE;
        let mut den = Fp::ONE;
        for (j, sj) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            num = num.mul(sj.x);
            den = den.mul(sj.x.sub(si.x));
        }
        let basis = num.mul(
            den.inv()
                .expect("distinct points imply invertible denominator"),
        );
        secret = secret.add(si.y.mul(basis));
    }
    Ok(secret)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn split_reconstruct_all_shares() {
        let mut rng = StdRng::seed_from_u64(1);
        let secret = Fp::from_signed(987654321);
        let shares = split(&mut rng, secret, 3, 5).unwrap();
        assert_eq!(shares.len(), 5);
        assert_eq!(reconstruct(&shares, 3).unwrap(), secret);
    }

    #[test]
    fn any_t_shares_suffice() {
        let mut rng = StdRng::seed_from_u64(2);
        let secret = Fp::new(424242);
        let shares = split(&mut rng, secret, 3, 6).unwrap();
        // Try several subsets of exactly t shares.
        for subset in [[0usize, 1, 2], [3, 4, 5], [0, 2, 4], [1, 3, 5]] {
            let picked: Vec<ShamirShare> = subset.iter().map(|&i| shares[i]).collect();
            assert_eq!(reconstruct(&picked, 3).unwrap(), secret, "{subset:?}");
        }
    }

    #[test]
    fn fewer_than_t_shares_fail() {
        let mut rng = StdRng::seed_from_u64(3);
        let shares = split(&mut rng, Fp::new(7), 4, 6).unwrap();
        assert_eq!(
            reconstruct(&shares[..3], 4).unwrap_err(),
            ShamirError::NotEnoughShares
        );
    }

    #[test]
    fn fewer_than_t_shares_reveal_nothing() {
        // Interpolating t-1 shares with a *wrong* threshold yields an
        // unrelated value, not the secret.
        let mut rng = StdRng::seed_from_u64(4);
        let secret = Fp::new(123456);
        let shares = split(&mut rng, secret, 3, 5).unwrap();
        let guess = reconstruct(&shares[..2], 2).unwrap();
        assert_ne!(guess, secret);
    }

    #[test]
    fn bad_threshold_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            split(&mut rng, Fp::ZERO, 0, 5).unwrap_err(),
            ShamirError::BadThreshold
        );
        assert_eq!(
            split(&mut rng, Fp::ZERO, 6, 5).unwrap_err(),
            ShamirError::BadThreshold
        );
    }

    #[test]
    fn duplicate_points_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let shares = split(&mut rng, Fp::new(1), 2, 3).unwrap();
        let dup = vec![shares[0], shares[0]];
        assert_eq!(
            reconstruct(&dup, 2).unwrap_err(),
            ShamirError::DuplicatePoint
        );
    }

    #[test]
    fn t_equals_one_is_replication() {
        let mut rng = StdRng::seed_from_u64(7);
        let secret = Fp::new(99);
        let shares = split(&mut rng, secret, 1, 4).unwrap();
        for s in &shares {
            assert_eq!(reconstruct(std::slice::from_ref(s), 1).unwrap(), secret);
        }
    }

    #[test]
    fn t_equals_n_needs_all() {
        let mut rng = StdRng::seed_from_u64(8);
        let secret = Fp::new(31337);
        let shares = split(&mut rng, secret, 4, 4).unwrap();
        assert_eq!(reconstruct(&shares, 4).unwrap(), secret);
        assert!(reconstruct(&shares[..3], 4).is_err());
    }
}
