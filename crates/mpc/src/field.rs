//! The prime field F_p with p = 2^61 - 1 (a Mersenne prime).
//!
//! All SMC arithmetic in PDS² happens in this field: it is large enough to
//! hold fixed-point products of ML features without wrap-around, and the
//! Mersenne structure gives a branch-light reduction.
//!
//! # Example
//!
//! ```
//! use pds2_mpc::field::{decode_fixed, encode_fixed, Fp, MODULUS};
//!
//! // Canonical arithmetic mod 2^61 - 1.
//! let a = Fp::new(10);
//! let b = Fp::from_signed(-3); // negatives wrap to p - |v|
//! assert_eq!(a.add(b).to_signed(), 7);
//! assert_eq!(a.mul(b).to_signed(), -30);
//!
//! // Fermat inversion: a * a^-1 == 1 for every nonzero a.
//! let inv = a.inv().unwrap();
//! assert_eq!(a.mul(inv), Fp::ONE);
//! assert_eq!(Fp::ZERO.inv(), None);
//!
//! // f64 features ride through the field as 2^16 fixed-point.
//! let x = encode_fixed(1.5);
//! assert_eq!(decode_fixed(x), 1.5);
//! assert_eq!(MODULUS, (1u64 << 61) - 1);
//! ```

/// Field modulus `p = 2^61 - 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of F_{2^61 - 1}, kept in canonical range `[0, p)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Fp(u64);

impl std::fmt::Debug for Fp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl std::fmt::Display for Fp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[allow(clippy::should_implement_trait)] // explicit named field ops by design
impl Fp {
    /// Additive identity.
    pub const ZERO: Fp = Fp(0);
    /// Multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Constructs from a u64, reducing mod p.
    pub fn new(v: u64) -> Fp {
        let mut r = (v & MODULUS) + (v >> 61);
        if r >= MODULUS {
            r -= MODULUS;
        }
        Fp(r)
    }

    /// Raw canonical representative.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Encodes a signed integer (negatives as `p - |v|`).
    ///
    /// Panics if `|v| >= p/2` (would be ambiguous to decode).
    pub fn from_signed(v: i64) -> Fp {
        let mag = v.unsigned_abs();
        assert!(mag < MODULUS / 2, "signed value too large for field");
        if v < 0 {
            Fp(MODULUS - mag)
        } else {
            Fp(mag)
        }
    }

    /// Decodes the wrap-around signed representation.
    pub fn to_signed(self) -> i64 {
        if self.0 < MODULUS / 2 {
            self.0 as i64
        } else {
            -((MODULUS - self.0) as i64)
        }
    }

    /// Field addition.
    pub fn add(self, other: Fp) -> Fp {
        let mut r = self.0 + other.0; // < 2^62, no overflow
        if r >= MODULUS {
            r -= MODULUS;
        }
        Fp(r)
    }

    /// Field subtraction.
    pub fn sub(self, other: Fp) -> Fp {
        if self.0 >= other.0 {
            Fp(self.0 - other.0)
        } else {
            Fp(self.0 + MODULUS - other.0)
        }
    }

    /// Field negation.
    pub fn neg(self) -> Fp {
        if self.0 == 0 {
            self
        } else {
            Fp(MODULUS - self.0)
        }
    }

    /// Field multiplication with Mersenne reduction.
    pub fn mul(self, other: Fp) -> Fp {
        let prod = self.0 as u128 * other.0 as u128;
        // x mod (2^61 - 1): fold the high bits down twice.
        let lo = (prod & MODULUS as u128) as u64;
        let hi = (prod >> 61) as u64;
        Fp::new(lo.wrapping_add(hi & MODULUS).wrapping_add(hi >> 61))
    }

    /// Exponentiation by square-and-multiply.
    pub fn pow(self, mut e: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse (Fermat), `None` for zero.
    pub fn inv(self) -> Option<Fp> {
        if self.0 == 0 {
            None
        } else {
            Some(self.pow(MODULUS - 2))
        }
    }

    /// Uniform random field element.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Fp {
        Fp::new(rng.random_range(0..MODULUS))
    }
}

/// Fixed-point scale used when pushing `f64` features through the field.
pub const FIXED_SCALE: f64 = 65_536.0; // 2^16

/// Encodes an `f64` as a fixed-point field element.
pub fn encode_fixed(v: f64) -> Fp {
    Fp::from_signed((v * FIXED_SCALE).round() as i64)
}

/// Decodes a fixed-point field element (single scale).
pub fn decode_fixed(v: Fp) -> f64 {
    v.to_signed() as f64 / FIXED_SCALE
}

/// Decodes a product of two fixed-point values (double scale).
///
/// Multiplying two encoded values squares the scale, so the product must be
/// decoded with this function rather than [`decode_fixed`]:
///
/// ```
/// use pds2_mpc::field::{decode_fixed_product, encode_fixed};
///
/// let prod = encode_fixed(1.5).mul(encode_fixed(-2.0));
/// assert_eq!(decode_fixed_product(prod), -3.0);
/// ```
pub fn decode_fixed_product(v: Fp) -> f64 {
    v.to_signed() as f64 / (FIXED_SCALE * FIXED_SCALE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modulus_is_mersenne_prime() {
        assert_eq!(MODULUS, 2_305_843_009_213_693_951);
    }

    #[test]
    fn new_reduces() {
        assert_eq!(Fp::new(MODULUS).value(), 0);
        assert_eq!(Fp::new(MODULUS + 5).value(), 5);
        assert_eq!(Fp::new(u64::MAX).value(), u64::MAX % MODULUS);
    }

    #[test]
    fn add_sub_inverse() {
        let a = Fp::new(123456789);
        let b = Fp::new(MODULUS - 5);
        assert_eq!(a.add(b).sub(b), a);
        assert_eq!(a.sub(a), Fp::ZERO);
        assert_eq!(a.add(a.neg()), Fp::ZERO);
    }

    #[test]
    fn mul_matches_u128_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let a = Fp::random(&mut rng);
            let b = Fp::random(&mut rng);
            let expected = (a.value() as u128 * b.value() as u128 % MODULUS as u128) as u64;
            assert_eq!(a.mul(b).value(), expected);
        }
    }

    #[test]
    fn inv_is_inverse() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = Fp::random(&mut rng);
            if a == Fp::ZERO {
                continue;
            }
            assert_eq!(a.mul(a.inv().unwrap()), Fp::ONE);
        }
        assert!(Fp::ZERO.inv().is_none());
    }

    #[test]
    fn pow_basics() {
        let a = Fp::new(3);
        assert_eq!(a.pow(0), Fp::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(4).value(), 81);
        // Fermat's little theorem.
        assert_eq!(a.pow(MODULUS - 1), Fp::ONE);
    }

    #[test]
    fn signed_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 999_999_999] {
            assert_eq!(Fp::from_signed(v).to_signed(), v);
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn signed_overflow_panics() {
        let _ = Fp::from_signed(i64::MAX);
    }

    #[test]
    fn fixed_point_roundtrip() {
        for v in [-3.5f64, 0.0, 0.0001, 123.456] {
            assert!((decode_fixed(encode_fixed(v)) - v).abs() < 1e-3, "{v}");
        }
        let prod = encode_fixed(2.5).mul(encode_fixed(-4.0));
        assert!((decode_fixed_product(prod) - -10.0).abs() < 1e-3);
    }
}
