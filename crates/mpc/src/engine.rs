//! SMC protocol engine with communication accounting.
//!
//! The engine evaluates arithmetic over secret-shared vectors while
//! charging every interactive step to a [`CostReport`]: Beaver
//! multiplications cost one round (all elements in a batch are opened
//! together, as a real implementation would), openings cost one round,
//! and sharing inputs costs one round of point-to-point sends.
//!
//! This gives experiment E4 the quantity the paper cares about: SMC's
//! "active participation … coupled with delays introduced during
//! communication" — i.e. round counts and bytes on the wire — versus the
//! compute-only overheads of HE and TEE.
//!
//! # Example
//!
//! ```
//! use pds2_mpc::field::Fp;
//! use pds2_mpc::MpcEngine;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut engine = MpcEngine::new(3, StdRng::seed_from_u64(1));
//!
//! // Share two vectors, multiply element-wise, open the result.
//! let a = engine.share_input(&[Fp::from_signed(6), Fp::from_signed(-2)]);
//! let b = engine.share_input(&[Fp::from_signed(7), Fp::from_signed(5)]);
//! let prod = engine.mul(&a, &b);
//! let opened = engine.open(&prod);
//! assert_eq!(opened[0].to_signed(), 42);
//! assert_eq!(opened[1].to_signed(), -10);
//!
//! // Every interactive step was metered: 2 shares + 1 batched mul + 1 open.
//! let cost = engine.cost();
//! assert_eq!(cost.rounds, 4);
//! assert_eq!(cost.triples_used, 2);
//!
//! // Turn the meter into a wall-clock estimate: 50 ms RTT, 1 MB/s.
//! let secs = cost.network_time_secs(0.05, 1_000_000.0);
//! assert!(secs > 0.2);
//! ```

use crate::additive::{beaver_mul, generate_triple, reconstruct, share, Shares};
use crate::field::Fp;
use rand::Rng;

/// Size of one serialized field element on the wire.
pub const FIELD_ELEM_BYTES: u64 = 8;

/// Accumulated communication and computation costs of a protocol run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Interactive rounds (network latency multiplier).
    pub rounds: u64,
    /// Total bytes sent across all parties.
    pub bytes_sent: u64,
    /// Local field operations performed (compute proxy).
    pub field_ops: u64,
    /// Beaver triples consumed from the offline phase.
    pub triples_used: u64,
}

impl CostReport {
    /// Estimated wall-clock communication delay given per-round latency
    /// and bandwidth (bytes/sec).
    pub fn network_time_secs(&self, round_latency_secs: f64, bandwidth_bytes_per_sec: f64) -> f64 {
        self.rounds as f64 * round_latency_secs + self.bytes_sent as f64 / bandwidth_bytes_per_sec
    }
}

/// A vector of secret-shared values handled by the engine.
#[derive(Clone, Debug)]
pub struct SharedVec {
    elems: Vec<Shares>,
    parties: usize,
}

impl SharedVec {
    /// Number of shared elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }
}

/// The SMC engine: a fixed party count, an RNG for masks and a cost meter.
pub struct MpcEngine<R: Rng> {
    parties: usize,
    rng: R,
    cost: CostReport,
}

impl<R: Rng> MpcEngine<R> {
    /// Creates an engine for `parties` computing parties (>= 2).
    pub fn new(parties: usize, rng: R) -> Self {
        assert!(parties >= 2, "SMC needs at least two parties");
        MpcEngine {
            parties,
            rng,
            cost: CostReport::default(),
        }
    }

    /// Number of computing parties.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Cost accumulated so far.
    pub fn cost(&self) -> CostReport {
        self.cost
    }

    /// Resets the cost meter (e.g. between benchmark iterations).
    pub fn reset_cost(&mut self) {
        self.cost = CostReport::default();
    }

    /// Secret-shares an input vector held by one party.
    ///
    /// Costs one round: the input owner sends one share per element to each
    /// other party.
    pub fn share_input(&mut self, values: &[Fp]) -> SharedVec {
        let elems: Vec<Shares> = values
            .iter()
            .map(|&v| share(&mut self.rng, v, self.parties))
            .collect();
        self.cost.rounds += 1;
        self.cost.bytes_sent += values.len() as u64 * (self.parties as u64 - 1) * FIELD_ELEM_BYTES;
        self.cost.field_ops += values.len() as u64 * self.parties as u64;
        SharedVec {
            elems,
            parties: self.parties,
        }
    }

    /// Secret-shares a vector of fixed-point floats.
    pub fn share_input_fixed(&mut self, values: &[f64]) -> SharedVec {
        let encoded: Vec<Fp> = values
            .iter()
            .map(|&v| crate::field::encode_fixed(v))
            .collect();
        self.share_input(&encoded)
    }

    /// Element-wise addition (local, free of communication).
    pub fn add(&mut self, a: &SharedVec, b: &SharedVec) -> SharedVec {
        assert_eq!(a.len(), b.len(), "length mismatch");
        let elems = a
            .elems
            .iter()
            .zip(&b.elems)
            .map(|(x, y)| x.add(y))
            .collect();
        self.cost.field_ops += a.len() as u64 * self.parties as u64;
        SharedVec {
            elems,
            parties: self.parties,
        }
    }

    /// Element-wise multiplication by public constants (local).
    pub fn mul_public(&mut self, a: &SharedVec, k: &[Fp]) -> SharedVec {
        assert_eq!(a.len(), k.len(), "length mismatch");
        let elems = a
            .elems
            .iter()
            .zip(k)
            .map(|(x, &c)| x.mul_public(c))
            .collect();
        self.cost.field_ops += a.len() as u64 * self.parties as u64;
        SharedVec {
            elems,
            parties: self.parties,
        }
    }

    /// Element-wise Beaver multiplication of two shared vectors.
    ///
    /// All element multiplications in the batch share a single round (their
    /// masked openings are sent together), at `2 · n · len` field elements
    /// broadcast.
    pub fn mul(&mut self, a: &SharedVec, b: &SharedVec) -> SharedVec {
        assert_eq!(a.len(), b.len(), "length mismatch");
        let elems: Vec<Shares> = a
            .elems
            .iter()
            .zip(&b.elems)
            .map(|(x, y)| {
                let triple = generate_triple(&mut self.rng, self.parties);
                let (z, _) = beaver_mul(x, y, &triple);
                z
            })
            .collect();
        self.cost.rounds += 1;
        self.cost.triples_used += a.len() as u64;
        // Each party broadcasts its shares of d and e for each element.
        self.cost.bytes_sent +=
            2 * a.len() as u64 * self.parties as u64 * (self.parties as u64 - 1) * FIELD_ELEM_BYTES;
        self.cost.field_ops += 8 * a.len() as u64 * self.parties as u64;
        SharedVec {
            elems,
            parties: self.parties,
        }
    }

    /// Sums all elements of a shared vector into a single shared scalar
    /// (local).
    pub fn sum(&mut self, a: &SharedVec) -> SharedVec {
        assert!(!a.is_empty(), "sum of empty vector");
        let mut acc = a.elems[0].clone();
        for e in &a.elems[1..] {
            acc = acc.add(e);
        }
        self.cost.field_ops += a.len() as u64 * self.parties as u64;
        SharedVec {
            elems: vec![acc],
            parties: self.parties,
        }
    }

    /// Secure dot product: element-wise Beaver multiply, then local sum.
    pub fn dot(&mut self, a: &SharedVec, b: &SharedVec) -> SharedVec {
        let prods = self.mul(a, b);
        self.sum(&prods)
    }

    /// Opens (reconstructs) a shared vector. Costs one round in which each
    /// party broadcasts its shares.
    pub fn open(&mut self, a: &SharedVec) -> Vec<Fp> {
        self.cost.rounds += 1;
        self.cost.bytes_sent +=
            a.len() as u64 * self.parties as u64 * (self.parties as u64 - 1) * FIELD_ELEM_BYTES;
        self.cost.field_ops += a.len() as u64 * self.parties as u64;
        a.elems.iter().map(reconstruct).collect()
    }
}

/// Computes a full linear-model inference `w · x + b` under SMC and returns
/// `(result, cost)`. Both the weights (consumer secret) and the features
/// (provider secret) stay shared throughout; only the final score is opened.
///
/// ```
/// use pds2_mpc::{secure_linear_inference, MpcEngine};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut engine = MpcEngine::new(3, StdRng::seed_from_u64(4));
/// let (score, cost) =
///     secure_linear_inference(&mut engine, &[0.5, -1.0], 0.25, &[2.0, 3.0]);
/// assert!((score - (-1.75)).abs() < 1e-3);
/// assert_eq!(cost.triples_used, 2); // one Beaver triple per dimension
/// ```
pub fn secure_linear_inference<R: Rng>(
    engine: &mut MpcEngine<R>,
    weights: &[f64],
    bias: f64,
    features: &[f64],
) -> (f64, CostReport) {
    assert_eq!(weights.len(), features.len(), "dimension mismatch");
    engine.reset_cost();
    let w = engine.share_input_fixed(weights);
    let x = engine.share_input_fixed(features);
    let dot = engine.dot(&w, &x);
    let with_bias = {
        // Bias enters at double scale to match the product scale.
        let b = crate::field::Fp::from_signed(
            (bias * crate::field::FIXED_SCALE * crate::field::FIXED_SCALE).round() as i64,
        );
        SharedVec {
            elems: vec![dot.elems[0].add_public(b)],
            parties: dot.parties,
        }
    };
    let opened = engine.open(&with_bias);
    let result = crate::field::decode_fixed_product(opened[0]);
    (result, engine.cost())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{encode_fixed, Fp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine(parties: usize) -> MpcEngine<StdRng> {
        MpcEngine::new(parties, StdRng::seed_from_u64(42))
    }

    #[test]
    fn share_open_roundtrip() {
        let mut e = engine(3);
        let values: Vec<Fp> = [1i64, -2, 300]
            .iter()
            .map(|&v| Fp::from_signed(v))
            .collect();
        let shared = e.share_input(&values);
        let opened = e.open(&shared);
        assert_eq!(opened, values);
    }

    #[test]
    fn add_and_mul_public_are_free_of_rounds() {
        let mut e = engine(3);
        let a = e.share_input(&[Fp::from_signed(10)]);
        let b = e.share_input(&[Fp::from_signed(5)]);
        let rounds_before = e.cost().rounds;
        let sum = e.add(&a, &b);
        let scaled = e.mul_public(&sum, &[Fp::from_signed(2)]);
        assert_eq!(
            e.cost().rounds,
            rounds_before,
            "local ops must be round-free"
        );
        let opened = e.open(&scaled);
        assert_eq!(opened[0].to_signed(), 30);
    }

    #[test]
    fn mul_consumes_one_round_per_batch() {
        let mut e = engine(3);
        let a = e.share_input(&[Fp::from_signed(3); 10]);
        let b = e.share_input(&[Fp::from_signed(4); 10]);
        let before = e.cost();
        let prod = e.mul(&a, &b);
        let after = e.cost();
        assert_eq!(after.rounds - before.rounds, 1, "batched mul = 1 round");
        assert_eq!(after.triples_used - before.triples_used, 10);
        let opened = e.open(&prod);
        assert!(opened.iter().all(|v| v.to_signed() == 12));
    }

    #[test]
    fn dot_product_correct() {
        let mut e = engine(4);
        let a = e.share_input(&[Fp::from_signed(1), Fp::from_signed(2), Fp::from_signed(3)]);
        let b = e.share_input(&[Fp::from_signed(4), Fp::from_signed(-5), Fp::from_signed(6)]);
        let dot = e.dot(&a, &b);
        let opened = e.open(&dot);
        assert_eq!(opened[0].to_signed(), 4 - 10 + 18);
    }

    #[test]
    fn secure_linear_inference_matches_plaintext() {
        let weights = [0.5, -1.25, 2.0];
        let features = [4.0, 2.0, 0.5];
        let bias = 0.75;
        let expected: f64 = weights
            .iter()
            .zip(&features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + bias;
        let mut e = engine(3);
        let (result, cost) = secure_linear_inference(&mut e, &weights, bias, &features);
        assert!((result - expected).abs() < 1e-3, "{result} vs {expected}");
        assert!(cost.rounds >= 4, "share x2 + mul + open");
        assert!(cost.bytes_sent > 0);
        assert_eq!(cost.triples_used, 3);
    }

    #[test]
    fn cost_scales_with_dimension() {
        let d1 = {
            let mut e = engine(3);
            let w = vec![1.0; 8];
            let x = vec![1.0; 8];
            secure_linear_inference(&mut e, &w, 0.0, &x).1
        };
        let d2 = {
            let mut e = engine(3);
            let w = vec![1.0; 64];
            let x = vec![1.0; 64];
            secure_linear_inference(&mut e, &w, 0.0, &x).1
        };
        assert!(
            d2.bytes_sent > d1.bytes_sent * 4,
            "bytes grow with dimension"
        );
        assert_eq!(d1.rounds, d2.rounds, "rounds stay constant (batching)");
    }

    #[test]
    fn network_time_model() {
        let cost = CostReport {
            rounds: 10,
            bytes_sent: 1_000_000,
            field_ops: 0,
            triples_used: 0,
        };
        let t = cost.network_time_secs(0.05, 1_000_000.0);
        assert!((t - 1.5).abs() < 1e-9); // 10*0.05 + 1.0
    }

    #[test]
    fn fixed_point_encoding_survives_engine() {
        let mut e = engine(3);
        let shared = e.share_input_fixed(&[1.5, -2.25]);
        let opened = e.open(&shared);
        assert!((crate::field::decode_fixed(opened[0]) - 1.5).abs() < 1e-3);
        assert!((crate::field::decode_fixed(opened[1]) + 2.25).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_party_engine_rejected() {
        let _ = engine(1);
    }

    #[test]
    fn multiplication_uses_fresh_triples() {
        let _ = encode_fixed(0.0); // keep import used in all cfg combinations
        let mut e = engine(2);
        let a = e.share_input(&[Fp::from_signed(7)]);
        let b = e.share_input(&[Fp::from_signed(7)]);
        let p1 = e.mul(&a, &b);
        let p2 = e.mul(&a, &b);
        // Same product, different share randomness.
        assert_eq!(e.open(&p1)[0].to_signed(), 49);
        assert_eq!(e.open(&p2)[0].to_signed(), 49);
    }
}
