//! # pds2-mpc
//!
//! Secure multiparty computation — the **SMC** candidate from §III-B of the
//! PDS² paper (Falcon-style secret sharing with a trusted-dealer offline
//! phase).
//!
//! - [`field`] — the prime field F_{2^61-1} all arithmetic lives in;
//! - [`additive`] — n-out-of-n additive secret sharing and Beaver triples;
//! - [`shamir`] — (t, n) threshold sharing with Lagrange reconstruction;
//! - [`engine`] — a protocol engine that executes shared-vector arithmetic
//!   while metering rounds, bytes and triples, so experiment E4 can compare
//!   SMC's communication profile against HE's and the TEE's compute
//!   profiles.
//!
//! The paper's verdict — "the active participation required from the data
//! provider coupled with delays introduced during communication makes it
//! difficult to employ SMC for applications that use many operations" — is
//! exactly what [`engine::CostReport`] quantifies.

pub mod additive;
pub mod engine;
pub mod field;
pub mod shamir;

pub use engine::{secure_linear_inference, CostReport, MpcEngine, SharedVec};
pub use field::Fp;
