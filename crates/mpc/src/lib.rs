//! # pds2-mpc
//!
//! Secure multiparty computation — the **SMC** candidate from §III-B of the
//! PDS² paper (Falcon-style secret sharing with a trusted-dealer offline
//! phase).
//!
//! - [`field`] — the prime field F_{2^61-1} all arithmetic lives in;
//! - [`additive`] — n-out-of-n additive secret sharing and Beaver triples;
//! - [`shamir`] — (t, n) threshold sharing with Lagrange reconstruction;
//! - [`engine`] — a protocol engine that executes shared-vector arithmetic
//!   while metering rounds, bytes and triples, so experiment E4 can compare
//!   SMC's communication profile against HE's and the TEE's compute
//!   profiles.
//!
//! The paper's verdict — "the active participation required from the data
//! provider coupled with delays introduced during communication makes it
//! difficult to employ SMC for applications that use many operations" — is
//! exactly what [`engine::CostReport`] quantifies.
//!
//! # Quick start
//!
//! ```
//! use pds2_mpc::{secure_linear_inference, MpcEngine};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Three computing parties jointly score a linear model: the weights and
//! // the features stay secret-shared; only the final score is opened.
//! let mut engine = MpcEngine::new(3, StdRng::seed_from_u64(0));
//! let (score, cost) =
//!     secure_linear_inference(&mut engine, &[1.0, 2.0], 0.5, &[3.0, -1.0]);
//! assert!((score - 1.5).abs() < 1e-3);
//! // The cost report is the paper's argument in numbers: interactive
//! // rounds and wire bytes dominate, not local compute.
//! assert!(cost.rounds >= 4 && cost.bytes_sent > 0);
//! ```

pub mod additive;
pub mod engine;
pub mod field;
pub mod shamir;

pub use engine::{secure_linear_inference, CostReport, MpcEngine, SharedVec};
pub use field::Fp;
