//! Additive secret sharing and Beaver multiplication triples.
//!
//! A value `x` is split into `n` random shares summing to `x` (mod p). Any
//! `n-1` shares are uniformly random and reveal nothing; all `n` reconstruct
//! exactly. Multiplication of two shared values consumes a pre-distributed
//! Beaver triple `(a, b, c = a·b)` and requires one communication round to
//! open the masked differences.

use crate::field::Fp;
use rand::Rng;

/// The shares of a single secret, one per party.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shares(pub Vec<Fp>);

impl Shares {
    /// Number of parties.
    pub fn parties(&self) -> usize {
        self.0.len()
    }

    /// Local (communication-free) share-wise addition.
    pub fn add(&self, other: &Shares) -> Shares {
        assert_eq!(self.parties(), other.parties(), "party count mismatch");
        Shares(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.add(*b))
                .collect(),
        )
    }

    /// Local share-wise subtraction.
    pub fn sub(&self, other: &Shares) -> Shares {
        assert_eq!(self.parties(), other.parties(), "party count mismatch");
        Shares(
            self.0
                .iter()
                .zip(&other.0)
                .map(|(a, b)| a.sub(*b))
                .collect(),
        )
    }

    /// Local multiplication by a public constant.
    pub fn mul_public(&self, k: Fp) -> Shares {
        Shares(self.0.iter().map(|s| s.mul(k)).collect())
    }

    /// Local addition of a public constant (applied to share 0 only).
    pub fn add_public(&self, k: Fp) -> Shares {
        let mut out = self.0.clone();
        out[0] = out[0].add(k);
        Shares(out)
    }
}

/// Splits `secret` into `n` additive shares.
pub fn share<R: Rng + ?Sized>(rng: &mut R, secret: Fp, n: usize) -> Shares {
    assert!(n >= 2, "need at least two parties");
    let mut shares = Vec::with_capacity(n);
    let mut acc = Fp::ZERO;
    for _ in 0..n - 1 {
        let s = Fp::random(rng);
        acc = acc.add(s);
        shares.push(s);
    }
    shares.push(secret.sub(acc));
    Shares(shares)
}

/// Reconstructs the secret from all shares.
pub fn reconstruct(shares: &Shares) -> Fp {
    shares.0.iter().fold(Fp::ZERO, |acc, s| acc.add(*s))
}

/// A Beaver multiplication triple in shared form: `c = a · b`.
#[derive(Clone, Debug)]
pub struct BeaverTriple {
    /// Shares of the random mask `a`.
    pub a: Shares,
    /// Shares of the random mask `b`.
    pub b: Shares,
    /// Shares of the product `c = a·b`.
    pub c: Shares,
}

/// Dealer-generated Beaver triple (trusted-dealer model, as in Falcon's
/// offline phase).
pub fn generate_triple<R: Rng + ?Sized>(rng: &mut R, n: usize) -> BeaverTriple {
    let a = Fp::random(rng);
    let b = Fp::random(rng);
    let c = a.mul(b);
    BeaverTriple {
        a: share(rng, a, n),
        b: share(rng, b, n),
        c: share(rng, c, n),
    }
}

/// The two masked openings exchanged during a Beaver multiplication.
#[derive(Clone, Copy, Debug)]
pub struct MaskedPair {
    /// `d = x - a`, publicly opened.
    pub d: Fp,
    /// `e = y - b`, publicly opened.
    pub e: Fp,
}

/// Executes the share-side of a Beaver multiplication.
///
/// Returns the product shares and the values that had to be publicly
/// opened (`d`, `e`) — the caller's engine charges one round and
/// `2 · n` field elements of traffic for the opening.
pub fn beaver_mul(x: &Shares, y: &Shares, triple: &BeaverTriple) -> (Shares, MaskedPair) {
    let n = x.parties();
    assert_eq!(y.parties(), n);
    assert_eq!(triple.a.parties(), n);
    // Open d = x - a and e = y - b (requires reconstructing the differences).
    let d = reconstruct(&x.sub(&triple.a));
    let e = reconstruct(&y.sub(&triple.b));
    // z = c + d·b + e·a + d·e  (d·e added by party 0 only).
    let z = triple
        .c
        .add(&triple.b.mul_public(d))
        .add(&triple.a.mul_public(e))
        .add_public(d.mul(e));
    (z, MaskedPair { d, e })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn share_reconstruct_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in 2..=8 {
            for v in [0i64, 1, -5, 123456789] {
                let s = share(&mut rng, Fp::from_signed(v), n);
                assert_eq!(reconstruct(&s).to_signed(), v, "n={n} v={v}");
            }
        }
    }

    #[test]
    fn shares_individually_hide_secret() {
        // Two sharings of very different secrets produce statistically
        // indistinguishable individual shares; sanity-check that a single
        // share does not equal the secret (overwhelmingly likely).
        let mut rng = StdRng::seed_from_u64(2);
        let s = share(&mut rng, Fp::new(42), 3);
        let equal_count = s.0.iter().filter(|sh| sh.value() == 42).count();
        assert!(equal_count < 3, "shares should not all leak the secret");
    }

    #[test]
    fn additive_homomorphism() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = share(&mut rng, Fp::from_signed(100), 4);
        let y = share(&mut rng, Fp::from_signed(-30), 4);
        assert_eq!(reconstruct(&x.add(&y)).to_signed(), 70);
        assert_eq!(reconstruct(&x.sub(&y)).to_signed(), 130);
        assert_eq!(
            reconstruct(&x.mul_public(Fp::from_signed(3))).to_signed(),
            300
        );
        assert_eq!(
            reconstruct(&x.add_public(Fp::from_signed(5))).to_signed(),
            105
        );
    }

    #[test]
    fn beaver_multiplication_is_correct() {
        let mut rng = StdRng::seed_from_u64(4);
        for (xv, yv) in [(3i64, 4i64), (-7, 9), (0, 5), (-2, -8)] {
            let x = share(&mut rng, Fp::from_signed(xv), 3);
            let y = share(&mut rng, Fp::from_signed(yv), 3);
            let t = generate_triple(&mut rng, 3);
            let (z, _) = beaver_mul(&x, &y, &t);
            assert_eq!(reconstruct(&z).to_signed(), xv * yv, "{xv}*{yv}");
        }
    }

    #[test]
    fn beaver_openings_mask_inputs() {
        // The opened values d = x-a, e = y-b are uniformly masked; they
        // must not equal the raw inputs except by chance.
        let mut rng = StdRng::seed_from_u64(5);
        let x = share(&mut rng, Fp::new(1234), 3);
        let y = share(&mut rng, Fp::new(5678), 3);
        let t = generate_triple(&mut rng, 3);
        let (_, opened) = beaver_mul(&x, &y, &t);
        assert_ne!(opened.d.value(), 1234);
        assert_ne!(opened.e.value(), 5678);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_party_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = share(&mut rng, Fp::ZERO, 1);
    }

    #[test]
    #[should_panic(expected = "party count mismatch")]
    fn mismatched_party_counts_panic() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = share(&mut rng, Fp::ZERO, 2);
        let y = share(&mut rng, Fp::ZERO, 3);
        let _ = x.add(&y);
    }
}
