//! Property-based tests for the cryptographic substrate.

use pds2_crypto::bigint::BigUint;
use pds2_crypto::codec::{Decode, Encode, Encoder};
use pds2_crypto::merkle::MerkleTree;
use pds2_crypto::sha256::sha256;
use proptest::prelude::*;

/// Strategy producing BigUints up to ~256 bits from raw byte vectors.
fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..32).prop_map(|v| BigUint::from_bytes_be(&v))
}

fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_map(|v| v.add(&BigUint::one()))
}

proptest! {
    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn sub_inverts_add(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn divrem_is_euclidean(a in biguint(), d in biguint_nonzero()) {
        let (q, r) = a.divrem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn shifts_invert(a in biguint(), s in 0u32..200) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    #[test]
    fn bytes_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn modpow_matches_naive(base in 0u64..1000, exp in 0u32..12, m in 2u64..10_000) {
        let expected = (0..exp).fold(1u128, |acc, _| acc * base as u128 % m as u128);
        let got = BigUint::from_u64(base)
            .modpow(&BigUint::from_u64(exp as u64), &BigUint::from_u64(m));
        prop_assert_eq!(got.to_u128(), Some(expected));
    }

    #[test]
    fn modinv_is_inverse(a in 1u64..1_000_000) {
        // Prime modulus guarantees invertibility for nonzero residues.
        let p = BigUint::from_u64(1_000_000_007);
        let av = BigUint::from_u64(a);
        let inv = av.modinv(&p).unwrap();
        prop_assert_eq!(av.mul_mod(&inv, &p), BigUint::one());
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(), b in biguint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn codec_vec_roundtrip(data in proptest::collection::vec(any::<u64>(), 0..50)) {
        let mut enc = Encoder::new();
        enc.put_seq(&data);
        let bytes = enc.finish();
        let mut dec = pds2_crypto::codec::Decoder::new(&bytes);
        prop_assert_eq!(dec.get_seq::<u64>().unwrap(), data);
        dec.expect_end().unwrap();
    }

    #[test]
    fn codec_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let encoded = data.to_bytes();
        prop_assert_eq!(Vec::<u8>::from_bytes(&encoded).unwrap(), data);
    }

    #[test]
    fn merkle_all_proofs_verify(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..24)
    ) {
        let tree = MerkleTree::from_leaves(&leaves);
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(leaf, &root));
        }
    }

    #[test]
    fn merkle_proof_binds_leaf(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..20), 2..16),
        tamper in any::<u8>(),
    ) {
        let tree = MerkleTree::from_leaves(&leaves);
        let proof = tree.prove(0).unwrap();
        let mut forged = leaves[0].clone();
        forged[0] ^= tamper | 1; // guaranteed different
        prop_assert!(!proof.verify(&forged, &tree.root()));
    }

    #[test]
    fn sha256_is_pure(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
    }

    #[test]
    fn seal_open_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
    ) {
        let blob = pds2_crypto::chacha20::seal(&key, nonce, &data);
        prop_assert_eq!(pds2_crypto::chacha20::open(&key, &blob).unwrap(), data);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn schnorr_sign_verify(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let kp = pds2_crypto::KeyPair::from_seed(seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public.verify(&msg, &sig));
        let mut other = msg.clone();
        other.push(1);
        prop_assert!(!kp.public.verify(&other, &sig));
    }
}
