//! Property-based tests for the cryptographic substrate.

use pds2_crypto::bigint::BigUint;
use pds2_crypto::codec::{Decode, Encode, Encoder};
use pds2_crypto::merkle::MerkleTree;
use pds2_crypto::sha256::sha256;
use pds2_crypto::MontgomeryCtx;
use proptest::prelude::*;

/// Strategy producing BigUints up to ~256 bits from raw byte vectors.
fn biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..32).prop_map(|v| BigUint::from_bytes_be(&v))
}

fn biguint_nonzero() -> impl Strategy<Value = BigUint> {
    biguint().prop_map(|v| v.add(&BigUint::one()))
}

proptest! {
    #[test]
    fn add_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn add_associates(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_commutes(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn mul_distributes(a in biguint(), b in biguint(), c in biguint()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn sub_inverts_add(a in biguint(), b in biguint()) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn divrem_is_euclidean(a in biguint(), d in biguint_nonzero()) {
        let (q, r) = a.divrem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn shifts_invert(a in biguint(), s in 0u32..200) {
        prop_assert_eq!(a.shl(s).shr(s), a);
    }

    #[test]
    fn bytes_roundtrip(a in biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn modpow_matches_naive(base in 0u64..1000, exp in 0u32..12, m in 2u64..10_000) {
        let expected = (0..exp).fold(1u128, |acc, _| acc * base as u128 % m as u128);
        let got = BigUint::from_u64(base)
            .modpow(&BigUint::from_u64(exp as u64), &BigUint::from_u64(m));
        prop_assert_eq!(got.to_u128(), Some(expected));
    }

    #[test]
    fn modinv_is_inverse(a in 1u64..1_000_000) {
        // Prime modulus guarantees invertibility for nonzero residues.
        let p = BigUint::from_u64(1_000_000_007);
        let av = BigUint::from_u64(a);
        let inv = av.modinv(&p).unwrap();
        prop_assert_eq!(av.mul_mod(&inv, &p), BigUint::one());
    }

    #[test]
    fn gcd_divides_both(a in biguint_nonzero(), b in biguint_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem(&g).is_zero());
        prop_assert!(b.rem(&g).is_zero());
    }

    #[test]
    fn codec_vec_roundtrip(data in proptest::collection::vec(any::<u64>(), 0..50)) {
        let mut enc = Encoder::new();
        enc.put_seq(&data);
        let bytes = enc.finish();
        let mut dec = pds2_crypto::codec::Decoder::new(&bytes);
        prop_assert_eq!(dec.get_seq::<u64>().unwrap(), data);
        dec.expect_end().unwrap();
    }

    #[test]
    fn codec_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let encoded = data.to_bytes();
        prop_assert_eq!(Vec::<u8>::from_bytes(&encoded).unwrap(), data);
    }

    #[test]
    fn merkle_all_proofs_verify(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20), 1..24)
    ) {
        let tree = MerkleTree::from_leaves(&leaves);
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).unwrap();
            prop_assert!(proof.verify(leaf, &root));
        }
    }

    #[test]
    fn merkle_proof_binds_leaf(
        leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..20), 2..16),
        tamper in any::<u8>(),
    ) {
        let tree = MerkleTree::from_leaves(&leaves);
        let proof = tree.prove(0).unwrap();
        let mut forged = leaves[0].clone();
        forged[0] ^= tamper | 1; // guaranteed different
        prop_assert!(!proof.verify(&forged, &tree.root()));
    }

    #[test]
    fn sha256_is_pure(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        prop_assert_eq!(sha256(&data), sha256(&data));
    }

    #[test]
    fn seal_open_roundtrip(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
    ) {
        let blob = pds2_crypto::chacha20::seal(&key, nonce, &data);
        prop_assert_eq!(pds2_crypto::chacha20::open(&key, &blob).unwrap(), data);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn schnorr_sign_verify(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        let kp = pds2_crypto::KeyPair::from_seed(seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public.verify(&msg, &sig));
        let mut other = msg.clone();
        other.push(1);
        prop_assert!(!kp.public.verify(&other, &sig));
    }

    /// The Shamir-trick fast verifier and the schoolbook reference verifier
    /// must reach the same decision on valid, tampered and mismatched
    /// inputs alike (DESIGN.md §5d).
    #[test]
    fn fast_verify_matches_reference(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        bump in 1u64..1000,
    ) {
        let kp = pds2_crypto::KeyPair::from_seed(seed);
        let other = pds2_crypto::KeyPair::from_seed(seed.wrapping_add(1));
        let q = &pds2_crypto::schnorr::Group::standard().q;
        let sig = kp.sign(&msg);
        let mut tampered_s = sig.clone();
        tampered_s.s = tampered_s.s.add_mod(&BigUint::from_u64(bump), q);
        let mut tampered_e = sig.clone();
        tampered_e.e = tampered_e.e.add_mod(&BigUint::from_u64(bump), q);
        let mut wrong_msg = msg.clone();
        wrong_msg.push(0);
        for (pk, m, s) in [
            (&kp.public, &msg, &sig),
            (&kp.public, &wrong_msg, &sig),
            (&other.public, &msg, &sig),
            (&kp.public, &msg, &tampered_s),
            (&kp.public, &msg, &tampered_e),
        ] {
            prop_assert_eq!(pk.verify(m, s), pk.verify_reference(m, s));
        }
    }
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic vs the schoolbook (divrem-reduction) baseline.
// ---------------------------------------------------------------------------

/// Odd moduli > 1 up to ~320 bits — the domain `MontgomeryCtx` accepts.
fn odd_modulus() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 1..40).prop_map(|mut v| {
        *v.last_mut().expect("non-empty") |= 1;
        let m = BigUint::from_bytes_be(&v);
        if m.is_one() {
            BigUint::from_u64(3)
        } else {
            m
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn montgomery_mul_matches_schoolbook(a in biguint(), b in biguint(), m in odd_modulus()) {
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus > 1");
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul_mod(&b, &m));
    }

    /// Multiplying by one round-trips through Montgomery form: the result
    /// must be the plain residue, exercising to-Mont → REDC → from-Mont.
    #[test]
    fn montgomery_roundtrip_is_identity(a in biguint(), m in odd_modulus()) {
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus > 1");
        prop_assert_eq!(ctx.mul_mod(&a, &BigUint::one()), a.rem(&m));
    }

    #[test]
    fn montgomery_modpow_matches_schoolbook(
        base in biguint(),
        exp in proptest::collection::vec(any::<u8>(), 0..16).prop_map(|v| BigUint::from_bytes_be(&v)),
        m in odd_modulus(),
    ) {
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus > 1");
        prop_assert_eq!(ctx.modpow(&base, &exp), base.modpow_schoolbook(&exp, &m));
    }

    /// The public `modpow` dispatcher (Montgomery when profitable,
    /// schoolbook otherwise) must be extensionally equal to the schoolbook
    /// reference on every modulus, even or odd.
    #[test]
    fn dispatched_modpow_matches_schoolbook(
        base in biguint(),
        exp in biguint(),
        m in biguint_nonzero().prop_map(|v| v.add(&BigUint::one())),
    ) {
        prop_assert_eq!(base.modpow(&exp, &m), base.modpow_schoolbook(&exp, &m));
    }
}

/// Deterministic sweep of the boundary operands (0, 1, m−1, m, m+1) the
/// random strategies rarely land on, against several modulus shapes
/// including the standard group prime.
#[test]
fn montgomery_edge_operands_match_schoolbook() {
    let p = pds2_crypto::schnorr::Group::standard().p.clone();
    let moduli = [
        BigUint::from_u64(3),
        BigUint::from_u64(0xffff_ffff_ffff_fff1), // near the limb boundary
        // (2^64 - 1)^2 + 2: a two-limb odd modulus straddling the carry path.
        BigUint::from_u64(u64::MAX)
            .mul(&BigUint::from_u64(u64::MAX))
            .add(&BigUint::from_u64(2)),
        p,
    ];
    for m in &moduli {
        let ctx = MontgomeryCtx::new(m).expect("odd modulus > 1");
        let edges = [
            BigUint::zero(),
            BigUint::one(),
            m.sub(&BigUint::one()),
            m.clone(),
            m.add(&BigUint::one()),
        ];
        for a in &edges {
            for b in &edges {
                assert_eq!(ctx.mul_mod(a, b), a.mul_mod(b, m), "mul a={a:?} b={b:?}");
            }
            for e in &edges {
                assert_eq!(
                    ctx.modpow(a, e),
                    a.modpow_schoolbook(e, m),
                    "pow a={a:?} e={e:?}"
                );
            }
        }
    }
}
