//! Merkle trees with inclusion proofs.
//!
//! Used by the governance layer to commit to transaction sets in block
//! headers and by the storage subsystem to commit to dataset contents, so
//! that a provider can later prove an individual record was part of a
//! registered dataset without revealing the rest.

use crate::sha256::{sha256_pair, Digest};

/// Domain-separation prefixes to prevent leaf/node second-preimage attacks.
const LEAF_PREFIX: [u8; 1] = [0x00];
const NODE_PREFIX: [u8; 1] = [0x01];

/// Hashes a leaf payload with domain separation.
pub fn leaf_hash(data: &[u8]) -> Digest {
    sha256_pair(&LEAF_PREFIX, data)
}

/// Hashes an internal node from its children with domain separation.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut buf = [0u8; 65];
    buf[0] = NODE_PREFIX[0];
    buf[1..33].copy_from_slice(left.as_bytes());
    buf[33..65].copy_from_slice(right.as_bytes());
    crate::sha256::sha256(&buf)
}

/// A fully-built Merkle tree over a list of leaf payloads.
///
/// Odd nodes at each level are promoted unchanged (Bitcoin-style duplication
/// is avoided because it admits ambiguous trees).
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = single root (unless empty).
    levels: Vec<Vec<Digest>>,
}

/// One step of an inclusion proof.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// Sibling hash to combine with.
    pub sibling: Digest,
    /// True if the sibling is on the right of the running hash.
    pub sibling_on_right: bool,
}

/// An inclusion proof for a single leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub leaf_index: usize,
    /// Path from leaf to root.
    pub steps: Vec<ProofStep>,
}

impl MerkleTree {
    /// Builds a tree from leaf payloads. An empty input yields the
    /// all-zero root sentinel.
    ///
    /// Leaf hashing fans out across the `pds2-par` worker pool; each hash
    /// is an independent pure function of one leaf and the results come
    /// back in leaf order, so the tree is identical for any thread count.
    pub fn from_leaves<T: AsRef<[u8]> + Sync>(leaves: &[T]) -> Self {
        let hashes = pds2_par::par_map_indexed(leaves, |_, l| leaf_hash(l.as_ref()));
        Self::from_leaf_hashes(hashes)
    }

    /// Builds a tree from pre-hashed leaves.
    ///
    /// Wide levels hash their node pairs in parallel (index-ordered, so
    /// the result never depends on the thread count); narrow levels stay
    /// serial to avoid fan-out overhead near the root.
    pub fn from_leaf_hashes(hashes: Vec<Digest>) -> Self {
        const PAR_LEVEL_MIN: usize = 512;
        let mut levels = vec![hashes];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let pairs: Vec<&[Digest]> = prev.chunks(2).collect();
            let hash_pair = |_: usize, pair: &&[Digest]| match *pair {
                [left, right] => node_hash(left, right),
                // Odd node: promote unchanged.
                [only] => *only,
                _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
            };
            let next = if pairs.len() >= PAR_LEVEL_MIN {
                pds2_par::par_map_indexed(&pairs, hash_pair)
            } else {
                pairs
                    .iter()
                    .enumerate()
                    .map(|(i, p)| hash_pair(i, p))
                    .collect()
            };
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, |l| l.len())
    }

    /// True if the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Root digest (`Digest::ZERO` for an empty tree).
    pub fn root(&self) -> Digest {
        match self.levels.last() {
            Some(level) if !level.is_empty() => level[0],
            _ => Digest::ZERO,
        }
    }

    /// Produces an inclusion proof for leaf `index`, or `None` if out of
    /// range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut steps = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len().saturating_sub(1)] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                steps.push(ProofStep {
                    sibling: level[sibling_idx],
                    sibling_on_right: sibling_idx > idx,
                });
            }
            // Promoted odd nodes keep their position without a step.
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            steps,
        })
    }
}

impl MerkleProof {
    /// Verifies that `leaf_data` hashes up to `root` through this proof.
    pub fn verify(&self, leaf_data: &[u8], root: &Digest) -> bool {
        self.verify_hash(leaf_hash(leaf_data), root)
    }

    /// Verifies starting from a pre-computed leaf hash.
    pub fn verify_hash(&self, leaf: Digest, root: &Digest) -> bool {
        let mut acc = leaf;
        for step in &self.steps {
            acc = if step.sibling_on_right {
                node_hash(&acc, &step.sibling)
            } else {
                node_hash(&step.sibling, &acc)
            };
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_root_is_zero() {
        let t = MerkleTree::from_leaves::<Vec<u8>>(&[]);
        assert_eq!(t.root(), Digest::ZERO);
        assert!(t.is_empty());
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let t = MerkleTree::from_leaves(&[b"only".to_vec()]);
        assert_eq!(t.root(), leaf_hash(b"only"));
        let proof = t.prove(0).unwrap();
        assert!(proof.steps.is_empty());
        assert!(proof.verify(b"only", &t.root()));
    }

    #[test]
    fn proofs_verify_for_all_sizes() {
        for n in 1..=17 {
            let ls = leaves(n);
            let t = MerkleTree::from_leaves(&ls);
            for (i, leaf) in ls.iter().enumerate() {
                let proof = t.prove(i).unwrap();
                assert!(proof.verify(leaf, &t.root()), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let proof = t.prove(3).unwrap();
        assert!(!proof.verify(b"not-the-leaf", &t.root()));
    }

    #[test]
    fn proof_rejects_wrong_root() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let proof = t.prove(3).unwrap();
        let other = MerkleTree::from_leaves(&leaves(9)).root();
        assert!(!proof.verify(&ls[3], &other));
    }

    #[test]
    fn proof_rejects_tampered_step() {
        let ls = leaves(8);
        let t = MerkleTree::from_leaves(&ls);
        let mut proof = t.prove(3).unwrap();
        proof.steps[0].sibling_on_right = !proof.steps[0].sibling_on_right;
        assert!(!proof.verify(&ls[3], &t.root()));
    }

    #[test]
    fn leaf_and_node_domains_differ() {
        // A node hash must never collide with a leaf hash of the same bytes.
        let d1 = leaf_hash(&[1u8; 64]);
        let left = Digest([1u8; 32]);
        let right = Digest([1u8; 32]);
        let d2 = node_hash(&left, &right);
        assert_ne!(d1, d2);
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let ls = leaves(6);
        let base = MerkleTree::from_leaves(&ls).root();
        for i in 0..6 {
            let mut modified = ls.clone();
            modified[i].push(b'!');
            assert_ne!(MerkleTree::from_leaves(&modified).root(), base, "leaf {i}");
        }
    }

    #[test]
    fn root_depends_on_order() {
        let ls = leaves(4);
        let mut swapped = ls.clone();
        swapped.swap(0, 1);
        assert_ne!(
            MerkleTree::from_leaves(&ls).root(),
            MerkleTree::from_leaves(&swapped).root()
        );
    }
}
