//! ChaCha20 stream cipher (RFC 8439) and an encrypt-then-MAC sealing scheme.
//!
//! The simulated TEE uses [`seal`]/[`open`] for sealed storage: ChaCha20 for
//! confidentiality and HMAC-SHA-256 over `nonce || ciphertext` for integrity.

use crate::hmac::{hmac_sha256, verify_tag};
use crate::sha256::Digest;

/// Symmetric key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes (RFC 8439 96-bit nonce).
pub const NONCE_LEN: usize = 12;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Produces one 64-byte ChaCha20 keystream block.
fn chacha20_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0] = 0x61707865;
    state[1] = 0x3320646e;
    state[2] = 0x79622d32;
    state[3] = 0x6b206574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
    }
    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream (encrypt == decrypt).
pub fn chacha20_xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    let mut counter = 1u32; // RFC 8439: block 0 is reserved for Poly1305 key.
    for chunk in data.chunks_mut(64) {
        let ks = chacha20_block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.checked_add(1).expect("ChaCha20 counter overflow");
    }
}

/// An authenticated sealed blob: nonce, ciphertext and MAC tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBlob {
    /// Random per-seal nonce.
    pub nonce: [u8; NONCE_LEN],
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA-256 over `nonce || ciphertext` with the derived MAC key.
    pub tag: Digest,
}

/// Derives independent cipher and MAC keys from a master key.
fn derive_keys(master: &[u8; KEY_LEN]) -> ([u8; KEY_LEN], [u8; KEY_LEN]) {
    let enc = crate::hmac::hkdf(b"pds2-seal", master, b"enc", KEY_LEN);
    let mac = crate::hmac::hkdf(b"pds2-seal", master, b"mac", KEY_LEN);
    (enc.try_into().unwrap(), mac.try_into().unwrap())
}

/// Encrypt-then-MAC sealing.
pub fn seal(master: &[u8; KEY_LEN], nonce: [u8; NONCE_LEN], plaintext: &[u8]) -> SealedBlob {
    let (enc_key, mac_key) = derive_keys(master);
    let mut ciphertext = plaintext.to_vec();
    chacha20_xor(&enc_key, &nonce, &mut ciphertext);
    let mut mac_input = Vec::with_capacity(NONCE_LEN + ciphertext.len());
    mac_input.extend_from_slice(&nonce);
    mac_input.extend_from_slice(&ciphertext);
    let tag = hmac_sha256(&mac_key, &mac_input);
    SealedBlob {
        nonce,
        ciphertext,
        tag,
    }
}

/// Verifies and decrypts a sealed blob. Returns `None` if the tag is invalid.
pub fn open(master: &[u8; KEY_LEN], blob: &SealedBlob) -> Option<Vec<u8>> {
    let (enc_key, mac_key) = derive_keys(master);
    let mut mac_input = Vec::with_capacity(NONCE_LEN + blob.ciphertext.len());
    mac_input.extend_from_slice(&blob.nonce);
    mac_input.extend_from_slice(&blob.ciphertext);
    let expected = hmac_sha256(&mac_key, &mac_input);
    if !verify_tag(&expected, &blob.tag) {
        return None;
    }
    let mut plaintext = blob.ciphertext.clone();
    chacha20_xor(&enc_key, &blob.nonce, &mut plaintext);
    Some(plaintext)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 8439 section 2.3.2 block-function test vector.
    #[test]
    fn rfc8439_block() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expected_first16: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expected_first16);
    }

    // RFC 8439 section 2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        chacha20_xor(&key, &nonce, &mut data);
        let hex: String = data.iter().take(16).map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, "6e2e359a2568f98041ba0728dd0d6981");
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let original: Vec<u8> = (0..200).map(|i| (i * 7) as u8).collect();
        let mut data = original.clone();
        chacha20_xor(&key, &nonce, &mut data);
        assert_ne!(data, original);
        chacha20_xor(&key, &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn seal_open_roundtrip() {
        let master = [42u8; 32];
        let blob = seal(&master, [1u8; 12], b"secret enclave state");
        assert_eq!(open(&master, &blob).unwrap(), b"secret enclave state");
    }

    #[test]
    fn open_rejects_tamper() {
        let master = [42u8; 32];
        let mut blob = seal(&master, [1u8; 12], b"secret");
        blob.ciphertext[0] ^= 1;
        assert!(open(&master, &blob).is_none());
    }

    #[test]
    fn open_rejects_wrong_key() {
        let blob = seal(&[42u8; 32], [1u8; 12], b"secret");
        assert!(open(&[43u8; 32], &blob).is_none());
    }

    #[test]
    fn open_rejects_nonce_swap() {
        let master = [42u8; 32];
        let mut blob = seal(&master, [1u8; 12], b"secret");
        blob.nonce[0] ^= 1;
        assert!(open(&master, &blob).is_none());
    }

    #[test]
    fn seal_empty_plaintext() {
        let master = [0u8; 32];
        let blob = seal(&master, [9u8; 12], b"");
        assert_eq!(open(&master, &blob).unwrap(), Vec::<u8>::new());
    }
}
