//! HMAC-SHA-256 (RFC 2104) and a minimal HKDF (RFC 5869).
//!
//! Used for sealed-storage integrity tags in the simulated TEE, deterministic
//! nonce derivation in Schnorr signing, and key derivation throughout.

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let d = crate::sha256::sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(d.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Constant-shape equality check for MAC tags.
///
/// Not hardened constant-time code, but avoids early exit on length match,
/// documenting the intent for a production port.
pub fn verify_tag(expected: &Digest, actual: &Digest) -> bool {
    let mut diff = 0u8;
    for (a, b) in expected.as_bytes().iter().zip(actual.as_bytes()) {
        diff |= a ^ b;
    }
    diff == 0
}

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> Digest {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand producing `len` bytes (`len <= 255 * 32`).
pub fn hkdf_expand(prk: &Digest, info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * DIGEST_LEN, "HKDF output too long");
    let mut out = Vec::with_capacity(len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < len {
        let mut msg = Vec::with_capacity(previous.len() + info.len() + 1);
        msg.extend_from_slice(&previous);
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(prk.as_bytes(), &msg);
        previous = block.as_bytes().to_vec();
        let take = (len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&block.as_bytes()[..take]);
        counter = counter.checked_add(1).expect("HKDF counter overflow");
    }
    out
}

/// One-call HKDF: extract then expand.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_tag_behaviour() {
        let t1 = hmac_sha256(b"k", b"m");
        let t2 = hmac_sha256(b"k", b"m");
        let t3 = hmac_sha256(b"k", b"m2");
        assert!(verify_tag(&t1, &t2));
        assert!(!verify_tag(&t1, &t3));
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = hkdf(&salt, &ikm, &info, 42);
        let expected =
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865";
        let hex: String = okm.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, expected);
    }

    #[test]
    fn hkdf_lengths() {
        let prk = hkdf_extract(b"salt", b"ikm");
        assert_eq!(hkdf_expand(&prk, b"", 1).len(), 1);
        assert_eq!(hkdf_expand(&prk, b"", 32).len(), 32);
        assert_eq!(hkdf_expand(&prk, b"", 100).len(), 100);
        // Different info strings yield independent keys.
        assert_ne!(hkdf_expand(&prk, b"a", 32), hkdf_expand(&prk, b"b", 32));
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn hkdf_max_length() {
        let prk = hkdf_extract(b"s", b"i");
        let _ = hkdf_expand(&prk, b"", 255 * 32 + 1);
    }
}
