//! Montgomery-form modular arithmetic: the signature-verification fast
//! path.
//!
//! Schoolbook `mul_mod` pays a full Knuth division per multiplication.
//! [`MontgomeryCtx`] precomputes, once per (odd) modulus `n`, everything
//! needed to replace that division with a fused multiply-and-reduce
//! (CIOS — coarsely integrated operand scanning): `-n^{-1} mod 2^64` and
//! `R^2 mod n` for `R = 2^{64k}` where `k` is the limb count of `n`.
//! Every subsequent modular multiplication is then one `O(k^2)` pass with
//! no division and no allocation beyond the output limbs.
//!
//! On top of the multiplier sit three exponentiation strategies:
//!
//! * [`MontgomeryCtx::modpow`] — fixed-window (w = 4) exponentiation:
//!   ~`bits` squarings plus one table multiply per 4 bits, versus one
//!   multiply per set bit for the bit-by-bit schoolbook loop;
//! * [`MontgomeryCtx::modpow_with_table`] — the same walk over a caller
//!   supplied [`PowTable`], so fixed bases (the group generator, a
//!   frequently-seen public key) amortise their table across calls;
//! * [`MontgomeryCtx::modpow_dual`] — Shamir/Straus simultaneous double
//!   exponentiation: `a^x · b^y mod n` in ONE interleaved pass sharing
//!   the squaring chain, which is what Schnorr verification
//!   (`g^s · y^{q-e}`) needs.
//!
//! Results are plain [`BigUint`] values, bit-identical to the schoolbook
//! path — the representation changes inside a call, never the outcome —
//! so the repo-wide determinism invariant (identical results at every
//! `PDS2_THREADS`) is untouched. Property tests in
//! `crates/crypto/tests/proptests.rs` pin the equivalence over random
//! operands and the edge cases (0, 1, n−1, operand = n).

use crate::bigint::BigUint;

/// Precomputed per-modulus state for Montgomery multiplication.
///
/// Valid for odd moduli `n > 1`. `R = 2^{64·k}` with `k = n.limbs().len()`.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// Modulus limbs (little-endian, no leading zeros).
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64` (exists because `n` is odd).
    n0inv: u64,
    /// `R mod n` — the Montgomery representation of 1.
    r1: Vec<u64>,
    /// `R^2 mod n` — converts a value into Montgomery form in one mul.
    r2: Vec<u64>,
    /// The modulus as a `BigUint` (for reductions and the public getter).
    modulus: BigUint,
}

/// A precomputed window table of powers `base^0 .. base^15` in Montgomery
/// form, reusable across exponentiations with the same base and modulus.
#[derive(Clone, Debug)]
pub struct PowTable {
    entries: Vec<Vec<u64>>, // entries[i] = Mont(base^i), i in 0..16
}

/// Fixed window width for all exponentiation strategies.
const WINDOW: u32 = 4;
const TABLE_LEN: usize = 1 << WINDOW;

impl MontgomeryCtx {
    /// Builds a context for an odd modulus `> 1`; `None` otherwise.
    pub fn new(modulus: &BigUint) -> Option<MontgomeryCtx> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let n = modulus.limbs().to_vec();
        let k = n.len();
        // n0inv = -(n[0]^-1) mod 2^64 via Newton iteration (doubles the
        // number of correct low bits each round; 6 rounds cover 64 bits).
        let mut inv = n[0];
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();
        // R mod n and R^2 mod n: the only divisions this context ever does.
        let r1 = BigUint::one().shl(64 * k as u32).rem(modulus);
        let r2 = BigUint::one().shl(128 * k as u32).rem(modulus);
        Some(MontgomeryCtx {
            n0inv,
            r1: pad(r1.limbs(), k),
            r2: pad(r2.limbs(), k),
            n,
            modulus: modulus.clone(),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// CIOS Montgomery multiplication: `a · b · R^{-1} mod n`.
    ///
    /// `a` and `b` are k-limb values `< n`; the result is k limbs `< n`.
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.n.len();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        // t holds k+2 limbs of running state; t[k+1] never exceeds 1.
        let mut t = vec![0u64; k + 2];
        for &ai in a {
            // t += ai * b
            let mut carry: u128 = 0;
            for (j, &bj) in b.iter().enumerate() {
                let cur = t[j] as u128 + ai as u128 * bj as u128 + carry;
                t[j] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;
            // m = t[0] * n0inv mod 2^64; t += m * n; t >>= 64.
            let m = t[0].wrapping_mul(self.n0inv);
            let mut carry: u128 = (t[0] as u128 + m as u128 * self.n[0] as u128) >> 64;
            for j in 1..k {
                let cur = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = t[k] as u128 + carry;
            t[k - 1] = cur as u64;
            t[k] = t[k + 1] + (cur >> 64) as u64;
            t[k + 1] = 0;
        }
        // Final conditional subtraction brings the result below n.
        if t[k] != 0 || ge(&t[..k], &self.n) {
            sub_in_place(&mut t, &self.n);
        }
        t.truncate(k);
        t
    }

    /// Converts a value (reduced mod n first) into Montgomery form.
    fn to_mont(&self, x: &BigUint) -> Vec<u64> {
        let reduced = x.rem(&self.modulus);
        self.mont_mul(&pad(reduced.limbs(), self.n.len()), &self.r2)
    }

    /// Converts a Montgomery-form value back to a plain `BigUint`.
    fn demont(&self, a: &[u64]) -> BigUint {
        let mut one = vec![0u64; self.n.len()];
        one[0] = 1;
        BigUint::from_limbs(self.mont_mul(a, &one))
    }

    /// `(a * b) mod n` through the Montgomery multiplier.
    ///
    /// Worth it only when the context is already cached: a one-shot call
    /// pays two conversions on top of the multiply.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.demont(&self.mont_mul(&am, &bm))
    }

    /// Builds the w=4 window table for `base` (16 Montgomery entries).
    pub fn pow_table(&self, base: &BigUint) -> PowTable {
        let base_m = self.to_mont(base);
        let mut entries = Vec::with_capacity(TABLE_LEN);
        entries.push(self.r1.clone()); // base^0 = 1
        entries.push(base_m.clone());
        for i in 2..TABLE_LEN {
            entries.push(self.mont_mul(&entries[i - 1], &base_m));
        }
        PowTable { entries }
    }

    /// `base^exp mod n` by fixed-window (w = 4) exponentiation.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.modpow_with_table(&self.pow_table(base), exp)
    }

    /// `base^exp mod n` reusing a precomputed window table for `base`.
    pub fn modpow_with_table(&self, table: &PowTable, exp: &BigUint) -> BigUint {
        debug_assert_eq!(table.entries[0].len(), self.n.len());
        let windows = exp.bits().div_ceil(WINDOW);
        let mut acc = self.r1.clone(); // Mont(1)
        for w in (0..windows).rev() {
            for _ in 0..WINDOW {
                acc = self.mont_mul(&acc, &acc);
            }
            let idx = window_at(exp, w);
            if idx != 0 {
                acc = self.mont_mul(&acc, &table.entries[idx]);
            }
        }
        self.demont(&acc)
    }

    /// Shamir/Straus simultaneous double exponentiation:
    /// `a^x · b^y mod n` in one interleaved pass over a shared squaring
    /// chain, given window tables for both bases.
    pub fn modpow_dual(
        &self,
        a_table: &PowTable,
        x: &BigUint,
        b_table: &PowTable,
        y: &BigUint,
    ) -> BigUint {
        let windows = x.bits().max(y.bits()).div_ceil(WINDOW);
        let mut acc = self.r1.clone();
        for w in (0..windows).rev() {
            for _ in 0..WINDOW {
                acc = self.mont_mul(&acc, &acc);
            }
            let ix = window_at(x, w);
            if ix != 0 {
                acc = self.mont_mul(&acc, &a_table.entries[ix]);
            }
            let iy = window_at(y, w);
            if iy != 0 {
                acc = self.mont_mul(&acc, &b_table.entries[iy]);
            }
        }
        self.demont(&acc)
    }
}

/// Extracts 4-bit window `w` (windows counted from the least significant
/// bit) of `exp` as a table index.
fn window_at(exp: &BigUint, w: u32) -> usize {
    let base = w * WINDOW;
    let mut idx = 0usize;
    for b in 0..WINDOW {
        if exp.bit(base + b) {
            idx |= 1 << b;
        }
    }
    idx
}

/// Zero-pads a limb slice to `k` limbs.
fn pad(limbs: &[u64], k: usize) -> Vec<u64> {
    let mut out = limbs.to_vec();
    out.resize(k, 0);
    out
}

/// `a >= b` on equal-length little-endian limb slices.
fn ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

/// `t -= b` in place over `b.len() + 1` limbs of `t` (t[len] absorbs the
/// final borrow from the redundant top limb).
fn sub_in_place(t: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for (i, &bi) in b.iter().enumerate() {
        let (d1, b1) = t[i].overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        t[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    t[b.len()] = t[b.len()].wrapping_sub(borrow);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn odd_modulus(rng: &mut StdRng, bits: u32) -> BigUint {
        BigUint::random_bits(rng, bits).set_bit(bits - 1).set_bit(0)
    }

    #[test]
    fn rejects_even_and_trivial_moduli() {
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::from_u64(100)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::from_u64(101)).is_some());
    }

    #[test]
    fn mul_mod_matches_schoolbook_random() {
        let mut rng = StdRng::seed_from_u64(11);
        for bits in [64u32, 128, 192, 260, 521] {
            let n = odd_modulus(&mut rng, bits);
            let ctx = MontgomeryCtx::new(&n).unwrap();
            for _ in 0..50 {
                let a = BigUint::random_bits(&mut rng, bits + 17);
                let b = BigUint::random_bits(&mut rng, bits);
                assert_eq!(
                    ctx.mul_mod(&a, &b),
                    a.rem(&n).mul_mod(&b.rem(&n), &n),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn mul_mod_edge_operands() {
        let mut rng = StdRng::seed_from_u64(12);
        let n = odd_modulus(&mut rng, 256);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let n_minus_1 = n.sub(&BigUint::one());
        let cases = [
            BigUint::zero(),
            BigUint::one(),
            n_minus_1.clone(),
            n.clone(), // operand = modulus reduces to zero
        ];
        for a in &cases {
            for b in &cases {
                assert_eq!(ctx.mul_mod(a, b), a.rem(&n).mul_mod(&b.rem(&n), &n));
            }
        }
        // (n-1)^2 = 1 mod n.
        assert_eq!(ctx.mul_mod(&n_minus_1, &n_minus_1), BigUint::one());
    }

    #[test]
    fn modpow_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(13);
        for bits in [64u32, 255, 260] {
            let n = odd_modulus(&mut rng, bits);
            let ctx = MontgomeryCtx::new(&n).unwrap();
            for _ in 0..20 {
                let base = BigUint::random_bits(&mut rng, bits + 5);
                let exp = BigUint::random_bits(&mut rng, bits);
                assert_eq!(
                    ctx.modpow(&base, &exp),
                    base.modpow_schoolbook(&exp, &n),
                    "bits={bits}"
                );
            }
        }
    }

    #[test]
    fn modpow_edge_exponents() {
        let mut rng = StdRng::seed_from_u64(14);
        let n = odd_modulus(&mut rng, 256);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = BigUint::random_bits(&mut rng, 256);
        assert_eq!(ctx.modpow(&base, &BigUint::zero()), BigUint::one());
        assert_eq!(ctx.modpow(&base, &BigUint::one()), base.rem(&n));
        assert_eq!(
            ctx.modpow(&BigUint::zero(), &BigUint::from_u64(5)),
            BigUint::zero()
        );
        assert_eq!(
            ctx.modpow(&BigUint::one(), &BigUint::from_u64(1 << 40)),
            BigUint::one()
        );
    }

    #[test]
    fn to_from_mont_roundtrip() {
        let mut rng = StdRng::seed_from_u64(15);
        let n = odd_modulus(&mut rng, 320);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for _ in 0..100 {
            let x = BigUint::random_bits(&mut rng, 320);
            let m = ctx.to_mont(&x);
            assert_eq!(ctx.demont(&m), x.rem(&n));
        }
    }

    #[test]
    fn dual_exponentiation_matches_two_modpows() {
        let mut rng = StdRng::seed_from_u64(16);
        let n = odd_modulus(&mut rng, 260);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for _ in 0..20 {
            let a = BigUint::random_bits(&mut rng, 260);
            let b = BigUint::random_bits(&mut rng, 260);
            let x = BigUint::random_bits(&mut rng, 255);
            let y = BigUint::random_bits(&mut rng, 255);
            let fused = ctx.modpow_dual(&ctx.pow_table(&a), &x, &ctx.pow_table(&b), &y);
            let split = ctx.modpow(&a, &x).mul_mod(&ctx.modpow(&b, &y), &n);
            assert_eq!(fused, split);
        }
    }

    #[test]
    fn dual_exponentiation_asymmetric_exponent_lengths() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = odd_modulus(&mut rng, 256);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let a = BigUint::random_bits(&mut rng, 256);
        let b = BigUint::random_bits(&mut rng, 256);
        for (xb, yb) in [(0u32, 255u32), (255, 0), (3, 250), (250, 3)] {
            let x = BigUint::random_bits(&mut rng, xb.max(1)).rem(&BigUint::one().shl(xb.max(1)));
            let x = if xb == 0 { BigUint::zero() } else { x };
            let y = BigUint::random_bits(&mut rng, yb.max(1));
            let y = if yb == 0 { BigUint::zero() } else { y };
            let fused = ctx.modpow_dual(&ctx.pow_table(&a), &x, &ctx.pow_table(&b), &y);
            let split = ctx.modpow(&a, &x).mul_mod(&ctx.modpow(&b, &y), &n);
            assert_eq!(fused, split, "xb={xb} yb={yb}");
        }
    }

    #[test]
    fn single_limb_modulus_works() {
        let n = BigUint::from_u64(1_000_000_007);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = BigUint::from_u64(123_456);
        let exp = BigUint::from_u64(1_000_000_006);
        // Fermat: base^(p-1) = 1 mod p.
        assert_eq!(ctx.modpow(&base, &exp), BigUint::one());
    }
}
