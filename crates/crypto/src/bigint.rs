//! Arbitrary-precision unsigned integers.
//!
//! `BigUint` stores magnitude as little-endian `u64` limbs with no leading
//! zero limbs (zero is the empty limb vector). The implementation covers
//! exactly what the PDS² cryptographic stack needs: schoolbook
//! multiplication, Knuth algorithm-D division, modular exponentiation and
//! inversion, Miller–Rabin primality testing and random prime generation.
//!
//! The representation invariant (`self.limbs.last() != Some(&0)`) is upheld
//! by every constructor and operation; `debug_assert!`s guard it in tests.

use rand::Rng;
use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut limbs = vec![lo, hi];
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Builds a value from little-endian limbs (normalizing trailing zeros).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Little-endian limb view.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Parses a big-endian byte string.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut acc: u64 = 0;
        let mut shift = 0u32;
        for &b in bytes.iter().rev() {
            acc |= (b as u64) << shift;
            shift += 8;
            if shift == 64 {
                limbs.push(acc);
                acc = 0;
                shift = 0;
            }
        }
        if acc != 0 {
            limbs.push(acc);
        }
        Self::from_limbs(limbs)
    }

    /// Serializes to big-endian bytes with no leading zeros (zero -> empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zero bytes of the top limb.
                let mut skipping = true;
                for &b in &bytes {
                    if skipping && b == 0 {
                        continue;
                    }
                    skipping = false;
                    out.push(b);
                }
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to big-endian bytes, left-padded with zeros to `len` bytes.
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex(s: &str) -> Option<Self> {
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let s = s.as_bytes();
        let mut i = 0;
        // Handle odd length by treating the first nibble alone.
        if s.len() % 2 == 1 {
            bytes.push(hex_val(s[0])?);
            i = 1;
        }
        while i < s.len() {
            bytes.push(hex_val(s[i])? << 4 | hex_val(s[i + 1])?);
            i += 2;
        }
        Some(Self::from_bytes_be(&bytes))
    }

    /// Hexadecimal rendering (lowercase, no prefix, "0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let bytes = self.to_bytes_be();
        let mut s = String::with_capacity(bytes.len() * 2);
        for (i, b) in bytes.iter().enumerate() {
            if i == 0 {
                s.push_str(&format!("{b:x}"));
            } else {
                s.push_str(&format!("{b:02x}"));
            }
        }
        s
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// True iff the lowest bit is clear (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: u32) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Converts to `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64),
            _ => None,
        }
    }

    /// `self + other`.
    #[allow(clippy::needless_range_loop)] // lockstep limb indexing
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (a, b) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for i in 0..a.len() {
            let bi = b.get(i).copied().unwrap_or(0);
            let (s1, c1) = a[i].overflowing_add(bi);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`. Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint::sub underflow: subtrahend larger than minuend")
    }

    /// `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self.cmp_val(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let bi = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(bi);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// Limb count above which multiplication switches to Karatsuba.
    /// Measured crossover: this allocation-based Karatsuba only beats the
    /// schoolbook loop from ~128 limbs (8192-bit operands); 96 engages it
    /// just below that so the recursive halves stay in schoolbook range.
    const KARATSUBA_THRESHOLD: usize = 96;

    /// `self * other` (schoolbook below `Self::KARATSUBA_THRESHOLD`
    /// limbs, Karatsuba above — relevant for Paillier's 2048-bit `n²`
    /// arithmetic).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if self.limbs.len().min(other.limbs.len()) < Self::KARATSUBA_THRESHOLD {
            return self.mul_schoolbook(other);
        }
        self.mul_karatsuba(other)
    }

    fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u128 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Karatsuba: split both operands at `m` limbs, reduce one n-limb
    /// multiplication to three n/2-limb multiplications.
    fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let m = self.limbs.len().max(other.limbs.len()) / 2;
        let (a0, a1) = self.split_at_limb(m);
        let (b0, b1) = other.split_at_limb(m);
        let z0 = a0.mul(&b0);
        let z2 = a1.mul(&b1);
        // z1 = (a0+a1)(b0+b1) - z0 - z2
        let z1 = a0.add(&a1).mul(&b0.add(&b1)).sub(&z0).sub(&z2);
        // result = z2·B^(2m) + z1·B^m + z0, with B = 2^64.
        z2.shl((2 * m) as u32 * 64)
            .add(&z1.shl(m as u32 * 64))
            .add(&z0)
    }

    /// Splits into (low `m` limbs, remaining high limbs).
    fn split_at_limb(&self, m: usize) -> (BigUint, BigUint) {
        if self.limbs.len() <= m {
            (self.clone(), BigUint::zero())
        } else {
            (
                BigUint::from_limbs(self.limbs[..m].to_vec()),
                BigUint::from_limbs(self.limbs[m..].to_vec()),
            )
        }
    }

    /// `self * small`.
    pub fn mul_u64(&self, small: u64) -> BigUint {
        if small == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &l in &self.limbs {
            let cur = l as u128 * small as u128 + carry;
            out.push(cur as u64);
            carry = cur >> 64;
        }
        if carry != 0 {
            out.push(carry as u64);
        }
        BigUint::from_limbs(out)
    }

    /// `self << bits`.
    pub fn shl(&self, bits: u32) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self >> bits`.
    pub fn shr(&self, bits: u32) -> BigUint {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (64 - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }

    /// Total-order comparison.
    pub fn cmp_val(&self, other: &BigUint) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `(self / divisor, self % divisor)`. Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp_val(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_u64(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }
        self.divrem_knuth(divisor)
    }

    /// `(self / divisor, self % divisor)` for a single-limb divisor.
    pub fn divrem_u64(&self, divisor: u64) -> (BigUint, u64) {
        assert!(divisor != 0, "division by zero");
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            out[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        (BigUint::from_limbs(out), rem as u64)
    }

    /// Knuth algorithm D for multi-limb divisors.
    fn divrem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // Normalize so the top divisor limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros();
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;

        let mut un = u.limbs.clone();
        un.push(0); // extra high limb for the algorithm
        let vn = &v.limbs;
        let v_hi = vn[n - 1];
        let v_lo = vn[n - 2];

        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate the quotient limb from the top two/three limbs.
            let num = (un[j + n] as u128) << 64 | un[j + n - 1] as u128;
            let mut qhat = num / v_hi as u128;
            let mut rhat = num % v_hi as u128;
            while qhat >> 64 != 0 || qhat * v_lo as u128 > (rhat << 64 | un[j + n - 2] as u128) {
                qhat -= 1;
                rhat += v_hi as u128;
                if rhat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-subtract: un[j..j+n+1] -= qhat * vn.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * vn[i] as u128 + carry;
                carry = p >> 64;
                let t = un[i + j] as i128 - borrow - (p as u64) as i128;
                un[i + j] = t as u64;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i128 - borrow - carry as i128;
            un[j + n] = t as u64;
            if t < 0 {
                // Estimate was one too high: add back.
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let (s1, c1) = un[i + j].overflowing_add(vn[i]);
                    let (s2, c2) = s1.overflowing_add(carry);
                    un[i + j] = s2;
                    carry = (c1 as u64) + (c2 as u64);
                }
                un[j + n] = un[j + n].wrapping_add(carry);
            }
            q[j] = qhat as u64;
        }
        un.truncate(n);
        let rem = BigUint::from_limbs(un).shr(shift);
        (BigUint::from_limbs(q), rem)
    }

    /// `self % modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.divrem(modulus).1
    }

    /// `(self + other) % modulus`, assuming both operands are `< modulus`.
    pub fn add_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        let s = self.add(other);
        if s.cmp_val(modulus) == Ordering::Less {
            s
        } else {
            s.sub(modulus)
        }
    }

    /// `(self - other) mod modulus`, assuming both operands are `< modulus`.
    pub fn sub_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        if self.cmp_val(other) == Ordering::Less {
            self.add(modulus).sub(other)
        } else {
            self.sub(other)
        }
    }

    /// `(self * other) % modulus`.
    ///
    /// A one-shot multiply keeps the divrem reduction: Montgomery form
    /// only wins once the per-modulus setup is amortised, so callers on a
    /// hot path with a fixed modulus should hold a
    /// [`crate::montgomery::MontgomeryCtx`] instead (as the Schnorr
    /// verifier does).
    pub fn mul_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// Exponent size (bits) above which [`Self::modpow`] routes odd
    /// moduli through the Montgomery fast path. Below it, the context
    /// setup (two divrems + window table) costs more than the handful of
    /// schoolbook multiplies it replaces.
    const MONTGOMERY_EXP_BITS: u32 = 32;

    /// `self^exponent mod modulus`.
    ///
    /// Odd moduli with non-trivial exponents go through fixed-window
    /// Montgomery exponentiation ([`crate::montgomery`]); even moduli and
    /// tiny exponents use the schoolbook square-and-multiply loop. Both
    /// paths return bit-identical values (pinned by property tests).
    pub fn modpow(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        if !modulus.is_even() && exponent.bits() >= Self::MONTGOMERY_EXP_BITS {
            if let Some(ctx) = crate::montgomery::MontgomeryCtx::new(modulus) {
                return ctx.modpow(self, exponent);
            }
        }
        self.modpow_schoolbook(exponent, modulus)
    }

    /// `self^exponent mod modulus` by bit-by-bit square-and-multiply with
    /// divrem reduction — the reference implementation the Montgomery
    /// path is checked against (kept public for property tests and the
    /// `bench_crypto` before/after comparison).
    pub fn modpow_schoolbook(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "modpow with zero modulus");
        if modulus.is_one() {
            return BigUint::zero();
        }
        let mut base = self.rem(modulus);
        let mut result = BigUint::one();
        let nbits = exponent.bits();
        for i in 0..nbits {
            if exponent.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
            if i + 1 < nbits {
                base = base.mul_mod(&base, modulus);
            }
        }
        result
    }

    /// Greatest common divisor (binary-free classic Euclid).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular inverse: `self^-1 mod modulus`, or `None` if not coprime.
    pub fn modinv(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || modulus.is_one() {
            return None;
        }
        // Extended Euclid tracking only the coefficient of `self`,
        // with sign handled explicitly.
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        let mut t0 = (BigUint::zero(), false); // (magnitude, negative)
        let mut t1 = (BigUint::one(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.divrem(&r1);
            // t2 = t0 - q * t1
            let qt1 = q.mul(&t1.0);
            let t2 = signed_sub(&t0, &(qt1, t1.1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        let inv = if t0.1 {
            modulus.sub(&t0.0.rem(modulus))
        } else {
            t0.0.rem(modulus)
        };
        Some(inv.rem(modulus))
    }

    /// Uniform random value in `[0, bound)`. Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "random_below with zero bound");
        let bits = bound.bits();
        loop {
            let candidate = Self::random_bits(rng, bits);
            if candidate.cmp_val(bound) == Ordering::Less {
                return candidate;
            }
        }
    }

    /// Uniform random value with at most `bits` bits.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> BigUint {
        let nlimbs = bits.div_ceil(64) as usize;
        let mut limbs = Vec::with_capacity(nlimbs);
        for _ in 0..nlimbs {
            limbs.push(rng.random::<u64>());
        }
        let extra = (nlimbs as u32) * 64 - bits;
        if extra > 0 {
            if let Some(top) = limbs.last_mut() {
                *top >>= extra;
            }
        }
        BigUint::from_limbs(limbs)
    }

    /// Miller–Rabin probabilistic primality test.
    ///
    /// Uses the deterministic witness set {2,3,...,37} (sound below
    /// 3.3·10^24) plus `extra_rounds` random witnesses for larger inputs.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R, extra_rounds: u32) -> bool {
        const SMALL_PRIMES: [u64; 15] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];
        if self.is_zero() || self.is_one() {
            return false;
        }
        for &p in &SMALL_PRIMES {
            let pb = BigUint::from_u64(p);
            match self.cmp_val(&pb) {
                Ordering::Equal => return true,
                Ordering::Less => return false,
                Ordering::Greater => {}
            }
            if self.divrem_u64(p).1 == 0 {
                return false;
            }
        }
        // Write self - 1 = d * 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let mut d = n_minus_1.clone();
        let mut s = 0u32;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        let witness_ok = |a: &BigUint| -> bool {
            let mut x = a.modpow(&d, self);
            if x.is_one() || x == n_minus_1 {
                return true;
            }
            for _ in 1..s {
                x = x.mul_mod(&x, self);
                if x == n_minus_1 {
                    return true;
                }
            }
            false
        };
        for &p in &SMALL_PRIMES[..12] {
            if !witness_ok(&BigUint::from_u64(p)) {
                return false;
            }
        }
        if self.bits() <= 81 {
            // Deterministic witness set is conclusive for values this small.
            return true;
        }
        let two = BigUint::from_u64(2);
        let hi = self.sub(&two);
        for _ in 0..extra_rounds {
            let a = BigUint::random_below(rng, &hi).add(&two);
            if !witness_ok(&a) {
                return false;
            }
        }
        true
    }

    /// Generates a random probable prime with exactly `bits` bits.
    pub fn random_prime<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> BigUint {
        assert!(bits >= 2, "prime must have at least 2 bits");
        loop {
            let mut candidate = Self::random_bits(rng, bits);
            // Force top and bottom bits: exact bit length, odd.
            candidate = candidate.set_bit(bits - 1).set_bit(0);
            if candidate.is_probable_prime(rng, 16) {
                return candidate;
            }
        }
    }

    /// Returns a copy with bit `i` set.
    pub fn set_bit(&self, i: u32) -> BigUint {
        let limb = (i / 64) as usize;
        let mut limbs = self.limbs.clone();
        if limbs.len() <= limb {
            limbs.resize(limb + 1, 0);
        }
        limbs[limb] |= 1u64 << (i % 64);
        BigUint::from_limbs(limbs)
    }
}

/// Signed subtraction helper for the extended Euclid loop:
/// computes `a - b` on (magnitude, is_negative) pairs.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative.
        (false, false) => match a.0.cmp_val(&b.0) {
            Ordering::Less => (b.0.sub(&a.0), true),
            _ => (a.0.sub(&b.0), false),
        },
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a
        (true, true) => match b.0.cmp_val(&a.0) {
            Ordering::Less => (a.0.sub(&b.0), true),
            _ => (b.0.sub(&a.0), false),
        },
    }
}

fn hex_val(c: u8) -> Option<u8> {
    match c {
        b'0'..=b'9' => Some(c - b'0'),
        b'a'..=b'f' => Some(c - b'a' + 10),
        b'A'..=b'F' => Some(c - b'A' + 10),
        _ => None,
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_val(other)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal rendering by repeated division; fine for display purposes.
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut v = self.clone();
        while !v.is_zero() {
            let (q, r) = v.divrem_u64(10);
            digits.push(b'0' + r as u8);
            v = q;
        }
        digits.reverse();
        write!(f, "{}", std::str::from_utf8(&digits).unwrap())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn add_sub_small() {
        let a = b(0xffff_ffff_ffff_ffff);
        let c = a.add(&BigUint::one());
        assert_eq!(c.to_u128(), Some(1u128 << 64));
        assert_eq!(c.sub(&BigUint::one()), a);
    }

    #[test]
    fn checked_sub_underflow() {
        assert!(b(3).checked_sub(&b(5)).is_none());
        assert_eq!(b(5).checked_sub(&b(3)), Some(b(2)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = b(1).sub(&b(2));
    }

    #[test]
    fn mul_matches_u128() {
        let a = b(0x1234_5678_9abc_def0);
        let c = b(0xfedc_ba98);
        assert_eq!(
            a.mul(&c).to_u128(),
            Some(0x1234_5678_9abc_def0u128 * 0xfedc_ba98u128)
        );
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let mut rng = StdRng::seed_from_u64(99);
        // Sizes straddling the threshold, including asymmetric operands.
        for (abits, bbits) in [
            (8192u32, 8192u32),
            (8192, 1024),
            (16384, 16384),
            (7000, 13000),
        ] {
            let a = BigUint::random_bits(&mut rng, abits);
            let b = BigUint::random_bits(&mut rng, bbits);
            assert_eq!(a.mul(&b), a.mul_schoolbook(&b), "{abits}x{bbits}");
            assert_eq!(a.mul(&b), b.mul(&a), "commutes {abits}x{bbits}");
        }
    }

    #[test]
    fn karatsuba_handles_zero_halves() {
        // Operand whose low half is all zeros exercises the split edges.
        let mut rng = StdRng::seed_from_u64(100);
        let hi = BigUint::random_bits(&mut rng, 6400).shl(6400);
        let b = BigUint::random_bits(&mut rng, 12800);
        assert_eq!(hi.mul(&b), hi.mul_schoolbook(&b));
    }

    #[test]
    fn mul_u64_matches_mul() {
        let a = b(u128::MAX);
        assert_eq!(a.mul_u64(12345), a.mul(&b(12345)));
    }

    #[test]
    fn shifts_roundtrip() {
        let a = b(0xdead_beef_cafe_babe);
        assert_eq!(a.shl(77).shr(77), a);
        assert_eq!(a.shl(64).limbs(), &[0, 0xdead_beef_cafe_babe]);
        assert_eq!(a.shr(200), BigUint::zero());
    }

    #[test]
    fn divrem_small_divisor() {
        let a = b(1_000_000_007u128 * 999 + 123);
        let (q, r) = a.divrem(&b(1_000_000_007));
        assert_eq!(q, b(999));
        assert_eq!(r, b(123));
    }

    #[test]
    fn divrem_multi_limb() {
        // 192-bit / 128-bit exercise of Knuth D.
        let a = b(u128::MAX).mul(&b(0x1_0000_0001)).add(&b(42));
        let d = b(u128::MAX);
        let (q, r) = a.divrem(&d);
        assert_eq!(q, b(0x1_0000_0001));
        assert_eq!(r, b(42));
    }

    #[test]
    fn divrem_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let a = BigUint::random_bits(&mut rng, 256);
            let d = BigUint::random_bits(&mut rng, 130).add(&BigUint::one());
            let (q, r) = a.divrem(&d);
            assert!(r.cmp_val(&d) == Ordering::Less);
            assert_eq!(q.mul(&d).add(&r), a);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = b(1).divrem(&BigUint::zero());
    }

    #[test]
    fn bytes_roundtrip() {
        let a = BigUint::from_bytes_be(&[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09]);
        assert_eq!(a.to_bytes_be(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 7]), b(7));
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
    }

    #[test]
    fn padded_bytes() {
        assert_eq!(b(7).to_bytes_be_padded(4), vec![0, 0, 0, 7]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn padded_bytes_too_small() {
        let _ = b(0x1_0000).to_bytes_be_padded(2);
    }

    #[test]
    fn hex_roundtrip() {
        let a = BigUint::from_hex("deadbeefcafebabe1234").unwrap();
        assert_eq!(a.to_hex(), "deadbeefcafebabe1234");
        assert_eq!(BigUint::from_hex("0").unwrap(), BigUint::zero());
        assert_eq!(BigUint::from_hex("f").unwrap(), b(15));
        assert!(BigUint::from_hex("xyz").is_none());
    }

    #[test]
    fn display_decimal() {
        assert_eq!(b(0).to_string(), "0");
        assert_eq!(b(1234567890123456789).to_string(), "1234567890123456789");
    }

    #[test]
    fn modpow_small() {
        // 3^7 mod 100 = 2187 mod 100 = 87
        assert_eq!(b(3).modpow(&b(7), &b(100)), b(87));
        // Fermat: a^(p-1) = 1 mod p
        let p = b(1_000_000_007);
        assert_eq!(
            b(123456).modpow(&p.sub(&BigUint::one()), &p),
            BigUint::one()
        );
        assert_eq!(b(5).modpow(&b(0), &b(7)), BigUint::one());
        assert_eq!(b(5).modpow(&b(3), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn modinv_basic() {
        let p = b(1_000_000_007);
        let a = b(987654321);
        let inv = a.modinv(&p).unwrap();
        assert_eq!(a.mul_mod(&inv, &p), BigUint::one());
        // Non-coprime has no inverse.
        assert!(b(6).modinv(&b(9)).is_none());
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(b(48).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(17).gcd(&b(13)), b(1));
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(1);
        for p in [2u64, 3, 5, 97, 7919, 1_000_000_007] {
            assert!(BigUint::from_u64(p).is_probable_prime(&mut rng, 8), "{p}");
        }
        for c in [1u64, 4, 100, 7917, 1_000_000_007 * 3] {
            assert!(!BigUint::from_u64(c).is_probable_prime(&mut rng, 8), "{c}");
        }
        // Carmichael number 561 = 3 * 11 * 17 must be rejected.
        assert!(!b(561).is_probable_prime(&mut rng, 8));
    }

    #[test]
    fn random_prime_has_exact_bits() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = BigUint::random_prime(&mut rng, 96);
        assert_eq!(p.bits(), 96);
        assert!(!p.is_even());
        assert!(p.is_probable_prime(&mut rng, 16));
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let bound = b(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v.cmp_val(&bound) == Ordering::Less);
        }
    }

    #[test]
    fn bit_access() {
        let a = b(0b1010_0001);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(5));
        assert!(a.bit(7));
        assert!(!a.bit(1000));
        assert_eq!(a.set_bit(1), b(0b1010_0011));
        assert_eq!(
            BigUint::zero().set_bit(64),
            BigUint::from_u128(1 << 64).shl(0)
        );
    }

    #[test]
    fn mod_arith_helpers() {
        let m = b(97);
        assert_eq!(b(90).add_mod(&b(10), &m), b(3));
        assert_eq!(b(5).sub_mod(&b(10), &m), b(92));
        assert_eq!(b(50).mul_mod(&b(3), &m), b(150 % 97));
    }
}
