//! Canonical binary codec.
//!
//! Every structure in PDS² that is hashed, signed or stored on-chain is
//! serialized through this codec. The layout is deterministic by
//! construction (fixed-width little-endian integers, length-prefixed
//! sequences, tagged options), which makes `sha256(encode(x))` a canonical
//! identifier.

use crate::sha256::{sha256, Digest, DIGEST_LEN};

/// Encoding destination with convenience writers.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Encodes an `f64` via its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Fixed-width digest (no length prefix).
    pub fn put_digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(d.as_bytes());
    }

    /// Raw bytes with no length prefix (use only for fixed-width fields).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed sequence of encodable items.
    pub fn put_seq<T: Encode>(&mut self, items: &[T]) {
        self.put_u64(items.len() as u64);
        for item in items {
            item.encode(self);
        }
    }

    /// Tagged option: 0 for None, 1 + payload for Some.
    pub fn put_option<T: Encode>(&mut self, v: &Option<T>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                x.encode(self);
            }
        }
    }
}

/// Decoding cursor over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the expected field.
    UnexpectedEnd,
    /// A tag byte or enum discriminant had an invalid value.
    InvalidTag(u8),
    /// A length prefix exceeded the remaining input.
    LengthOverflow,
    /// A UTF-8 string field contained invalid bytes.
    InvalidUtf8,
    /// Trailing bytes remained after a complete decode.
    TrailingBytes,
    /// Domain-specific validation failed.
    Invalid(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::InvalidTag(t) => write!(f, "invalid tag byte {t}"),
            DecodeError::LengthOverflow => write!(f, "length prefix exceeds input"),
            DecodeError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after decode"),
            DecodeError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl<'a> Decoder<'a> {
    /// Creates a cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }

    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_u128(&mut self) -> Result<u128, DecodeError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub fn get_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bytes(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.get_u64()? as usize;
        if len > self.remaining() {
            return Err(DecodeError::LengthOverflow);
        }
        Ok(self.take(len)?.to_vec())
    }

    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| DecodeError::InvalidUtf8)
    }

    pub fn get_digest(&mut self) -> Result<Digest, DecodeError> {
        let bytes = self.take(DIGEST_LEN)?;
        Ok(Digest(bytes.try_into().unwrap()))
    }

    pub fn get_raw(&mut self, n: usize) -> Result<Vec<u8>, DecodeError> {
        Ok(self.take(n)?.to_vec())
    }

    pub fn get_seq<T: Decode>(&mut self) -> Result<Vec<T>, DecodeError> {
        let len = self.get_u64()? as usize;
        // Each element needs at least one byte; reject absurd prefixes early.
        if len > self.remaining() {
            return Err(DecodeError::LengthOverflow);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }

    pub fn get_option<T: Decode>(&mut self) -> Result<Option<T>, DecodeError> {
        match self.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(self)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }

    /// Asserts that the whole input was consumed.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Writes the canonical encoding of `self`.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Canonical content hash: `sha256(encode(self))`.
    fn content_hash(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

/// Types decodable from the canonical encoding.
pub trait Decode: Sized {
    /// Reads one value from the cursor.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes a full buffer, rejecting trailing bytes.
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(v)
    }
}

// Blanket implementations for primitives used in sequences.

impl Encode for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
}
impl Decode for u8 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
}
impl Decode for u32 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
}
impl Decode for u64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u64()
    }
}

impl Encode for u128 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u128(*self);
    }
}
impl Decode for u128 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_u128()
    }
}

impl Encode for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
}
impl Decode for f64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_f64()
    }
}

impl Encode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
}
impl Decode for String {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_str()
    }
}

impl Encode for Digest {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(self);
    }
}
impl Decode for Digest {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_digest()
    }
}

impl Encode for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}
impl Decode for Vec<u8> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_bytes()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_option(self);
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.get_option()
    }
}

impl crate::bigint::BigUint {
    /// Encodes as a length-prefixed big-endian byte string.
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_bytes(&self.to_bytes_be());
    }

    /// Decodes from a length-prefixed big-endian byte string.
    pub fn decode_from(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Self::from_bytes_be(&dec.get_bytes()?))
    }
}

impl Encode for crate::bigint::BigUint {
    fn encode(&self, enc: &mut Encoder) {
        self.encode_into(enc);
    }
}
impl Decode for crate::bigint::BigUint {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Self::decode_from(dec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigint::BigUint;

    #[test]
    fn primitive_roundtrips() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_bool(true);
        enc.put_u32(0xdeadbeef);
        enc.put_u64(u64::MAX);
        enc.put_u128(u128::MAX - 5);
        enc.put_i64(-42);
        enc.put_f64(3.25);
        enc.put_bytes(b"hello");
        enc.put_str("wörld");
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert!(dec.get_bool().unwrap());
        assert_eq!(dec.get_u32().unwrap(), 0xdeadbeef);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_u128().unwrap(), u128::MAX - 5);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert_eq!(dec.get_f64().unwrap(), 3.25);
        assert_eq!(dec.get_bytes().unwrap(), b"hello");
        assert_eq!(dec.get_str().unwrap(), "wörld");
        dec.expect_end().unwrap();
    }

    #[test]
    fn seq_and_option() {
        let mut enc = Encoder::new();
        enc.put_seq(&[1u64, 2, 3]);
        enc.put_option(&Some(9u32));
        enc.put_option::<u32>(&None);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_seq::<u64>().unwrap(), vec![1, 2, 3]);
        assert_eq!(dec.get_option::<u32>().unwrap(), Some(9));
        assert_eq!(dec.get_option::<u32>().unwrap(), None);
    }

    #[test]
    fn errors() {
        let mut dec = Decoder::new(&[]);
        assert_eq!(dec.get_u8(), Err(DecodeError::UnexpectedEnd));

        // Length prefix beyond input.
        let mut enc = Encoder::new();
        enc.put_u64(1000);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_bytes(), Err(DecodeError::LengthOverflow));

        // Bad option tag.
        let mut dec = Decoder::new(&[2]);
        assert_eq!(dec.get_option::<u8>(), Err(DecodeError::InvalidTag(2)));

        // Bad bool.
        let mut dec = Decoder::new(&[9]);
        assert_eq!(dec.get_bool(), Err(DecodeError::InvalidTag(9)));

        // Trailing bytes.
        let dec = Decoder::new(&[1]);
        assert_eq!(dec.expect_end(), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn invalid_utf8() {
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xff, 0xfe]);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_str(), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn biguint_roundtrip() {
        let v = BigUint::from_hex("deadbeef00112233445566778899aabbccddeeff").unwrap();
        let bytes = v.to_bytes();
        assert_eq!(BigUint::from_bytes(&bytes).unwrap(), v);
        assert_eq!(
            BigUint::from_bytes(&BigUint::zero().to_bytes()).unwrap(),
            BigUint::zero()
        );
    }

    #[test]
    fn content_hash_is_deterministic() {
        let a = vec![1u8, 2, 3];
        let b = vec![1u8, 2, 3];
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), vec![1u8, 2, 4].content_hash());
    }

    #[test]
    fn encoding_is_canonical_across_chunking() {
        // Same logical value always encodes to identical bytes.
        let mut e1 = Encoder::new();
        e1.put_seq(&[10u32, 20, 30]);
        let mut e2 = Encoder::new();
        e2.put_seq(&[10u32, 20, 30]);
        assert_eq!(e1.finish(), e2.finish());
    }
}
