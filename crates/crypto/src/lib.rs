//! # pds2-crypto
//!
//! Cryptographic substrate for the PDS² marketplace, implemented from
//! scratch on top of the standard library:
//!
//! - [`bigint`] — arbitrary-precision unsigned integers with modular
//!   arithmetic and primality testing (used by Paillier and Schnorr);
//! - [`montgomery`] — Montgomery-form multiplication, fixed-window and
//!   Shamir/Straus dual exponentiation (the signature-verification fast
//!   path; see DESIGN.md §5d);
//! - [`mod@sha256`] — SHA-256 (FIPS 180-4);
//! - [`hmac`] — HMAC-SHA-256 and HKDF;
//! - [`chacha20`] — ChaCha20 stream cipher plus encrypt-then-MAC sealing;
//! - [`codec`] — the canonical binary encoding used for every hashed or
//!   signed structure in the platform;
//! - [`merkle`] — Merkle trees with inclusion proofs;
//! - [`schnorr`] — Schnorr signatures over a prime-order group with
//!   deterministic nonces.
//!
//! **Security note.** The mathematics is real (no stub crypto), but the
//! implementation is a research artifact: it is not constant-time and key
//! sizes are chosen for simulation speed. Do not reuse as production crypto.

pub mod bigint;
pub mod chacha20;
pub mod codec;
pub mod hmac;
pub mod merkle;
pub mod montgomery;
pub mod schnorr;
pub mod sha256;

pub use bigint::BigUint;
pub use codec::{Decode, DecodeError, Decoder, Encode, Encoder};
pub use merkle::{MerkleProof, MerkleTree};
pub use montgomery::{MontgomeryCtx, PowTable};
pub use schnorr::{KeyPair, PublicKey, SecretKey, Signature};
pub use sha256::{sha256, Digest, Sha256};
