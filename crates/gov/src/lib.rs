//! Threshold-federated governance for the PDS2 chain (DESIGN.md §5i).
//!
//! PR 3 gave the chain single-key Schnorr block signatures; this crate
//! removes the single point of trust. The validator set runs a
//! deterministic [DKG](dkg::run_dkg) that splits a group signing key
//! into `(t, n)` Shamir shares — no party ever holds the whole key —
//! and blocks are sealed by any `t`-of-`n` quorum whose
//! [partial signatures](sign::partial_sign) aggregate, via Lagrange
//! interpolation at zero, into **one ordinary Schnorr signature** under
//! the group public key. Verifiers are oblivious: the aggregate passes
//! the unmodified `PublicKey::verify`, so chain validation, the
//! signature cache and the Montgomery fast path from PR 3 are reused
//! byte-for-byte.
//!
//! Three lifecycle mechanisms complete the committee story:
//!
//! - [`sign::SigningSession`] rejects byzantine partials before they
//!   can poison an aggregate (one dual exponentiation per check);
//! - [`dkg::refresh_share`] proactively re-randomizes every share on
//!   validator churn while the group key — and thus every historical
//!   block signature — stays valid;
//! - [`dkg::recover_share`] rebuilds a crashed validator's share from
//!   any `t` helpers ("break-glass" recovery for up to `n − t` losses).
//!
//! [`net::GovNode`] runs the whole protocol over the deterministic
//! network simulator for the chaos harness; `pds2-chain` wires
//! [`sign::sign_with_quorum`] into block sealing behind
//! `PDS2_SIG_MODE=threshold` with the single-key path kept as a
//! differential oracle.
//!
//! Everything is seed-deterministic: same seed, same committee, same
//! signatures, at any `PDS2_THREADS` value. Observability: `gov.*`
//! counters plus `gov/dkg` and `gov/sign` spans (OBSERVABILITY.md).

pub mod dkg;
pub mod net;
pub mod sign;

pub use dkg::{run_dkg, run_dkg_quiet, Committee, ThresholdParams, ValidatorShare};
pub use sign::{sign_with_quorum, NonceCommitment, NonceGuard, PartialSig, SigningSession};

/// Errors across DKG, signing, refresh and recovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GovError {
    /// `t = 0` or `t > n`.
    BadThreshold,
    /// Fewer than `t` shares/partials/contributions were supplied.
    NotEnoughShares,
    /// A signer index appears twice in a signer set.
    DuplicateSigner(u64),
    /// A signer index is not part of the committee (or signer set).
    UnknownSigner(u64),
    /// A dealt share, recovered share or refreshed commitment failed
    /// verification against its public (Feldman) commitment.
    CommitmentMismatch,
    /// A partial's nonce commitment does not match the signer set fixed
    /// for this attempt (inconsistent aggregator views).
    NonceMismatch,
    /// A partial from a different attempt or refresh epoch.
    StalePartial,
    /// A signer was asked to sign the same `(epoch, attempt, message)`
    /// tuple under a second, different commitment transcript — refused
    /// by [`sign::NonceGuard`] so deterministic nonces never meet two
    /// challenges (the Schnorr key-extraction hazard).
    NonceReuse,
    /// A partial signature failed the per-signer check
    /// `g^{s_i}·Y_i^{−e·λ_i} = R_i` — a byzantine contribution.
    BadPartial(u64),
    /// The aggregate failed verification under the group key (an
    /// aggregator-side bug; individual bad partials are caught earlier).
    AggregateInvalid,
}

impl std::fmt::Display for GovError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GovError::BadThreshold => write!(f, "threshold must satisfy 1 <= t <= n"),
            GovError::NotEnoughShares => write!(f, "fewer than t shares supplied"),
            GovError::DuplicateSigner(i) => write!(f, "signer {i} appears twice in the set"),
            GovError::UnknownSigner(i) => write!(f, "signer {i} is not in the committee/set"),
            GovError::CommitmentMismatch => write!(f, "share fails its public commitment check"),
            GovError::NonceMismatch => write!(f, "nonce commitment differs from the fixed set"),
            GovError::StalePartial => write!(f, "partial from a stale attempt or epoch"),
            GovError::NonceReuse => write!(
                f,
                "tuple already signed under a different commitment transcript"
            ),
            GovError::BadPartial(i) => write!(f, "byzantine partial signature from signer {i}"),
            GovError::AggregateInvalid => write!(f, "aggregate failed group-key verification"),
        }
    }
}

impl std::error::Error for GovError {}
