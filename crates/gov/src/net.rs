//! The threshold-signing committee as a [`pds2_net`] protocol, for the
//! chaos harness.
//!
//! Node `i` plays validator index `i + 1`; node 0 doubles as the
//! aggregator driving one digest at a time through the two signing
//! rounds:
//!
//! ```text
//!   aggregator                         members (t-of-n quorum)
//!       │  NonceReq{seq,attempt,epoch,digest}
//!       ├──────────────────────────────────▶│  derive (d_i, e_i),
//!       │                                   │  (D_i, E_i) = (g^d_i, g^e_i)
//!       │◀──────────────────────────────────┤  Nonce{…, signer, (D_i,E_i)}
//!       │  (t commitment pairs gathered → signer set fixed)
//!       │  SignReq{seq,attempt,digest,nonces}
//!       ├──────────────────────────────────▶│  partial_sign(...) — binds
//!       │                                   │  the full transcript, guarded
//!       │                                   │  against transcript swaps
//!       │◀──────────────────────────────────┤  Partial{seq, PartialSig}
//!       │  (t partials verified → aggregate → plain Schnorr sig)
//! ```
//!
//! Failure handling is retry-shaped and self-healing:
//!
//! - **Byzantine partial** — [`SigningSession::offer`] rejects it; the
//!   signer is blacklisted for that sequence number and the attempt
//!   counter bumps, which re-derives every nonce (no nonce ever signs
//!   two different challenges) and picks a quorum without the liar.
//! - **Partitioned sub-quorum** — with fewer than `t` members reachable
//!   the attempt simply never completes; a retry timer re-issues the
//!   request until the partition heals.
//! - **Crash/refresh races** — shares are epoch-tagged. A member whose
//!   share epoch does not match a request stays silent, stale partials
//!   are rejected, and the retry picks things up once epochs agree.
//!   A crashed member loses its share (break-glass drill: in this
//!   deterministic reproduction it *could* re-derive everything from
//!   the public seed, but the point is the protocol) and interpolates
//!   it back from any `t` helpers before signing again.
//!
//! Everything — quorum choice, nonces, retries — is deterministic given
//! the simulator seed and fault plan, so chaos runs pin exact trace
//! hashes in golden files.

use crate::dkg::{
    recover_share, recovery_contribution, refresh_committee, refresh_share, run_dkg_quiet,
    Committee, ThresholdParams, ValidatorShare,
};
use crate::sign::{
    nonce_commitment, partial_sign, NonceCommitment, NonceGuard, PartialSig, SigningSession,
};
use crate::GovError;
use pds2_crypto::schnorr::Signature;
use pds2_crypto::BigUint;
use pds2_net::sim::{Ctx, Node, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Per-seq retry cadence (µs of simulated time).
const RETRY_US: u64 = 50_000;
/// Recovery retry cadence.
const RECOVER_RETRY_US: u64 = 30_000;

const TAG_RETRY: u64 = 1;
const TAG_REFRESH: u64 = 2;
const TAG_RECOVER: u64 = 3;

/// Static configuration every node holds — the "config file on disk"
/// that survives crashes (unlike the share, which is wiped).
#[derive(Clone, Debug)]
pub struct GovConfig {
    /// DKG seed (public; see [`crate::dkg`] module docs).
    pub seed: u64,
    /// Committee shape.
    pub params: ThresholdParams,
    /// Simulated time at which every node proactively refreshes its
    /// share (one epoch bump), or `None` to never refresh.
    pub refresh_at: Option<u64>,
    /// Digests the aggregator (node 0) drives through signing, in order.
    pub digests: Vec<[u8; 32]>,
    /// Node indices (0-based) that corrupt their partial signatures.
    pub byzantine: BTreeSet<usize>,
}

/// Protocol messages. Sizes are dominated by 32-byte group elements.
#[derive(Clone, Debug)]
pub enum GovMsg {
    /// Aggregator → all: request round-1 nonce commitments.
    NonceReq {
        seq: u64,
        attempt: u32,
        epoch: u64,
        digest: [u8; 32],
    },
    /// Member → aggregator: nonce commitment pair `(D_i, E_i)`.
    Nonce {
        seq: u64,
        attempt: u32,
        epoch: u64,
        signer: u64,
        commit: NonceCommitment,
    },
    /// Aggregator → quorum: signer set fixed, produce partials.
    SignReq {
        seq: u64,
        attempt: u32,
        epoch: u64,
        digest: [u8; 32],
        nonces: Vec<(u64, NonceCommitment)>,
    },
    /// Member → aggregator: partial signature.
    Partial { seq: u64, partial: PartialSig },
    /// Recovering member → all: who can help rebuild my share?
    RecoverReq { epoch: u64 },
    /// Helper → recovering member: I hold a share at that epoch.
    RecoverOffer { epoch: u64, signer: u64 },
    /// Recovering member → chosen helpers: the full helper set (needed
    /// for the Lagrange weights).
    RecoverSet { epoch: u64, helpers: Vec<u64> },
    /// Helper → recovering member: `λ_i^S(lost)·s_i`.
    RecoverHelp {
        epoch: u64,
        helpers: Vec<u64>,
        contribution: BigUint,
    },
}

/// Aggregator-side state for the in-flight sequence number.
struct PendingSeq {
    seq: u64,
    attempt: u32,
    epoch: u64,
    digest: [u8; 32],
    nonces: BTreeMap<u64, NonceCommitment>,
    session: Option<SigningSession>,
    /// Signers caught sending byzantine partials for this seq.
    blacklist: BTreeSet<u64>,
}

/// Recovering-member state.
struct PendingRecovery {
    epoch: u64,
    offers: BTreeSet<u64>,
    helpers: Vec<u64>,
    contributions: BTreeMap<u64, BigUint>,
}

/// One committee node (see module docs). Node 0 is also the aggregator.
pub struct GovNode {
    cfg: GovConfig,
    /// Public committee state at the current epoch.
    committee: Committee,
    /// This validator's share; `None` after a crash until recovery.
    share: Option<ValidatorShare>,
    /// Anti-reuse state for [`partial_sign`]: each `(epoch, attempt,
    /// digest)` tuple is signed under at most one transcript. Persisted
    /// like `completed` ("on disk") — it must survive crashes, or a
    /// restarted signer could be replayed into nonce reuse.
    guard: NonceGuard,
    recovery: Option<PendingRecovery>,
    // Aggregator state (node 0 only).
    pending: Option<PendingSeq>,
    next_seq: u64,
    /// Completed signatures, by sequence number ("blocks on disk" —
    /// they survive crashes).
    pub completed: BTreeMap<u64, Signature>,
}

/// The committee's public state at `epoch`, recomputed from scratch —
/// commitments are public information any party can rebuild (or, in a
/// real deployment, refetch).
fn committee_at(seed: u64, params: ThresholdParams, epoch: u64) -> Committee {
    let (mut committee, _) = run_dkg_quiet(seed, params).expect("params validated at build");
    for _ in 0..epoch {
        refresh_committee(&mut committee);
    }
    committee
}

impl GovNode {
    /// Builds the full committee. Shares come from the (in-process,
    /// trusted-setup) DKG; node `i` keeps share `i + 1`.
    pub fn build(cfg: &GovConfig) -> Vec<GovNode> {
        let (committee, shares) =
            run_dkg_quiet(cfg.seed, cfg.params).expect("valid threshold params");
        shares
            .into_iter()
            .map(|share| GovNode {
                cfg: cfg.clone(),
                committee: committee.clone(),
                share: Some(share),
                guard: NonceGuard::new(),
                recovery: None,
                pending: None,
                next_seq: 0,
                completed: BTreeMap::new(),
            })
            .collect()
    }

    /// The epoch of this node's live share, or `None` if the share was
    /// lost to a crash and not yet recovered.
    pub fn share_epoch(&self) -> Option<u64> {
        self.share.as_ref().map(|s| s.epoch)
    }

    /// The epoch a node believes current at simulated time `now`.
    fn epoch_at(&self, now: u64) -> u64 {
        match self.cfg.refresh_at {
            Some(t) if now >= t => 1,
            _ => 0,
        }
    }

    fn is_aggregator(&self, ctx: &Ctx<'_, GovMsg>) -> bool {
        ctx.id == 0
    }

    /// Starts (or restarts, after `attempt` bump) the current sequence.
    fn kick_seq(&mut self, ctx: &mut Ctx<'_, GovMsg>) {
        let seq = self.next_seq;
        let Some(&digest) = self.cfg.digests.get(seq as usize) else {
            self.pending = None;
            return;
        };
        let (attempt, blacklist) = match self.pending.take() {
            Some(p) if p.seq == seq => (p.attempt + 1, p.blacklist),
            _ => (0, BTreeSet::new()),
        };
        let epoch = self.epoch_at(ctx.now);
        self.pending = Some(PendingSeq {
            seq,
            attempt,
            epoch,
            digest,
            nonces: BTreeMap::new(),
            session: None,
            blacklist,
        });
        let req = GovMsg::NonceReq {
            seq,
            attempt,
            epoch,
            digest,
        };
        for to in 1..ctx.n_nodes {
            ctx.send(to, req.clone());
        }
        // The aggregator is a committee member too: answer locally.
        if let Some(nonce) = self.member_nonce(seq, attempt, epoch, &digest) {
            self.on_nonce(ctx, nonce);
        }
    }

    /// Member half of `NonceReq`: derive and return the commitment, or
    /// stay silent when the share is missing or from another epoch.
    fn member_nonce(
        &mut self,
        seq: u64,
        attempt: u32,
        epoch: u64,
        digest: &[u8; 32],
    ) -> Option<GovMsg> {
        let share = self.share.as_ref()?;
        if share.epoch != epoch {
            return None;
        }
        Some(GovMsg::Nonce {
            seq,
            attempt,
            epoch,
            signer: share.index,
            commit: nonce_commitment(share, digest, attempt),
        })
    }

    /// Member half of `SignReq`: compute the partial (corrupting it when
    /// configured byzantine).
    fn member_partial(
        &mut self,
        ctx: &mut Ctx<'_, GovMsg>,
        seq: u64,
        attempt: u32,
        epoch: u64,
        digest: &[u8; 32],
        nonces: &[(u64, NonceCommitment)],
    ) -> Option<GovMsg> {
        let share = self.share.as_ref()?;
        if share.epoch != epoch {
            return None;
        }
        let mut partial = partial_sign(
            share,
            &self.committee,
            digest,
            attempt,
            nonces,
            &mut self.guard,
        )
        .ok()?;
        if self.cfg.byzantine.contains(&ctx.id) {
            let q = &pds2_crypto::schnorr::Group::standard().q;
            partial.s = partial.s.add_mod(&BigUint::one(), q);
        }
        Some(GovMsg::Partial { seq, partial })
    }

    /// Aggregator ingest of one nonce commitment.
    fn on_nonce(&mut self, ctx: &mut Ctx<'_, GovMsg>, msg: GovMsg) {
        let GovMsg::Nonce {
            seq,
            attempt,
            epoch,
            signer,
            commit,
        } = msg
        else {
            return;
        };
        let t = self.cfg.params.t;
        let Some(p) = self.pending.as_mut() else {
            return;
        };
        if (seq, attempt, epoch) != (p.seq, p.attempt, p.epoch)
            || p.session.is_some()
            || p.blacklist.contains(&signer)
        {
            return;
        }
        p.nonces.insert(signer, commit);
        if p.nonces.len() < t {
            return;
        }
        // Quorum reached: fix the signer set as the t smallest indices
        // seen (deterministic regardless of arrival order beyond "who
        // answered before the t-th distinct signer").
        let set: Vec<(u64, NonceCommitment)> = p
            .nonces
            .iter()
            .take(t)
            .map(|(i, r)| (*i, r.clone()))
            .collect();
        let session = match SigningSession::new(&self.committee, &p.digest, p.attempt, set.clone())
        {
            Ok(s) => s,
            Err(_) => return,
        };
        p.session = Some(session);
        let req = GovMsg::SignReq {
            seq: p.seq,
            attempt: p.attempt,
            epoch: p.epoch,
            digest: p.digest,
            nonces: set.clone(),
        };
        let (seq, attempt, epoch, digest) = (p.seq, p.attempt, p.epoch, p.digest);
        for (i, _) in &set {
            let node = (*i - 1) as usize;
            if node != ctx.id {
                ctx.send(node, req.clone());
            }
        }
        if set.iter().any(|(i, _)| (*i - 1) as usize == ctx.id) {
            if let Some(part) = self.member_partial(ctx, seq, attempt, epoch, &digest, &set) {
                self.on_partial(ctx, part);
            }
        }
    }

    /// Aggregator ingest of one partial signature.
    fn on_partial(&mut self, ctx: &mut Ctx<'_, GovMsg>, msg: GovMsg) {
        let GovMsg::Partial { seq, partial } = msg else {
            return;
        };
        let Some(p) = self.pending.as_mut() else {
            return;
        };
        if seq != p.seq || partial.attempt != p.attempt {
            return;
        }
        let Some(session) = p.session.as_mut() else {
            return;
        };
        match session.offer(&self.committee, &partial) {
            Ok(()) => {}
            Err(GovError::BadPartial(i)) => {
                // Byzantine: exclude the liar and restart the attempt
                // with fresh nonces.
                p.blacklist.insert(i);
                self.kick_seq(ctx);
                return;
            }
            Err(_) => return,
        }
        if session.ready() {
            if let Ok(sig) = session.aggregate(&self.committee) {
                self.completed.insert(p.seq, sig);
                self.pending = None;
                self.next_seq += 1;
                self.kick_seq(ctx);
            }
        }
    }

    /// Starts (or retries) share recovery after a crash.
    fn kick_recovery(&mut self, ctx: &mut Ctx<'_, GovMsg>) {
        if self.share.is_some() {
            self.recovery = None;
            return;
        }
        let epoch = self.epoch_at(ctx.now);
        self.recovery = Some(PendingRecovery {
            epoch,
            offers: BTreeSet::new(),
            helpers: Vec::new(),
            contributions: BTreeMap::new(),
        });
        for to in 0..ctx.n_nodes {
            if to != ctx.id {
                ctx.send(to, GovMsg::RecoverReq { epoch });
            }
        }
        ctx.set_timer(RECOVER_RETRY_US, TAG_RECOVER);
    }

    fn on_recover_offer(&mut self, ctx: &mut Ctx<'_, GovMsg>, epoch: u64, signer: u64) {
        let t = self.cfg.params.t;
        let Some(rec) = self.recovery.as_mut() else {
            return;
        };
        if epoch != rec.epoch || !rec.helpers.is_empty() {
            return;
        }
        rec.offers.insert(signer);
        if rec.offers.len() < t {
            return;
        }
        rec.helpers = rec.offers.iter().take(t).copied().collect();
        let set = GovMsg::RecoverSet {
            epoch,
            helpers: rec.helpers.clone(),
        };
        for &h in &rec.helpers.clone() {
            ctx.send((h - 1) as usize, set.clone());
        }
    }

    fn on_recover_help(
        &mut self,
        ctx: &mut Ctx<'_, GovMsg>,
        epoch: u64,
        helpers: Vec<u64>,
        from: NodeId,
        contribution: BigUint,
    ) {
        let lost = ctx.id as u64 + 1;
        let Some(rec) = self.recovery.as_mut() else {
            return;
        };
        if epoch != rec.epoch || helpers != rec.helpers {
            return;
        }
        // Only the chosen helpers may contribute: an equivocating node
        // echoing the helper set could otherwise inject a junk
        // contribution and force the commitment check to abort-and-retry.
        if !rec.helpers.contains(&(from as u64 + 1)) {
            return;
        }
        rec.contributions.insert(from as u64 + 1, contribution);
        if rec.contributions.len() < rec.helpers.len() {
            return;
        }
        let contributions: Vec<BigUint> = rec.contributions.values().cloned().collect();
        // The commitment check runs against the epoch the helpers signed
        // up for; on a mismatch (refresh race) we just retry later.
        let committee = committee_at(self.cfg.seed, self.cfg.params, epoch);
        match recover_share(&committee, &contributions, lost) {
            Ok(share) => {
                self.share = Some(share);
                self.recovery = None;
                self.committee = committee;
            }
            Err(_) => {
                self.recovery = None; // retry timer will re-kick
            }
        }
    }
}

impl Node for GovNode {
    type Msg = GovMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, GovMsg>) {
        if let Some(at) = self.cfg.refresh_at {
            ctx.set_timer(at.saturating_sub(ctx.now), TAG_REFRESH);
        }
        if self.is_aggregator(ctx) {
            self.kick_seq(ctx);
            ctx.set_timer(RETRY_US, TAG_RETRY);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, GovMsg>, from: NodeId, msg: GovMsg) {
        match msg {
            GovMsg::NonceReq {
                seq,
                attempt,
                epoch,
                digest,
            } => {
                if let Some(reply) = self.member_nonce(seq, attempt, epoch, &digest) {
                    ctx.send(from, reply);
                }
            }
            GovMsg::Nonce { .. } => {
                if self.is_aggregator(ctx) {
                    self.on_nonce(ctx, msg);
                }
            }
            GovMsg::SignReq {
                seq,
                attempt,
                epoch,
                digest,
                nonces,
            } => {
                if let Some(reply) = self.member_partial(ctx, seq, attempt, epoch, &digest, &nonces)
                {
                    ctx.send(from, reply);
                }
            }
            GovMsg::Partial { .. } => {
                if self.is_aggregator(ctx) {
                    self.on_partial(ctx, msg);
                }
            }
            GovMsg::RecoverReq { epoch } => {
                if let Some(share) = self.share.as_ref() {
                    if share.epoch == epoch {
                        ctx.send(
                            from,
                            GovMsg::RecoverOffer {
                                epoch,
                                signer: share.index,
                            },
                        );
                    }
                }
            }
            GovMsg::RecoverOffer { epoch, signer } => {
                self.on_recover_offer(ctx, epoch, signer);
            }
            GovMsg::RecoverSet { epoch, helpers } => {
                let lost = from as u64 + 1;
                if let Some(share) = self.share.as_ref() {
                    if share.epoch == epoch {
                        if let Ok(contribution) = recovery_contribution(share, &helpers, lost) {
                            ctx.send(
                                from,
                                GovMsg::RecoverHelp {
                                    epoch,
                                    helpers,
                                    contribution,
                                },
                            );
                        }
                    }
                }
            }
            GovMsg::RecoverHelp {
                epoch,
                helpers,
                contribution,
            } => {
                self.on_recover_help(ctx, epoch, helpers, from, contribution);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GovMsg>, tag: u64) {
        match tag {
            TAG_RETRY => {
                // Re-issue the in-flight sequence with a fresh attempt if
                // it has not completed (partition stall, refresh race,
                // lost messages — all heal here).
                if self.pending.is_some() {
                    self.kick_seq(ctx);
                }
                if self.next_seq < self.cfg.digests.len() as u64 {
                    ctx.set_timer(RETRY_US, TAG_RETRY);
                }
            }
            TAG_REFRESH => {
                if let Some(share) = self.share.as_mut() {
                    if share.epoch == 0 {
                        refresh_share(self.cfg.params, self.cfg.seed, share);
                    }
                }
                if self.committee.epoch == 0 {
                    refresh_committee(&mut self.committee);
                }
                if self.is_aggregator(ctx) && self.pending.is_some() {
                    self.kick_seq(ctx); // restart under the new epoch
                }
            }
            TAG_RECOVER => {
                if self.share.is_none() && self.recovery.is_none() {
                    self.kick_recovery(ctx);
                } else if self.share.is_none() {
                    ctx.set_timer(RECOVER_RETRY_US, TAG_RECOVER);
                }
            }
            _ => {}
        }
    }

    fn msg_size(msg: &GovMsg) -> u64 {
        match msg {
            GovMsg::NonceReq { .. } => 52,
            GovMsg::Nonce { .. } => 92,
            GovMsg::SignReq { nonces, .. } => 52 + 72 * nonces.len() as u64,
            GovMsg::Partial { .. } => 92,
            GovMsg::RecoverReq { .. } => 8,
            GovMsg::RecoverOffer { .. } => 16,
            GovMsg::RecoverSet { helpers, .. } => 8 + 8 * helpers.len() as u64,
            GovMsg::RecoverHelp { helpers, .. } => 40 + 8 * helpers.len() as u64,
        }
    }

    fn msg_kind(msg: &GovMsg) -> u8 {
        match msg {
            GovMsg::NonceReq { .. } => 0,
            GovMsg::Nonce { .. } => 1,
            GovMsg::SignReq { .. } => 2,
            GovMsg::Partial { .. } => 3,
            GovMsg::RecoverReq { .. } => 4,
            GovMsg::RecoverOffer { .. } => 5,
            GovMsg::RecoverSet { .. } => 6,
            GovMsg::RecoverHelp { .. } => 7,
        }
    }

    fn on_crash(&mut self) {
        // Process restart: the share (secret, held in memory / an HSM in
        // a real deployment) and all in-flight protocol state are gone;
        // config, completed signatures and the nonce-reuse guard
        // ("disk") survive — wiping the guard would let a replayed
        // SignReq walk a recovered signer into nonce reuse.
        self.share = None;
        self.recovery = None;
        self.pending = None;
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, GovMsg>) {
        // Re-arm the refresh timer if the boundary is still ahead, then
        // start break-glass recovery of the lost share.
        if let Some(at) = self.cfg.refresh_at {
            if ctx.now < at {
                ctx.set_timer(at - ctx.now, TAG_REFRESH);
            } else if self.committee.epoch == 0 {
                refresh_committee(&mut self.committee);
            }
        }
        self.kick_recovery(ctx);
        if self.is_aggregator(ctx) {
            self.kick_seq(ctx);
            ctx.set_timer(RETRY_US, TAG_RETRY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_net::fault::FaultPlan;
    use pds2_net::link::LinkModel;
    use pds2_net::sim::Simulator;

    fn digests(n: usize) -> Vec<[u8; 32]> {
        (0..n as u8)
            .map(|i| {
                let mut d = [0u8; 32];
                d[0] = i + 1;
                d
            })
            .collect()
    }

    fn cfg(t: usize, n: usize, n_digests: usize) -> GovConfig {
        GovConfig {
            seed: 0x90F,
            params: ThresholdParams::new(t, n).unwrap(),
            refresh_at: None,
            digests: digests(n_digests),
            byzantine: BTreeSet::new(),
        }
    }

    fn link() -> LinkModel {
        LinkModel {
            base_latency_us: 1_000,
            jitter_us: 300,
            bandwidth_bytes_per_sec: 1_250_000,
            ..LinkModel::instant()
        }
    }

    fn run(cfg: &GovConfig, sim_seed: u64, until: u64) -> Simulator<GovNode> {
        let mut sim = Simulator::new(GovNode::build(cfg), link(), sim_seed);
        sim.run_until(until);
        sim
    }

    fn assert_all_signed(sim: &Simulator<GovNode>, cfg: &GovConfig) {
        let agg = sim.node(0);
        assert_eq!(agg.completed.len(), cfg.digests.len());
        let committee = committee_at(cfg.seed, cfg.params, 0);
        for (seq, sig) in &agg.completed {
            assert!(
                committee
                    .group_public()
                    .verify(&cfg.digests[*seq as usize], sig),
                "seq {seq}"
            );
        }
    }

    #[test]
    fn happy_path_signs_every_digest() {
        let cfg = cfg(3, 4, 3);
        let sim = run(&cfg, 7, 2_000_000);
        assert_all_signed(&sim, &cfg);
    }

    #[test]
    fn byzantine_member_is_excluded_and_signing_completes() {
        let mut cfg = cfg(3, 5, 3);
        cfg.byzantine.insert(2); // validator index 3 lies in round 2
        let sim = run(&cfg, 7, 4_000_000);
        assert_all_signed(&sim, &cfg);
        // The liar ended up blacklisted out of at least one quorum.
        assert!(sim.node(0).completed.len() == 3);
    }

    #[test]
    fn below_threshold_committee_never_signs() {
        // n = 4, t = 3, but two members crash at t=0 and never recover:
        // only t − 1 = 2 shares remain reachable.
        let cfg = cfg(3, 4, 2);
        let plan = FaultPlan::new(1).crash(2, 0, None).crash(3, 0, None);
        let mut sim = Simulator::new(GovNode::build(&cfg), link(), 7);
        sim.install_fault_plan(plan);
        sim.run_until(3_000_000);
        assert!(sim.node(0).completed.is_empty(), "t-1 must not sign");
    }

    #[test]
    fn refresh_mid_run_keeps_signing_and_group_key() {
        let mut cfg = cfg(3, 4, 4);
        cfg.refresh_at = Some(300_000);
        let sim = run(&cfg, 11, 5_000_000);
        assert_all_signed(&sim, &cfg); // old-epoch key still verifies all
        for i in 0..4 {
            let node = sim.node(i);
            assert_eq!(node.share.as_ref().unwrap().epoch, 1, "node {i}");
            assert_eq!(node.committee.epoch, 1);
        }
    }
}
