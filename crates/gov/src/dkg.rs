//! Deterministic distributed key generation, proactive share refresh and
//! break-glass share recovery for the validator committee.
//!
//! The DKG is Pedersen-style with Feldman commitments, run over the same
//! Schnorr group block signatures already use (DESIGN.md §5d): every
//! validator `i ∈ 1..=n` deals a degree-`t−1` polynomial `f_i` over `Z_q`,
//! publishes commitments `A_{i,k} = g^{a_{i,k}}`, and sends `f_i(j)` to
//! validator `j`. Each dealt evaluation is checked against the dealer's
//! commitments (`g^{f_i(j)} = Π_k A_{i,k}^{j^k}`), shares are summed into
//! `s_j = Σ_i f_i(j)`, and the group public key is `Y = Π_i A_{i,0}` —
//! a commitment to the group secret `x = Σ_i f_i(0)` that **no single
//! party ever holds**.
//!
//! ## Determinism
//!
//! Polynomial coefficients are derived from a public `(seed, dealer,
//! coefficient)` hash instead of per-dealer CSPRNGs, so every replica —
//! and every rerun at any `PDS2_THREADS` value — computes bit-identical
//! committees from the same seed. A production deployment would replace
//! the coefficient hash with local randomness and an actual broadcast round;
//! nothing else changes, which is exactly the trade the rest of the
//! repo makes (deterministic nonces, seeded fault plans).
//!
//! ## Proactive refresh
//!
//! [`refresh_delta`] derives, per epoch, a zero-sharing: every dealer
//! contributes a polynomial with `z_i(0) = 0`, so adding `Σ_i z_i(j)` to
//! share `s_j` re-randomizes every share while the group secret — and
//! therefore the group public key — is unchanged. Old-epoch shares become
//! useless to an attacker who compromised fewer than `t` validators
//! before the refresh.
//!
//! ## Break-glass recovery
//!
//! A validator that crashed and lost its share interpolates it back from
//! any `t` helpers: helper `i` sends `λ_i^S(m) · s_i` (the Lagrange
//! weight evaluated at the *lost index* `m`, not at zero), and the sum of
//! `t` contributions is `f(m) = s_m`. The recovered share is checked
//! against the public commitment `Y_m = g^{s_m}` before it is trusted.

use crate::GovError;
use pds2_crypto::schnorr::{Group, PublicKey};
use pds2_crypto::sha256::Sha256;
use pds2_crypto::BigUint;

/// Domain tag for DKG polynomial coefficients.
const DOMAIN_DKG: &[u8] = b"pds2-gov-dkg-v1";
/// Domain tag for refresh (zero-sharing) polynomial coefficients.
const DOMAIN_REFRESH: &[u8] = b"pds2-gov-refresh-v1";

/// The `(t, n)` committee shape: `t` of `n` validators must cooperate to
/// sign; up to `n − t` may crash without halting the chain; fewer than
/// `t` learn nothing about the group secret.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThresholdParams {
    /// Signing threshold (`1 <= t <= n`).
    pub t: usize,
    /// Committee size.
    pub n: usize,
}

impl ThresholdParams {
    /// Validated constructor.
    pub fn new(t: usize, n: usize) -> Result<ThresholdParams, GovError> {
        if t == 0 || t > n {
            return Err(GovError::BadThreshold);
        }
        Ok(ThresholdParams { t, n })
    }

    /// The default committee shape: a strict majority (`t = ⌊n/2⌋ + 1`),
    /// so two disjoint quorums cannot both sign (quorum intersection) and
    /// up to `⌈n/2⌉ − 1` validators may crash.
    pub fn majority(n: usize) -> ThresholdParams {
        ThresholdParams { t: n / 2 + 1, n }
    }
}

/// One validator's Shamir share of the group secret.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidatorShare {
    /// Evaluation point `x = index` (`1..=n`; 0 is the secret itself and
    /// is never dealt).
    pub index: u64,
    /// Refresh epoch this share belongs to (starts at 0; partial
    /// signatures from different epochs do not combine).
    pub epoch: u64,
    /// The share scalar `f(index) ∈ Z_q`.
    pub scalar: BigUint,
}

/// The public outcome of a DKG: everything a verifier — or an aggregator
/// rejecting byzantine partials — needs. Contains no secrets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Committee {
    /// Committee shape.
    pub params: ThresholdParams,
    /// Current refresh epoch.
    pub epoch: u64,
    /// DKG seed (public in this deterministic reproduction; see module
    /// docs). Kept so refresh deltas and per-epoch commitments can be
    /// recomputed by any party, including one recovering from a crash.
    pub seed: u64,
    /// Group public key `Y = g^x`; aggregate signatures verify against
    /// this single key through the ordinary [`PublicKey::verify`].
    group_public: PublicKey,
    /// Per-validator share commitments `Y_j = g^{s_j}` for the current
    /// epoch, indexed by `index − 1`.
    commitments: Vec<BigUint>,
}

impl Committee {
    /// The group public key aggregate signatures verify against.
    pub fn group_public(&self) -> &PublicKey {
        &self.group_public
    }

    /// The share commitment `g^{s_j}` for validator `index` (1-based).
    pub fn commitment(&self, index: u64) -> Option<&BigUint> {
        self.commitments.get(index.checked_sub(1)? as usize)
    }
}

/// Derives one polynomial coefficient from the public transcript.
///
/// The 256-bit hash is reduced mod the 255-bit `q`; the resulting bias
/// is < 2^-250 per draw — irrelevant even before noting that this
/// reproduction's seeds are public anyway.
fn coeff_scalar(domain: &[u8], seed: u64, epoch: u64, dealer: u64, k: u64) -> BigUint {
    let group = Group::standard();
    let mut h = Sha256::new();
    h.update(&(domain.len() as u64).to_le_bytes());
    h.update(domain);
    h.update(&seed.to_le_bytes());
    h.update(&epoch.to_le_bytes());
    h.update(&dealer.to_le_bytes());
    h.update(&k.to_le_bytes());
    BigUint::from_bytes_be(h.finalize().as_bytes()).rem(&group.q)
}

/// Horner evaluation of `Σ_k coeffs[k]·x^k mod q` at a small point.
fn eval_poly(coeffs: &[BigUint], x: u64, q: &BigUint) -> BigUint {
    let xq = BigUint::from_u64(x);
    let mut acc = BigUint::zero();
    for c in coeffs.iter().rev() {
        acc = acc.mul_mod(&xq, q).add_mod(c, q);
    }
    acc
}

/// Runs the (deterministic, seedable) DKG and returns the public
/// committee plus every validator's share.
///
/// Emits the `gov/dkg` span and bumps `gov.dkg_rounds`. Callers that
/// rebuild committees from caches (the chain's genesis factory does, on
/// every fork-choice candidate) should use [`run_dkg_quiet`] so trace
/// digests do not depend on cache warmth.
pub fn run_dkg(
    seed: u64,
    params: ThresholdParams,
) -> Result<(Committee, Vec<ValidatorShare>), GovError> {
    let span = pds2_obs::span("gov", "dkg", pds2_obs::Stamp::None);
    let out = run_dkg_quiet(seed, params);
    pds2_obs::counter!("gov.dkg_rounds").inc();
    if pds2_obs::enabled() {
        span.finish(
            pds2_obs::Stamp::None,
            vec![
                ("t", pds2_obs::Value::from(params.t)),
                ("n", pds2_obs::Value::from(params.n)),
                ("ok", pds2_obs::Value::from(out.is_ok() as u64)),
            ],
        );
    }
    out
}

/// [`run_dkg`] without observability side effects.
pub fn run_dkg_quiet(
    seed: u64,
    params: ThresholdParams,
) -> Result<(Committee, Vec<ValidatorShare>), GovError> {
    let ThresholdParams { t, n } = ThresholdParams::new(params.t, params.n)?;
    let group = Group::standard();
    let q = &group.q;

    // Each dealer's polynomial and Feldman commitments A_{i,k} = g^{a_{i,k}}.
    let polys: Vec<Vec<BigUint>> = (1..=n as u64)
        .map(|dealer| {
            (0..t as u64)
                .map(|k| coeff_scalar(DOMAIN_DKG, seed, 0, dealer, k))
                .collect()
        })
        .collect();
    let commitments: Vec<Vec<BigUint>> = polys
        .iter()
        .map(|coeffs| coeffs.iter().map(|a| group.pow_g(a)).collect())
        .collect();

    // Deal, verify against the dealer's commitments, and sum.
    let mut shares = Vec::with_capacity(n);
    for j in 1..=n as u64 {
        let mut sum = BigUint::zero();
        for (dealer_idx, coeffs) in polys.iter().enumerate() {
            let dealt = eval_poly(coeffs, j, q);
            // Feldman check: g^{f_i(j)} must equal Π_k A_{i,k}^{j^k}.
            // A malformed deal (impossible here, since we derived it, but
            // the check is the protocol) would be rejected.
            let lhs = group.pow_g(&dealt);
            let mut rhs = BigUint::one();
            let mut x_pow = BigUint::one(); // j^k mod q
            for a_ik in &commitments[dealer_idx] {
                rhs = rhs.mul_mod(&a_ik.modpow(&x_pow, &group.p), &group.p);
                x_pow = x_pow.mul_mod(&BigUint::from_u64(j), q);
            }
            if lhs != rhs {
                return Err(GovError::CommitmentMismatch);
            }
            sum = sum.add_mod(&dealt, q);
        }
        shares.push(ValidatorShare {
            index: j,
            epoch: 0,
            scalar: sum,
        });
    }

    // Group public key: product of the constant-term commitments.
    let mut y = BigUint::one();
    for c in &commitments {
        y = y.mul_mod(&c[0], &group.p);
    }
    let share_commitments: Vec<BigUint> = shares.iter().map(|s| group.pow_g(&s.scalar)).collect();

    Ok((
        Committee {
            params,
            epoch: 0,
            seed,
            group_public: PublicKey::from_element(y),
            commitments: share_commitments,
        },
        shares,
    ))
}

/// The zero-sharing delta validator `index` adds to its share when
/// moving from `epoch` to `epoch + 1`: `Σ_i z_i(index)` where every
/// dealer polynomial has `z_i(0) = 0` (constant term omitted, powers
/// start at `x^1`).
///
/// Derivable by every committee member independently (module docs
/// explain the deterministic stand-in), so refresh needs no extra
/// message round in the simulation.
pub fn refresh_delta(seed: u64, params: ThresholdParams, epoch: u64, index: u64) -> BigUint {
    let group = Group::standard();
    let q = &group.q;
    let mut delta = BigUint::zero();
    for dealer in 1..=params.n as u64 {
        // Coefficients for x^1..x^{t-1}; f(0) = 0 by construction.
        let coeffs: Vec<BigUint> = (1..params.t as u64)
            .map(|k| coeff_scalar(DOMAIN_REFRESH, seed, epoch, dealer, k))
            .collect();
        let xq = BigUint::from_u64(index);
        // Horner, then one extra multiply by x (powers start at 1).
        let val = eval_poly(&coeffs, index, q).mul_mod(&xq, q);
        delta = delta.add_mod(&val, q);
    }
    delta
}

/// Advances `share` by one refresh epoch in place.
///
/// Bumps `gov.share_refreshes`. With `t = 1` the zero-polynomials are
/// identically zero (a degree-0 polynomial with `f(0) = 0` is 0), so the
/// share is unchanged — replication has nothing to re-randomize.
pub fn refresh_share(params: ThresholdParams, seed: u64, share: &mut ValidatorShare) {
    let group = Group::standard();
    let delta = refresh_delta(seed, params, share.epoch, share.index);
    share.scalar = share.scalar.add_mod(&delta, &group.q);
    share.epoch += 1;
    pds2_obs::counter!("gov.share_refreshes").inc();
}

/// Advances the public committee state by one refresh epoch: every share
/// commitment becomes `Y_j · g^{Δ_j}`; the group public key is asserted
/// unchanged (it is, by construction — the deltas share zero).
pub fn refresh_committee(committee: &mut Committee) {
    let group = Group::standard();
    for (i, c) in committee.commitments.iter_mut().enumerate() {
        let delta = refresh_delta(
            committee.seed,
            committee.params,
            committee.epoch,
            i as u64 + 1,
        );
        *c = c.mul_mod(&group.pow_g(&delta), &group.p);
    }
    committee.epoch += 1;
}

/// The Lagrange weight `λ_i^S(x)` = `Π_{j∈S, j≠i} (x − x_j)/(x_i − x_j)
/// mod q` for interpolation at an arbitrary point `x` (0 for signing,
/// the lost index for recovery). `signers` must contain `i` and hold
/// distinct nonzero indices — both are validated, not assumed.
pub fn lagrange_at(signers: &[u64], i: u64, x: u64, q: &BigUint) -> Result<BigUint, GovError> {
    // Distinctness of the WHOLE slice up front — a duplicated `i` itself
    // would otherwise slip through a per-`j` check and silently produce
    // a wrong weight (callers like `recovery_contribution` take a
    // caller-supplied helper set).
    let mut seen = std::collections::BTreeSet::new();
    for &j in signers {
        if !seen.insert(j) {
            return Err(GovError::DuplicateSigner(j));
        }
    }
    if !signers.contains(&i) {
        return Err(GovError::UnknownSigner(i));
    }
    let as_fq = |v: u64| BigUint::from_u64(v).rem(q);
    let mut num = BigUint::one();
    let mut den = BigUint::one();
    for &j in signers {
        if j == i {
            continue;
        }
        num = num.mul_mod(&as_fq(x).sub_mod(&as_fq(j), q), q);
        den = den.mul_mod(&as_fq(i).sub_mod(&as_fq(j), q), q);
    }
    let den_inv = den.modinv(q).ok_or(GovError::DuplicateSigner(i))?;
    Ok(num.mul_mod(&den_inv, q))
}

/// Helper `i`'s contribution to recovering the share of `lost`:
/// `λ_i^S(lost) · s_i mod q`. `helper_set` is the full set of `t`
/// helper indices participating in this recovery.
///
/// A production deployment would blind these contributions pairwise (the
/// sum would be unchanged); the simulation sends them in the clear, as
/// it does every other secret, because nodes are processes in one
/// address space.
pub fn recovery_contribution(
    share: &ValidatorShare,
    helper_set: &[u64],
    lost: u64,
) -> Result<BigUint, GovError> {
    let group = Group::standard();
    let lambda = lagrange_at(helper_set, share.index, lost, &group.q)?;
    Ok(lambda.mul_mod(&share.scalar, &group.q))
}

/// Sums `t` helper contributions into the lost share and verifies it
/// against the public commitment `Y_lost` before trusting it. Bumps
/// `gov.share_recoveries` on success.
pub fn recover_share(
    committee: &Committee,
    contributions: &[BigUint],
    lost: u64,
) -> Result<ValidatorShare, GovError> {
    if contributions.len() < committee.params.t {
        return Err(GovError::NotEnoughShares);
    }
    let group = Group::standard();
    let mut scalar = BigUint::zero();
    for c in contributions {
        scalar = scalar.add_mod(c, &group.q);
    }
    let expected = committee
        .commitment(lost)
        .ok_or(GovError::UnknownSigner(lost))?;
    if &group.pow_g(&scalar) != expected {
        return Err(GovError::CommitmentMismatch);
    }
    pds2_obs::counter!("gov.share_recoveries").inc();
    Ok(ValidatorShare {
        index: lost,
        epoch: committee.epoch,
        scalar,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dkg(t: usize, n: usize) -> (Committee, Vec<ValidatorShare>) {
        run_dkg_quiet(0xD16, ThresholdParams::new(t, n).unwrap()).unwrap()
    }

    #[test]
    fn dkg_is_deterministic() {
        let (c1, s1) = dkg(3, 5);
        let (c2, s2) = dkg(3, 5);
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);
        // Different seed, different key.
        let (c3, _) = run_dkg_quiet(0xBEEF, ThresholdParams::new(3, 5).unwrap()).unwrap();
        assert_ne!(c1.group_public(), c3.group_public());
    }

    #[test]
    fn shares_interpolate_to_group_secret() {
        let group = Group::standard();
        let (committee, shares) = dkg(3, 5);
        // Reconstruct x from any t shares and check g^x == Y.
        for subset in [[0usize, 1, 2], [2, 3, 4], [0, 2, 4]] {
            let signers: Vec<u64> = subset.iter().map(|&i| shares[i].index).collect();
            let mut x = BigUint::zero();
            for &i in &subset {
                let lambda = lagrange_at(&signers, shares[i].index, 0, &group.q).unwrap();
                x = x.add_mod(&lambda.mul_mod(&shares[i].scalar, &group.q), &group.q);
            }
            assert_eq!(
                &group.pow_g(&x),
                committee.group_public().element(),
                "{subset:?}"
            );
        }
    }

    #[test]
    fn commitments_match_shares() {
        let group = Group::standard();
        let (committee, shares) = dkg(2, 4);
        for s in &shares {
            assert_eq!(
                committee.commitment(s.index).unwrap(),
                &group.pow_g(&s.scalar)
            );
        }
        assert!(committee.commitment(0).is_none());
        assert!(committee.commitment(5).is_none());
    }

    #[test]
    fn refresh_preserves_group_key_and_changes_shares() {
        let (mut committee, mut shares) = dkg(3, 5);
        let before = committee.group_public().clone();
        let old = shares.clone();
        for s in shares.iter_mut() {
            refresh_share(committee.params, committee.seed, s);
        }
        refresh_committee(&mut committee);
        assert_eq!(committee.group_public(), &before, "group key must survive");
        assert_eq!(committee.epoch, 1);
        let group = Group::standard();
        for (new, old) in shares.iter().zip(&old) {
            assert_ne!(new.scalar, old.scalar, "share {} unchanged", new.index);
            assert_eq!(new.epoch, 1);
            // Refreshed commitments still match refreshed shares.
            assert_eq!(
                committee.commitment(new.index).unwrap(),
                &group.pow_g(&new.scalar)
            );
        }
    }

    #[test]
    fn recovery_restores_exact_share() {
        let (committee, shares) = dkg(3, 5);
        let lost = 2u64;
        let helper_set = vec![1u64, 4, 5];
        let contributions: Vec<BigUint> = helper_set
            .iter()
            .map(|&h| recovery_contribution(&shares[(h - 1) as usize], &helper_set, lost).unwrap())
            .collect();
        let recovered = recover_share(&committee, &contributions, lost).unwrap();
        assert_eq!(recovered, shares[(lost - 1) as usize]);
    }

    #[test]
    fn recovery_rejects_corrupt_contribution() {
        let (committee, shares) = dkg(3, 5);
        let helper_set = vec![1u64, 3, 5];
        let mut contributions: Vec<BigUint> = helper_set
            .iter()
            .map(|&h| recovery_contribution(&shares[(h - 1) as usize], &helper_set, 2).unwrap())
            .collect();
        contributions[1] = contributions[1].add_mod(&BigUint::one(), &Group::standard().q);
        assert_eq!(
            recover_share(&committee, &contributions, 2).unwrap_err(),
            GovError::CommitmentMismatch
        );
        assert_eq!(
            recover_share(&committee, &contributions[..2], 2).unwrap_err(),
            GovError::NotEnoughShares
        );
    }

    #[test]
    fn bad_params_rejected() {
        assert_eq!(
            ThresholdParams::new(0, 3).unwrap_err(),
            GovError::BadThreshold
        );
        assert_eq!(
            ThresholdParams::new(4, 3).unwrap_err(),
            GovError::BadThreshold
        );
        assert_eq!(ThresholdParams::majority(4), ThresholdParams { t: 3, n: 4 });
        assert_eq!(ThresholdParams::majority(1), ThresholdParams { t: 1, n: 1 });
    }

    #[test]
    fn lagrange_rejects_bad_sets() {
        let q = &Group::standard().q;
        assert!(lagrange_at(&[1, 2, 3], 4, 0, q).is_err());
        assert!(lagrange_at(&[1, 2, 2], 1, 0, q).is_err());
        // A duplicate of `i` itself must be caught too, not just
        // duplicates among the other signers.
        assert_eq!(
            lagrange_at(&[1, 1, 2], 1, 0, q).unwrap_err(),
            GovError::DuplicateSigner(1)
        );
    }
}
