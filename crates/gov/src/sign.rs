//! Two-round t-of-n threshold Schnorr signing.
//!
//! Round 1 — every quorum member `i` derives a deterministic nonce
//! `k_i = HMAC(s_i, attempt ‖ m) mod q` (RFC 6979 in spirit, like
//! single-key signing) and publishes the commitment `R_i = g^{k_i}`.
//!
//! Round 2 — once the signer set `S` (|S| = t) and its commitments are
//! fixed, everyone computes `R = Π_{i∈S} R_i`, the ordinary Schnorr
//! challenge `e = H(R ‖ Y ‖ m)`, the Lagrange weight `λ_i = λ_i^S(0)`,
//! and the partial response `s_i^part = k_i + e·λ_i·s_i mod q`.
//!
//! The aggregate `s = Σ_{i∈S} s_i^part` satisfies `s = k + e·x` with
//! `k = Σ k_i` and `x = Σ λ_i s_i` the interpolated group secret — so
//! `(e, s)` **is a plain Schnorr signature** under the group key `Y`,
//! verified by the unmodified [`pds2_crypto::schnorr::PublicKey::verify`] on the Montgomery
//! fast path. Verifiers never learn (or care) that the key was split.
//!
//! A byzantine shareholder that submits a garbage partial is caught
//! before aggregation: `g^{s_i^part} · Y_i^{q − e·λ_i} = R_i` must hold,
//! where `Y_i = g^{s_i}` is the signer's public share commitment from
//! the DKG — one [`Group::dual_pow_g`] per partial, the same dual
//! exponentiation single-signature verification runs.
//!
//! Nonces are domain-separated by an `attempt` counter: when an
//! aggregation attempt aborts (byzantine partial, refresh race), the
//! retry re-derives fresh nonces, so no nonce is ever reused across two
//! different challenges — the classic Schnorr key-extraction hazard.

use crate::dkg::{lagrange_at, Committee, ValidatorShare};
use crate::GovError;
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::hmac::hmac_sha256;
use pds2_crypto::schnorr::{Group, Signature};
use pds2_crypto::BigUint;
use std::collections::BTreeMap;

/// A partial signature: one quorum member's contribution to the
/// aggregate, carrying its nonce commitment so the aggregator can check
/// it without extra state. This is the wire type the chaos harness
/// corrupts in flight and the decode fuzzer mangles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialSig {
    /// Signer index (evaluation point, 1-based).
    pub signer: u64,
    /// Refresh epoch of the share that produced this partial.
    pub epoch: u64,
    /// Retry counter the nonce was derived under.
    pub attempt: u32,
    /// Nonce commitment `R_i = g^{k_i}`.
    pub r: BigUint,
    /// Response share `s_i^part = k_i + e·λ_i·s_i mod q`.
    pub s: BigUint,
}

impl Encode for PartialSig {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.signer);
        enc.put_u64(self.epoch);
        enc.put_u32(self.attempt);
        self.r.encode_into(enc);
        self.s.encode_into(enc);
    }
}

impl Decode for PartialSig {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PartialSig {
            signer: dec.get_u64()?,
            epoch: dec.get_u64()?,
            attempt: dec.get_u32()?,
            r: BigUint::decode_from(dec)?,
            s: BigUint::decode_from(dec)?,
        })
    }
}

/// Deterministic nonce scalar for `(share, message, attempt)`, nonzero
/// in `Z_q`.
pub fn nonce_scalar(share: &ValidatorShare, message: &[u8], attempt: u32) -> BigUint {
    let group = Group::standard();
    let mut keyed = Vec::with_capacity(24 + message.len());
    keyed.extend_from_slice(b"pds2-gov-nonce-v1");
    keyed.extend_from_slice(&share.epoch.to_le_bytes());
    keyed.extend_from_slice(&attempt.to_le_bytes());
    keyed.extend_from_slice(message);
    let tag = hmac_sha256(&share.scalar.to_bytes_be(), &keyed);
    let mut k = BigUint::from_bytes_be(tag.as_bytes()).rem(&group.q);
    if k.is_zero() {
        k = BigUint::one();
    }
    k
}

/// Round-1 output: the nonce commitment `R_i = g^{k_i}`.
pub fn nonce_commitment(share: &ValidatorShare, message: &[u8], attempt: u32) -> BigUint {
    Group::standard().pow_g(&nonce_scalar(share, message, attempt))
}

/// The aggregate nonce point and Schnorr challenge for a fixed signer
/// set. `nonces` must hold the `(index, R_i)` pairs of the whole set.
fn challenge(
    committee: &Committee,
    message: &[u8],
    nonces: &[(u64, BigUint)],
) -> (BigUint, BigUint) {
    let group = Group::standard();
    let mut r_total = BigUint::one();
    for (_, r) in nonces {
        r_total = r_total.mul_mod(r, &group.p);
    }
    let e = group.hash_to_scalar(&[
        &r_total.to_bytes_be(),
        &committee.group_public().element().to_bytes_be(),
        message,
    ]);
    (r_total, e)
}

/// Round 2, member side: computes this share's partial signature for a
/// fixed signer set.
///
/// Rejects a set that does not list this signer, lists it with a nonce
/// commitment that differs from the locally derived one (an aggregator
/// feeding inconsistent views), or contains duplicates. Bumps
/// `gov.partials_sent`.
pub fn partial_sign(
    share: &ValidatorShare,
    committee: &Committee,
    message: &[u8],
    attempt: u32,
    nonces: &[(u64, BigUint)],
) -> Result<PartialSig, GovError> {
    let group = Group::standard();
    let signers: Vec<u64> = nonces.iter().map(|(i, _)| *i).collect();
    let k = nonce_scalar(share, message, attempt);
    let my_r = group.pow_g(&k);
    let listed = nonces
        .iter()
        .find(|(i, _)| *i == share.index)
        .ok_or(GovError::UnknownSigner(share.index))?;
    if listed.1 != my_r {
        return Err(GovError::NonceMismatch);
    }
    let (_, e) = challenge(committee, message, nonces);
    let lambda = lagrange_at(&signers, share.index, 0, &group.q)?;
    let s = k.add_mod(
        &e.mul_mod(&lambda, &group.q)
            .mul_mod(&share.scalar, &group.q),
        &group.q,
    );
    pds2_obs::counter!("gov.partials_sent").inc();
    Ok(PartialSig {
        signer: share.index,
        epoch: share.epoch,
        attempt,
        r: my_r,
        s,
    })
}

/// Aggregator-side state for one signing attempt over a fixed signer
/// set: verifies each arriving partial against its signer's share
/// commitment and, once `t` have been accepted, interpolates them into
/// one group signature.
#[derive(Debug)]
pub struct SigningSession {
    message: Vec<u8>,
    attempt: u32,
    epoch: u64,
    signers: Vec<u64>,
    nonces: Vec<(u64, BigUint)>,
    e: BigUint,
    accepted: BTreeMap<u64, BigUint>,
}

impl SigningSession {
    /// Fixes the signer set for this attempt. `nonces` carries exactly
    /// the quorum's `(index, R_i)` pairs — `t` of them, distinct, each a
    /// known committee index.
    pub fn new(
        committee: &Committee,
        message: &[u8],
        attempt: u32,
        nonces: Vec<(u64, BigUint)>,
    ) -> Result<SigningSession, GovError> {
        if nonces.len() != committee.params.t {
            return Err(GovError::NotEnoughShares);
        }
        let signers: Vec<u64> = nonces.iter().map(|(i, _)| *i).collect();
        for (pos, &i) in signers.iter().enumerate() {
            if committee.commitment(i).is_none() {
                return Err(GovError::UnknownSigner(i));
            }
            if signers[pos + 1..].contains(&i) {
                return Err(GovError::DuplicateSigner(i));
            }
        }
        let (_, e) = challenge(committee, message, &nonces);
        Ok(SigningSession {
            message: message.to_vec(),
            attempt,
            epoch: committee.epoch,
            signers,
            nonces,
            e,
            accepted: BTreeMap::new(),
        })
    }

    /// The signer set fixed at construction.
    pub fn signers(&self) -> &[u64] {
        &self.signers
    }

    /// The Schnorr challenge this attempt signs under.
    pub fn challenge(&self) -> &BigUint {
        &self.e
    }

    /// Offers one partial signature. Verifies it against the signer's
    /// public share commitment (`g^{s_i} · Y_i^{q − e·λ_i} = R_i`) and
    /// rejects byzantine or stale contributions; a rejection bumps
    /// `gov.partials_rejected`.
    pub fn offer(&mut self, committee: &Committee, partial: &PartialSig) -> Result<(), GovError> {
        let verdict = self.check(committee, partial);
        if verdict.is_err() {
            pds2_obs::counter!("gov.partials_rejected").inc();
        }
        verdict
    }

    fn check(&mut self, committee: &Committee, partial: &PartialSig) -> Result<(), GovError> {
        let group = Group::standard();
        if partial.attempt != self.attempt || partial.epoch != self.epoch {
            return Err(GovError::StalePartial);
        }
        if !self.signers.contains(&partial.signer) {
            return Err(GovError::UnknownSigner(partial.signer));
        }
        let expected_r = &self
            .nonces
            .iter()
            .find(|(i, _)| *i == partial.signer)
            .expect("signer set checked above")
            .1;
        if &partial.r != expected_r {
            return Err(GovError::NonceMismatch);
        }
        if partial.s.cmp_val(&group.q) != std::cmp::Ordering::Less {
            return Err(GovError::BadPartial(partial.signer));
        }
        // g^{s_i} · Y_i^{q − e·λ_i} must equal R_i.
        let lambda = lagrange_at(&self.signers, partial.signer, 0, &group.q)?;
        let e_lambda = self.e.mul_mod(&lambda, &group.q);
        let y_i = committee
            .commitment(partial.signer)
            .ok_or(GovError::UnknownSigner(partial.signer))?;
        let lhs = group.dual_pow_g(&partial.s, y_i, &group.q.sub(&e_lambda));
        if &lhs != expected_r {
            return Err(GovError::BadPartial(partial.signer));
        }
        self.accepted.insert(partial.signer, partial.s.clone());
        Ok(())
    }

    /// Whether every member of the signer set has been accepted.
    pub fn ready(&self) -> bool {
        self.accepted.len() == self.signers.len()
    }

    /// Aggregates the accepted partials into one group signature and
    /// checks it against the group public key before returning it (the
    /// full verification costs one dual exponentiation — cheap insurance
    /// against an aggregator-side bug forging an unverifiable header).
    /// Bumps `gov.aggregations`.
    pub fn aggregate(&self, committee: &Committee) -> Result<Signature, GovError> {
        if !self.ready() {
            return Err(GovError::NotEnoughShares);
        }
        let group = Group::standard();
        let mut s = BigUint::zero();
        for part in self.accepted.values() {
            s = s.add_mod(part, &group.q);
        }
        let sig = Signature {
            e: self.e.clone(),
            s,
        };
        if !committee.group_public().verify(&self.message, &sig) {
            return Err(GovError::AggregateInvalid);
        }
        pds2_obs::counter!("gov.aggregations").inc();
        Ok(sig)
    }
}

/// One-call t-of-n signature over `message` using the given quorum of
/// shares — the in-process path block sealing uses, and the reference
/// the network protocol in [`crate::net`] is differentially tested
/// against. The quorum must hold at least `t` shares; exactly the first
/// `t` are used.
pub fn sign_with_quorum(
    committee: &Committee,
    quorum: &[&ValidatorShare],
    message: &[u8],
) -> Result<Signature, GovError> {
    if quorum.len() < committee.params.t {
        return Err(GovError::NotEnoughShares);
    }
    let quorum = &quorum[..committee.params.t];
    let attempt = 0;
    let nonces: Vec<(u64, BigUint)> = quorum
        .iter()
        .map(|s| (s.index, nonce_commitment(s, message, attempt)))
        .collect();
    let mut session = SigningSession::new(committee, message, attempt, nonces.clone())?;
    for share in quorum {
        let partial = partial_sign(share, committee, message, attempt, &nonces)?;
        session.offer(committee, &partial)?;
    }
    session.aggregate(committee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkg::{run_dkg_quiet, ThresholdParams};

    fn setup(t: usize, n: usize) -> (Committee, Vec<ValidatorShare>) {
        run_dkg_quiet(0x516E, ThresholdParams::new(t, n).unwrap()).unwrap()
    }

    fn refs<'a>(shares: &'a [ValidatorShare], idx: &[usize]) -> Vec<&'a ValidatorShare> {
        idx.iter().map(|&i| &shares[i]).collect()
    }

    #[test]
    fn aggregate_verifies_under_group_key() {
        let (committee, shares) = setup(3, 5);
        let sig = sign_with_quorum(&committee, &refs(&shares, &[0, 1, 2]), b"block 7").unwrap();
        assert!(committee.group_public().verify(b"block 7", &sig));
        assert!(committee.group_public().verify_reference(b"block 7", &sig));
        assert!(!committee.group_public().verify(b"block 8", &sig));
    }

    #[test]
    fn any_quorum_produces_some_valid_signature() {
        let (committee, shares) = setup(3, 5);
        for subset in [[0usize, 1, 2], [2, 3, 4], [0, 2, 4], [1, 2, 3]] {
            let sig = sign_with_quorum(&committee, &refs(&shares, &subset), b"msg").unwrap();
            assert!(committee.group_public().verify(b"msg", &sig), "{subset:?}");
        }
    }

    #[test]
    fn byzantine_partial_is_rejected_and_honest_quorum_still_signs() {
        let (committee, shares) = setup(3, 4);
        let msg = b"seal me";
        let quorum = refs(&shares, &[0, 1, 2]);
        let nonces: Vec<(u64, BigUint)> = quorum
            .iter()
            .map(|s| (s.index, nonce_commitment(s, msg, 0)))
            .collect();
        let mut session = SigningSession::new(&committee, msg, 0, nonces.clone()).unwrap();
        // Signer 2 lies: garbage response scalar.
        let mut bad = partial_sign(quorum[1], &committee, msg, 0, &nonces).unwrap();
        bad.s = bad.s.add_mod(&BigUint::one(), &Group::standard().q);
        assert_eq!(
            session.offer(&committee, &bad).unwrap_err(),
            GovError::BadPartial(2)
        );
        assert!(!session.ready());
        // Honest partials from the same set still complete the session.
        for share in &quorum {
            let p = partial_sign(share, &committee, msg, 0, &nonces).unwrap();
            session.offer(&committee, &p).unwrap();
        }
        let sig = session.aggregate(&committee).unwrap();
        assert!(committee.group_public().verify(msg, &sig));
    }

    #[test]
    fn stale_epoch_and_attempt_partials_are_rejected() {
        let (committee, shares) = setup(2, 3);
        let msg = b"m";
        let quorum = refs(&shares, &[0, 1]);
        let nonces: Vec<(u64, BigUint)> = quorum
            .iter()
            .map(|s| (s.index, nonce_commitment(s, msg, 1)))
            .collect();
        let mut session = SigningSession::new(&committee, msg, 1, nonces.clone()).unwrap();
        let good = partial_sign(quorum[0], &committee, msg, 1, &nonces).unwrap();
        let mut wrong_attempt = good.clone();
        wrong_attempt.attempt = 0;
        assert_eq!(
            session.offer(&committee, &wrong_attempt).unwrap_err(),
            GovError::StalePartial
        );
        let mut wrong_epoch = good.clone();
        wrong_epoch.epoch = 9;
        assert_eq!(
            session.offer(&committee, &wrong_epoch).unwrap_err(),
            GovError::StalePartial
        );
        session.offer(&committee, &good).unwrap();
    }

    #[test]
    fn undersized_quorum_cannot_sign() {
        let (committee, shares) = setup(3, 5);
        assert_eq!(
            sign_with_quorum(&committee, &refs(&shares, &[0, 1]), b"m").unwrap_err(),
            GovError::NotEnoughShares
        );
    }

    #[test]
    fn session_rejects_malformed_signer_sets() {
        let (committee, shares) = setup(2, 3);
        let n1 = nonce_commitment(&shares[0], b"m", 0);
        // Wrong size.
        assert!(SigningSession::new(&committee, b"m", 0, vec![(1, n1.clone())]).is_err());
        // Duplicate signer.
        assert_eq!(
            SigningSession::new(&committee, b"m", 0, vec![(1, n1.clone()), (1, n1.clone())])
                .unwrap_err(),
            GovError::DuplicateSigner(1)
        );
        // Unknown index.
        assert_eq!(
            SigningSession::new(&committee, b"m", 0, vec![(1, n1.clone()), (9, n1)]).unwrap_err(),
            GovError::UnknownSigner(9)
        );
    }

    #[test]
    fn partial_sig_codec_roundtrip() {
        let (committee, shares) = setup(2, 3);
        let nonces: Vec<(u64, BigUint)> = shares[..2]
            .iter()
            .map(|s| (s.index, nonce_commitment(s, b"wire", 3)))
            .collect();
        let p = partial_sign(&shares[0], &committee, b"wire", 3, &nonces).unwrap();
        let back = PartialSig::from_bytes(&Encode::to_bytes(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn signing_is_deterministic_per_quorum() {
        let (committee, shares) = setup(3, 5);
        let a = sign_with_quorum(&committee, &refs(&shares, &[0, 1, 2]), b"det").unwrap();
        let b = sign_with_quorum(&committee, &refs(&shares, &[0, 1, 2]), b"det").unwrap();
        assert_eq!(a, b);
        // A different quorum signs with a different nonce set — distinct
        // but equally valid signature.
        let c = sign_with_quorum(&committee, &refs(&shares, &[1, 2, 3]), b"det").unwrap();
        assert_ne!(a, c);
        assert!(committee.group_public().verify(b"det", &c));
    }
}
