//! Two-round t-of-n threshold Schnorr signing with FROST-style nonce
//! binding.
//!
//! Round 1 — every quorum member `i` derives a deterministic *pair* of
//! nonces `(d_i, e_i) = HMAC(s_i, epoch ‖ attempt ‖ tag ‖ m) mod q`
//! (RFC 6979 in spirit, one HMAC per component tag) and publishes the
//! commitment pair `(D_i, E_i) = (g^{d_i}, g^{e_i})`.
//!
//! Round 2 — once the signer set `S` (|S| = t) and its commitment pairs
//! are fixed, everyone hashes the full transcript `B = [(j, D_j, E_j)]`
//! into per-signer binding factors `ρ_j = H(j ‖ B ‖ m)`, forms the
//! effective nonce points `R_j = D_j · E_j^{ρ_j}`, the aggregate
//! `R = Π_{j∈S} R_j`, the ordinary Schnorr challenge `e = H(R ‖ Y ‖ m)`,
//! the Lagrange weight `λ_i = λ_i^S(0)`, and the partial response
//! `s_i^part = d_i + ρ_i·e_i + e·λ_i·s_i mod q`.
//!
//! The aggregate `s = Σ_{i∈S} s_i^part` satisfies `s = k + e·x` with
//! `k = Σ (d_i + ρ_i e_i)` and `x = Σ λ_i s_i` the interpolated group
//! secret — so `(e, s)` **is a plain Schnorr signature** under the group
//! key `Y`, verified by the unmodified
//! [`pds2_crypto::schnorr::PublicKey::verify`] on the Montgomery fast
//! path. Verifiers never learn (or care) that the key was split.
//!
//! A byzantine shareholder that submits a garbage partial is caught
//! before aggregation: `g^{s_i^part} · Y_i^{q − e·λ_i} = R_i` must hold,
//! where `Y_i = g^{s_i}` is the signer's public share commitment from
//! the DKG — one [`Group::dual_pow_g`] per partial, the same dual
//! exponentiation single-signature verification runs.
//!
//! ## Why the binding factor, and why [`NonceGuard`]
//!
//! Deterministic nonces are only safe if one nonce never signs two
//! different challenges — the classic Schnorr key-extraction hazard:
//! from `s = k + e·λ·x` and `s' = k + e'·λ'·x` anyone holding both
//! partials solves for the share `x`. Two mechanisms close every route
//! to that state:
//!
//! - the **binding factor** folds the whole transcript (signer set and
//!   every commitment pair) into every effective nonce, so signing the
//!   same message with a *different quorum* — or under a commitment
//!   list an aggregator tampered with — uses a fresh effective nonce,
//!   never the old one under a new challenge;
//! - the **[`NonceGuard`]** makes [`partial_sign`] stateful: a signer
//!   records the transcript digest it signed for each
//!   `(epoch, attempt, message)` tuple and refuses any other transcript
//!   for the same tuple ([`GovError::NonceReuse`]). Without it, a
//!   dishonest aggregator could collect partials for one tuple under
//!   several transcripts and solve the resulting linear system for the
//!   base nonces and the share.
//!
//! The `attempt` counter still domain-separates retries: when an
//! aggregation attempt aborts (byzantine partial, refresh race), the
//! retry re-derives fresh base nonces on top of everything above.

use crate::dkg::{lagrange_at, Committee, ValidatorShare};
use crate::GovError;
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::hmac::hmac_sha256;
use pds2_crypto::schnorr::{Group, Signature};
use pds2_crypto::sha256::Sha256;
use pds2_crypto::BigUint;
use std::collections::BTreeMap;

/// Domain tag for base-nonce derivation.
const DOMAIN_NONCE: &[u8] = b"pds2-gov-nonce-v2";
/// Domain tag for transcript binding factors.
const DOMAIN_BIND: &[u8] = b"pds2-gov-bind-v1";

/// Round-1 public output: the hiding/binding commitment pair
/// `(D_i, E_i) = (g^{d_i}, g^{e_i})`. Set-independent, so members can
/// publish it before the aggregator has fixed the signer set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonceCommitment {
    /// Hiding commitment `D_i = g^{d_i}`.
    pub hiding: BigUint,
    /// Binding commitment `E_i = g^{e_i}`.
    pub binding: BigUint,
}

/// A partial signature: one quorum member's contribution to the
/// aggregate, carrying its *effective* nonce point so the aggregator can
/// check it without extra state. This is the wire type the chaos harness
/// corrupts in flight and the decode fuzzer mangles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialSig {
    /// Signer index (evaluation point, 1-based).
    pub signer: u64,
    /// Refresh epoch of the share that produced this partial.
    pub epoch: u64,
    /// Retry counter the nonces were derived under.
    pub attempt: u32,
    /// Effective nonce point `R_i = D_i · E_i^{ρ_i}`.
    pub r: BigUint,
    /// Response share `s_i^part = d_i + ρ_i·e_i + e·λ_i·s_i mod q`.
    pub s: BigUint,
}

impl Encode for PartialSig {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.signer);
        enc.put_u64(self.epoch);
        enc.put_u32(self.attempt);
        self.r.encode_into(enc);
        self.s.encode_into(enc);
    }
}

impl Decode for PartialSig {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PartialSig {
            signer: dec.get_u64()?,
            epoch: dec.get_u64()?,
            attempt: dec.get_u32()?,
            r: BigUint::decode_from(dec)?,
            s: BigUint::decode_from(dec)?,
        })
    }
}

/// Per-signer anti-reuse state (see the module docs): each
/// `(epoch, attempt, message)` tuple is signed under at most one
/// commitment transcript, ever. Long-lived signers must persist one
/// guard per share across restarts — [`crate::net::GovNode`] treats it
/// as on-disk state that survives crashes, exactly like completed
/// signatures.
#[derive(Clone, Debug, Default)]
pub struct NonceGuard {
    /// `(epoch, attempt, H(message)) → transcript digest` for every
    /// tuple this signer has produced a partial for.
    signed: BTreeMap<(u64, u32, [u8; 32]), [u8; 32]>,
}

impl NonceGuard {
    /// An empty guard (no tuple signed yet).
    pub fn new() -> NonceGuard {
        NonceGuard::default()
    }

    /// Records `transcript` for the tuple, or rejects it if a different
    /// transcript was already signed for the same tuple.
    fn admit(
        &mut self,
        epoch: u64,
        attempt: u32,
        message: &[u8],
        transcript: [u8; 32],
    ) -> Result<(), GovError> {
        let mut h = Sha256::new();
        h.update(message);
        let key = (epoch, attempt, *h.finalize().as_bytes());
        match self.signed.get(&key) {
            Some(prev) if *prev != transcript => Err(GovError::NonceReuse),
            _ => {
                self.signed.insert(key, transcript);
                Ok(())
            }
        }
    }
}

/// Deterministic base-nonce pair `(d_i, e_i)` for
/// `(share, message, attempt)`, each nonzero in `Z_q`.
fn nonce_scalars(share: &ValidatorShare, message: &[u8], attempt: u32) -> (BigUint, BigUint) {
    let group = Group::standard();
    let derive = |tag: u8| {
        let mut keyed = Vec::with_capacity(DOMAIN_NONCE.len() + 13 + message.len());
        keyed.extend_from_slice(DOMAIN_NONCE);
        keyed.extend_from_slice(&share.epoch.to_le_bytes());
        keyed.extend_from_slice(&attempt.to_le_bytes());
        keyed.push(tag);
        keyed.extend_from_slice(message);
        let mac = hmac_sha256(&share.scalar.to_bytes_be(), &keyed);
        let mut k = BigUint::from_bytes_be(mac.as_bytes()).rem(&group.q);
        if k.is_zero() {
            k = BigUint::one();
        }
        k
    };
    (derive(b'd'), derive(b'e'))
}

/// Round-1 output: the commitment pair `(D_i, E_i)`.
pub fn nonce_commitment(share: &ValidatorShare, message: &[u8], attempt: u32) -> NonceCommitment {
    let group = Group::standard();
    let (d, e) = nonce_scalars(share, message, attempt);
    NonceCommitment {
        hiding: group.pow_g(&d),
        binding: group.pow_g(&e),
    }
}

/// Digest of the full round-1 transcript `[(j, D_j, E_j)]` — the value
/// every binding factor, and the [`NonceGuard`], are bound to.
fn transcript_digest(nonces: &[(u64, NonceCommitment)]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(&(nonces.len() as u64).to_le_bytes());
    for (i, c) in nonces {
        h.update(&i.to_le_bytes());
        let d = c.hiding.to_bytes_be();
        h.update(&(d.len() as u64).to_le_bytes());
        h.update(&d);
        let e = c.binding.to_bytes_be();
        h.update(&(e.len() as u64).to_le_bytes());
        h.update(&e);
    }
    *h.finalize().as_bytes()
}

/// Binding factor `ρ_j = H(j ‖ transcript ‖ m) mod q`.
fn binding_factor(signer: u64, message: &[u8], transcript: &[u8; 32]) -> BigUint {
    Group::standard().hash_to_scalar(&[DOMAIN_BIND, &signer.to_le_bytes(), transcript, message])
}

/// The effective nonce points `R_j = D_j · E_j^{ρ_j}` for the whole set.
fn effective_nonces(message: &[u8], nonces: &[(u64, NonceCommitment)]) -> Vec<(u64, BigUint)> {
    let group = Group::standard();
    let transcript = transcript_digest(nonces);
    nonces
        .iter()
        .map(|(i, c)| {
            let rho = binding_factor(*i, message, &transcript);
            let r = c
                .binding
                .modpow(&rho, &group.p)
                .mul_mod(&c.hiding, &group.p);
            (*i, r)
        })
        .collect()
}

/// The Schnorr challenge for a fixed effective-nonce set:
/// `e = H(Π R_j ‖ Y ‖ m)` — the single-key formula.
fn challenge(committee: &Committee, message: &[u8], effective: &[(u64, BigUint)]) -> BigUint {
    let group = Group::standard();
    let mut r_total = BigUint::one();
    for (_, r) in effective {
        r_total = r_total.mul_mod(r, &group.p);
    }
    group.hash_to_scalar(&[
        &r_total.to_bytes_be(),
        &committee.group_public().element().to_bytes_be(),
        message,
    ])
}

/// Round 2, member side: computes this share's partial signature for a
/// fixed signer set.
///
/// Rejects a set that does not list this signer, lists it with a
/// commitment pair that differs from the locally derived one (an
/// aggregator feeding inconsistent views), contains duplicates, or —
/// via `guard` — re-visits a `(epoch, attempt, message)` tuple this
/// signer already signed under a *different* transcript
/// ([`GovError::NonceReuse`]; re-signing the identical transcript is
/// fine and reproduces the identical partial). Bumps
/// `gov.partials_sent`.
pub fn partial_sign(
    share: &ValidatorShare,
    committee: &Committee,
    message: &[u8],
    attempt: u32,
    nonces: &[(u64, NonceCommitment)],
    guard: &mut NonceGuard,
) -> Result<PartialSig, GovError> {
    let group = Group::standard();
    let signers: Vec<u64> = nonces.iter().map(|(i, _)| *i).collect();
    let listed = nonces
        .iter()
        .find(|(i, _)| *i == share.index)
        .ok_or(GovError::UnknownSigner(share.index))?;
    let my_commit = nonce_commitment(share, message, attempt);
    if listed.1 != my_commit {
        return Err(GovError::NonceMismatch);
    }
    // Validates distinctness of the whole set as a side effect.
    let lambda = lagrange_at(&signers, share.index, 0, &group.q)?;
    let transcript = transcript_digest(nonces);
    guard.admit(share.epoch, attempt, message, transcript)?;
    let (d, e_nonce) = nonce_scalars(share, message, attempt);
    let rho = binding_factor(share.index, message, &transcript);
    let k = d.add_mod(&rho.mul_mod(&e_nonce, &group.q), &group.q);
    let e = challenge(committee, message, &effective_nonces(message, nonces));
    let s = k.add_mod(
        &e.mul_mod(&lambda, &group.q)
            .mul_mod(&share.scalar, &group.q),
        &group.q,
    );
    pds2_obs::counter!("gov.partials_sent").inc();
    Ok(PartialSig {
        signer: share.index,
        epoch: share.epoch,
        attempt,
        r: group.pow_g(&k),
        s,
    })
}

/// Aggregator-side state for one signing attempt over a fixed signer
/// set: verifies each arriving partial against its signer's share
/// commitment and, once `t` have been accepted, interpolates them into
/// one group signature.
#[derive(Debug)]
pub struct SigningSession {
    message: Vec<u8>,
    attempt: u32,
    epoch: u64,
    signers: Vec<u64>,
    /// Effective nonce points `R_j` derived from the fixed transcript.
    nonces: Vec<(u64, BigUint)>,
    e: BigUint,
    accepted: BTreeMap<u64, BigUint>,
}

impl SigningSession {
    /// Fixes the signer set for this attempt. `nonces` carries exactly
    /// the quorum's `(index, (D_i, E_i))` pairs — `t` of them, distinct,
    /// each a known committee index.
    pub fn new(
        committee: &Committee,
        message: &[u8],
        attempt: u32,
        nonces: Vec<(u64, NonceCommitment)>,
    ) -> Result<SigningSession, GovError> {
        if nonces.len() != committee.params.t {
            return Err(GovError::NotEnoughShares);
        }
        let signers: Vec<u64> = nonces.iter().map(|(i, _)| *i).collect();
        for (pos, &i) in signers.iter().enumerate() {
            if committee.commitment(i).is_none() {
                return Err(GovError::UnknownSigner(i));
            }
            if signers[pos + 1..].contains(&i) {
                return Err(GovError::DuplicateSigner(i));
            }
        }
        let effective = effective_nonces(message, &nonces);
        let e = challenge(committee, message, &effective);
        Ok(SigningSession {
            message: message.to_vec(),
            attempt,
            epoch: committee.epoch,
            signers,
            nonces: effective,
            e,
            accepted: BTreeMap::new(),
        })
    }

    /// The signer set fixed at construction.
    pub fn signers(&self) -> &[u64] {
        &self.signers
    }

    /// The Schnorr challenge this attempt signs under.
    pub fn challenge(&self) -> &BigUint {
        &self.e
    }

    /// Offers one partial signature. Verifies it against the signer's
    /// public share commitment (`g^{s_i} · Y_i^{q − e·λ_i} = R_i`) and
    /// rejects byzantine or stale contributions; a rejection bumps
    /// `gov.partials_rejected`.
    pub fn offer(&mut self, committee: &Committee, partial: &PartialSig) -> Result<(), GovError> {
        let verdict = self.check(committee, partial);
        if verdict.is_err() {
            pds2_obs::counter!("gov.partials_rejected").inc();
        }
        verdict
    }

    fn check(&mut self, committee: &Committee, partial: &PartialSig) -> Result<(), GovError> {
        let group = Group::standard();
        if partial.attempt != self.attempt || partial.epoch != self.epoch {
            return Err(GovError::StalePartial);
        }
        if !self.signers.contains(&partial.signer) {
            return Err(GovError::UnknownSigner(partial.signer));
        }
        let expected_r = &self
            .nonces
            .iter()
            .find(|(i, _)| *i == partial.signer)
            .expect("signer set checked above")
            .1;
        if &partial.r != expected_r {
            return Err(GovError::NonceMismatch);
        }
        if partial.s.cmp_val(&group.q) != std::cmp::Ordering::Less {
            return Err(GovError::BadPartial(partial.signer));
        }
        // g^{s_i} · Y_i^{q − e·λ_i} must equal R_i.
        let lambda = lagrange_at(&self.signers, partial.signer, 0, &group.q)?;
        let e_lambda = self.e.mul_mod(&lambda, &group.q);
        let y_i = committee
            .commitment(partial.signer)
            .ok_or(GovError::UnknownSigner(partial.signer))?;
        let lhs = group.dual_pow_g(&partial.s, y_i, &group.q.sub(&e_lambda));
        if &lhs != expected_r {
            return Err(GovError::BadPartial(partial.signer));
        }
        self.accepted.insert(partial.signer, partial.s.clone());
        Ok(())
    }

    /// Whether every member of the signer set has been accepted.
    pub fn ready(&self) -> bool {
        self.accepted.len() == self.signers.len()
    }

    /// Aggregates the accepted partials into one group signature and
    /// checks it against the group public key before returning it (the
    /// full verification costs one dual exponentiation — cheap insurance
    /// against an aggregator-side bug forging an unverifiable header).
    /// Bumps `gov.aggregations`.
    pub fn aggregate(&self, committee: &Committee) -> Result<Signature, GovError> {
        if !self.ready() {
            return Err(GovError::NotEnoughShares);
        }
        let group = Group::standard();
        let mut s = BigUint::zero();
        for part in self.accepted.values() {
            s = s.add_mod(part, &group.q);
        }
        let sig = Signature {
            e: self.e.clone(),
            s,
        };
        if !committee.group_public().verify(&self.message, &sig) {
            return Err(GovError::AggregateInvalid);
        }
        pds2_obs::counter!("gov.aggregations").inc();
        Ok(sig)
    }
}

/// One-call t-of-n signature over `message` using the given quorum of
/// shares — the in-process path block sealing uses, and the reference
/// the network protocol in [`crate::net`] is differentially tested
/// against. The quorum must hold at least `t` shares; exactly the first
/// `t` are used.
///
/// Fresh [`NonceGuard`]s per call are sound here because the caller is
/// simultaneously the aggregator and every shareholder — there is no
/// untrusted party to equivocate the transcript. A signer exposing
/// partials to a *remote* aggregator must persist one guard per share
/// (as [`crate::net::GovNode`] does).
pub fn sign_with_quorum(
    committee: &Committee,
    quorum: &[&ValidatorShare],
    message: &[u8],
) -> Result<Signature, GovError> {
    if quorum.len() < committee.params.t {
        return Err(GovError::NotEnoughShares);
    }
    let quorum = &quorum[..committee.params.t];
    let attempt = 0;
    let nonces: Vec<(u64, NonceCommitment)> = quorum
        .iter()
        .map(|s| (s.index, nonce_commitment(s, message, attempt)))
        .collect();
    let mut session = SigningSession::new(committee, message, attempt, nonces.clone())?;
    for share in quorum {
        let partial = partial_sign(
            share,
            committee,
            message,
            attempt,
            &nonces,
            &mut NonceGuard::new(),
        )?;
        session.offer(committee, &partial)?;
    }
    session.aggregate(committee)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dkg::{run_dkg_quiet, ThresholdParams};

    fn setup(t: usize, n: usize) -> (Committee, Vec<ValidatorShare>) {
        run_dkg_quiet(0x516E, ThresholdParams::new(t, n).unwrap()).unwrap()
    }

    fn refs<'a>(shares: &'a [ValidatorShare], idx: &[usize]) -> Vec<&'a ValidatorShare> {
        idx.iter().map(|&i| &shares[i]).collect()
    }

    fn commitments(
        quorum: &[&ValidatorShare],
        msg: &[u8],
        attempt: u32,
    ) -> Vec<(u64, NonceCommitment)> {
        quorum
            .iter()
            .map(|s| (s.index, nonce_commitment(s, msg, attempt)))
            .collect()
    }

    #[test]
    fn aggregate_verifies_under_group_key() {
        let (committee, shares) = setup(3, 5);
        let sig = sign_with_quorum(&committee, &refs(&shares, &[0, 1, 2]), b"block 7").unwrap();
        assert!(committee.group_public().verify(b"block 7", &sig));
        assert!(committee.group_public().verify_reference(b"block 7", &sig));
        assert!(!committee.group_public().verify(b"block 8", &sig));
    }

    #[test]
    fn any_quorum_produces_some_valid_signature() {
        let (committee, shares) = setup(3, 5);
        for subset in [[0usize, 1, 2], [2, 3, 4], [0, 2, 4], [1, 2, 3]] {
            let sig = sign_with_quorum(&committee, &refs(&shares, &subset), b"msg").unwrap();
            assert!(committee.group_public().verify(b"msg", &sig), "{subset:?}");
        }
    }

    #[test]
    fn byzantine_partial_is_rejected_and_honest_quorum_still_signs() {
        let (committee, shares) = setup(3, 4);
        let msg = b"seal me";
        let quorum = refs(&shares, &[0, 1, 2]);
        let nonces = commitments(&quorum, msg, 0);
        let mut session = SigningSession::new(&committee, msg, 0, nonces.clone()).unwrap();
        // Signer 2 lies: garbage response scalar.
        let mut bad = partial_sign(
            quorum[1],
            &committee,
            msg,
            0,
            &nonces,
            &mut NonceGuard::new(),
        )
        .unwrap();
        bad.s = bad.s.add_mod(&BigUint::one(), &Group::standard().q);
        assert_eq!(
            session.offer(&committee, &bad).unwrap_err(),
            GovError::BadPartial(2)
        );
        assert!(!session.ready());
        // Honest partials from the same set still complete the session.
        for share in &quorum {
            let p =
                partial_sign(share, &committee, msg, 0, &nonces, &mut NonceGuard::new()).unwrap();
            session.offer(&committee, &p).unwrap();
        }
        let sig = session.aggregate(&committee).unwrap();
        assert!(committee.group_public().verify(msg, &sig));
    }

    #[test]
    fn stale_epoch_and_attempt_partials_are_rejected() {
        let (committee, shares) = setup(2, 3);
        let msg = b"m";
        let quorum = refs(&shares, &[0, 1]);
        let nonces = commitments(&quorum, msg, 1);
        let mut session = SigningSession::new(&committee, msg, 1, nonces.clone()).unwrap();
        let good = partial_sign(
            quorum[0],
            &committee,
            msg,
            1,
            &nonces,
            &mut NonceGuard::new(),
        )
        .unwrap();
        let mut wrong_attempt = good.clone();
        wrong_attempt.attempt = 0;
        assert_eq!(
            session.offer(&committee, &wrong_attempt).unwrap_err(),
            GovError::StalePartial
        );
        let mut wrong_epoch = good.clone();
        wrong_epoch.epoch = 9;
        assert_eq!(
            session.offer(&committee, &wrong_epoch).unwrap_err(),
            GovError::StalePartial
        );
        session.offer(&committee, &good).unwrap();
    }

    #[test]
    fn undersized_quorum_cannot_sign() {
        let (committee, shares) = setup(3, 5);
        assert_eq!(
            sign_with_quorum(&committee, &refs(&shares, &[0, 1]), b"m").unwrap_err(),
            GovError::NotEnoughShares
        );
    }

    #[test]
    fn session_rejects_malformed_signer_sets() {
        let (committee, shares) = setup(2, 3);
        let n1 = nonce_commitment(&shares[0], b"m", 0);
        // Wrong size.
        assert!(SigningSession::new(&committee, b"m", 0, vec![(1, n1.clone())]).is_err());
        // Duplicate signer.
        assert_eq!(
            SigningSession::new(&committee, b"m", 0, vec![(1, n1.clone()), (1, n1.clone())])
                .unwrap_err(),
            GovError::DuplicateSigner(1)
        );
        // Unknown index.
        assert_eq!(
            SigningSession::new(&committee, b"m", 0, vec![(1, n1.clone()), (9, n1)]).unwrap_err(),
            GovError::UnknownSigner(9)
        );
    }

    #[test]
    fn partial_sig_codec_roundtrip() {
        let (committee, shares) = setup(2, 3);
        let quorum = refs(&shares, &[0, 1]);
        let nonces = commitments(&quorum, b"wire", 3);
        let p = partial_sign(
            &shares[0],
            &committee,
            b"wire",
            3,
            &nonces,
            &mut NonceGuard::new(),
        )
        .unwrap();
        let back = PartialSig::from_bytes(&Encode::to_bytes(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn signing_is_deterministic_per_quorum() {
        let (committee, shares) = setup(3, 5);
        let a = sign_with_quorum(&committee, &refs(&shares, &[0, 1, 2]), b"det").unwrap();
        let b = sign_with_quorum(&committee, &refs(&shares, &[0, 1, 2]), b"det").unwrap();
        assert_eq!(a, b);
        // A different quorum binds a different transcript into every
        // effective nonce — distinct but equally valid signature.
        let c = sign_with_quorum(&committee, &refs(&shares, &[1, 2, 3]), b"det").unwrap();
        assert_ne!(a, c);
        assert!(committee.group_public().verify(b"det", &c));
    }

    /// The binding factor must fold the whole transcript into every
    /// effective nonce: a shared signer contributes a *different*
    /// effective nonce to two different quorums, and to a commitment
    /// list an aggregator tampered with — so its base nonce pair never
    /// signs two different challenges.
    #[test]
    fn transcript_changes_rebind_every_effective_nonce() {
        let (committee, shares) = setup(3, 5);
        let msg = b"bind";
        // Same signer (index 2), two quorums.
        let qa = refs(&shares, &[0, 1, 2]);
        let qb = refs(&shares, &[1, 2, 3]);
        let pa = partial_sign(
            &shares[1],
            &committee,
            msg,
            0,
            &commitments(&qa, msg, 0),
            &mut NonceGuard::new(),
        )
        .unwrap();
        let pb = partial_sign(
            &shares[1],
            &committee,
            msg,
            0,
            &commitments(&qb, msg, 0),
            &mut NonceGuard::new(),
        )
        .unwrap();
        assert_ne!(pa.r, pb.r, "effective nonce must differ across quorums");
        // Same quorum, but the aggregator tampers with another signer's
        // binding commitment: signer 1's effective nonce changes too,
        // and the honest session rejects the resulting partial.
        let honest = commitments(&qa, msg, 0);
        let mut tampered = honest.clone();
        tampered[2].1.binding = Group::standard().pow_g(&BigUint::from_u64(41));
        let pt = partial_sign(
            &shares[0],
            &committee,
            msg,
            0,
            &tampered,
            &mut NonceGuard::new(),
        )
        .unwrap();
        let ph = partial_sign(
            &shares[0],
            &committee,
            msg,
            0,
            &honest,
            &mut NonceGuard::new(),
        )
        .unwrap();
        assert_ne!(pt.r, ph.r, "tampered transcript must rebind the nonce");
        let mut session = SigningSession::new(&committee, msg, 0, honest).unwrap();
        assert_eq!(
            session.offer(&committee, &pt).unwrap_err(),
            GovError::NonceMismatch
        );
    }

    /// The stateful guard pins each `(epoch, attempt, message)` tuple to
    /// one transcript: re-signing the identical transcript reproduces
    /// the identical partial, any other transcript is refused.
    #[test]
    fn nonce_guard_refuses_second_transcript_for_same_tuple() {
        let (committee, shares) = setup(3, 5);
        let msg = b"guarded";
        let qa = refs(&shares, &[0, 1, 2]);
        let qb = refs(&shares, &[1, 2, 3]);
        let na = commitments(&qa, msg, 0);
        let nb = commitments(&qb, msg, 0);
        let mut guard = NonceGuard::new();
        let first = partial_sign(&shares[1], &committee, msg, 0, &na, &mut guard).unwrap();
        let again = partial_sign(&shares[1], &committee, msg, 0, &na, &mut guard).unwrap();
        assert_eq!(first, again, "identical transcript must be idempotent");
        assert_eq!(
            partial_sign(&shares[1], &committee, msg, 0, &nb, &mut guard).unwrap_err(),
            GovError::NonceReuse
        );
        // A different attempt (or message) is a fresh tuple.
        let nb1 = commitments(&qb, msg, 1);
        partial_sign(&shares[1], &committee, msg, 1, &nb1, &mut guard).unwrap();
    }
}
