//! Append-only chain log with a snapshot slot — the durable store
//! behind crash-recoverable chain state (DESIGN.md §5g).
//!
//! The log is a single append-only byte buffer of checksummed frames
//! plus one replaceable snapshot slot. It is chain-agnostic: payloads
//! are opaque byte strings (the chain crate frames blocks+receipt
//! digests and journaled transactions into it), so this crate stays
//! free of consensus types.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! kind: u8 · height: u64 · len: u64 · payload: [u8; len] · fnv1a64(frame bytes): u64
//! ```
//!
//! Recovery reads frames until the buffer ends or a frame fails to
//! parse or checksum — a torn tail from a crash mid-append truncates
//! the log at the last complete frame instead of poisoning it. The
//! simulation keeps the "file" in memory for determinism; the framing,
//! checksums and torn-tail semantics are exactly what an on-disk
//! implementation would need.

/// Frame kind: a journaled transaction awaiting inclusion.
pub const FRAME_TX: u8 = 1;
/// Frame kind: an appended block (payload: block bytes + receipts digest).
pub const FRAME_BLOCK: u8 = 2;

/// One decoded log frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// [`FRAME_TX`] or [`FRAME_BLOCK`].
    pub kind: u8,
    /// Chain height the frame was appended at (block height for block
    /// frames; current tip height for tx frames).
    pub height: u64,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

/// FNV-1a 64-bit — cheap, deterministic frame checksum (not
/// cryptographic; integrity against torn writes, not adversaries — the
/// chain re-validates everything it replays).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The append-only log plus snapshot slot.
#[derive(Clone, Debug, Default)]
pub struct ChainLog {
    log: Vec<u8>,
    snapshot: Option<(u64, Vec<u8>)>,
}

/// Result of scanning the log: the complete frames, and whether a torn
/// or corrupt tail was dropped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanResult {
    /// Every frame up to the first damage (or the end).
    pub frames: Vec<Frame>,
    /// True when trailing bytes were unreadable (crash mid-append or
    /// corruption) and recovery stopped early.
    pub truncated: bool,
}

impl ChainLog {
    /// An empty log.
    pub fn new() -> ChainLog {
        ChainLog::default()
    }

    /// Appends one frame.
    pub fn append(&mut self, kind: u8, height: u64, payload: &[u8]) {
        let start = self.log.len();
        self.log.push(kind);
        self.log.extend_from_slice(&height.to_le_bytes());
        self.log
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.log.extend_from_slice(payload);
        let sum = fnv1a64(&self.log[start..]);
        self.log.extend_from_slice(&sum.to_le_bytes());
    }

    /// Reads every complete frame, stopping at the first torn or
    /// corrupt one.
    pub fn scan(&self) -> ScanResult {
        let mut frames = Vec::new();
        let buf = &self.log;
        let mut pos = 0usize;
        while pos < buf.len() {
            let start = pos;
            // kind + height + len header
            if buf.len() - pos < 1 + 8 + 8 {
                return ScanResult {
                    frames,
                    truncated: true,
                };
            }
            let kind = buf[pos];
            pos += 1;
            let height = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
            pos += 8;
            let len = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap()) as usize;
            pos += 8;
            // Overflow-safe: a corrupted length field can be ~u64::MAX, so
            // never compute `len + 8` directly.
            let rest = buf.len() - pos;
            if rest < 8 || rest - 8 < len {
                return ScanResult {
                    frames,
                    truncated: true,
                };
            }
            let payload = buf[pos..pos + len].to_vec();
            pos += len;
            let sum = u64::from_le_bytes(buf[pos..pos + 8].try_into().unwrap());
            pos += 8;
            if fnv1a64(&buf[start..pos - 8]) != sum {
                return ScanResult {
                    frames,
                    truncated: true,
                };
            }
            frames.push(Frame {
                kind,
                height,
                payload,
            });
        }
        ScanResult {
            frames,
            truncated: false,
        }
    }

    /// Scans and truncates the raw log to its longest valid frame
    /// prefix, so appends after a torn write go after the last complete
    /// frame instead of extending garbage. Returns the scan of the
    /// surviving prefix.
    pub fn repair(&mut self) -> ScanResult {
        let scan = self.scan();
        if scan.truncated {
            let valid_len: usize = scan
                .frames
                .iter()
                .map(|f| 1 + 8 + 8 + f.payload.len() + 8)
                .sum();
            self.log.truncate(valid_len);
        }
        scan
    }

    /// Replaces the snapshot slot (an on-disk store would write to a
    /// temp file and rename, making the swap atomic).
    pub fn write_snapshot(&mut self, height: u64, bytes: Vec<u8>) {
        self.snapshot = Some((height, bytes));
    }

    /// The current snapshot, if one was written.
    pub fn snapshot(&self) -> Option<(u64, &[u8])> {
        self.snapshot.as_ref().map(|(h, b)| (*h, b.as_slice()))
    }

    /// Log size in bytes (for bench reporting).
    pub fn log_bytes(&self) -> usize {
        self.log.len()
    }

    /// Drops trailing bytes of the raw log, simulating a crash mid-
    /// append (test/chaos helper).
    pub fn truncate_tail(&mut self, drop_bytes: usize) {
        let keep = self.log.len().saturating_sub(drop_bytes);
        self.log.truncate(keep);
    }

    /// Flips one bit of the raw log (test/chaos helper).
    pub fn corrupt_bit(&mut self, byte_index: usize, bit: u8) {
        if let Some(b) = self.log.get_mut(byte_index) {
            *b ^= 1 << (bit & 7);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled() -> ChainLog {
        let mut log = ChainLog::new();
        log.append(FRAME_TX, 0, b"tx-one");
        log.append(FRAME_BLOCK, 1, b"block-one");
        log.append(FRAME_TX, 1, b"");
        log.append(FRAME_BLOCK, 2, &[0xAB; 300]);
        log
    }

    #[test]
    fn roundtrip_scan() {
        let log = filled();
        let scan = log.scan();
        assert!(!scan.truncated);
        assert_eq!(scan.frames.len(), 4);
        assert_eq!(
            scan.frames[0],
            Frame {
                kind: FRAME_TX,
                height: 0,
                payload: b"tx-one".to_vec()
            }
        );
        assert_eq!(scan.frames[2].payload, Vec::<u8>::new());
        assert_eq!(scan.frames[3].payload.len(), 300);
    }

    #[test]
    fn torn_tail_truncates_to_last_complete_frame() {
        for drop in 1..40 {
            let mut log = filled();
            log.truncate_tail(drop);
            let scan = log.scan();
            assert!(scan.truncated, "drop={drop}");
            assert_eq!(
                scan.frames.len(),
                3,
                "drop={drop} keeps the complete prefix"
            );
        }
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        let clean = filled().scan();
        // Flip one bit in each frame region; scanning must never panic
        // and never return a frame with silently altered content.
        let total = filled().log_bytes();
        for i in 0..total {
            let mut log = filled();
            log.corrupt_bit(i, i as u8 % 8);
            let scan = log.scan();
            assert!(scan.frames.len() <= clean.frames.len());
            for (got, want) in scan.frames.iter().zip(&clean.frames) {
                assert_eq!(got, want, "byte {i}: prefix frames must be intact");
            }
        }
    }

    #[test]
    fn corrupt_length_field_cannot_overallocate() {
        let mut log = ChainLog::new();
        log.append(FRAME_TX, 0, b"x");
        // Force the len field to an absurd value; scan must just stop.
        for b in 9..17 {
            log.log[b] = 0xFF;
        }
        let scan = log.scan();
        assert!(scan.truncated);
        assert!(scan.frames.is_empty());
    }

    #[test]
    fn repair_truncates_then_appends_cleanly() {
        let mut log = filled();
        log.truncate_tail(5);
        let scan = log.repair();
        assert!(scan.truncated);
        assert_eq!(scan.frames.len(), 3);
        // Appending after repair yields a clean log again.
        log.append(FRAME_BLOCK, 2, b"replacement");
        let scan = log.scan();
        assert!(!scan.truncated);
        assert_eq!(scan.frames.len(), 4);
        assert_eq!(scan.frames[3].payload, b"replacement".to_vec());
    }

    #[test]
    fn snapshot_slot_replaces() {
        let mut log = ChainLog::new();
        assert_eq!(log.snapshot(), None);
        log.write_snapshot(5, vec![1, 2, 3]);
        log.write_snapshot(9, vec![4]);
        assert_eq!(log.snapshot(), Some((9, &[4u8][..])));
    }
}
