//! The storage subsystem role (§II-C).
//!
//! "The storage subsystem is responsible for permanently storing the
//! providers' data. It then matches data against available workloads and
//! gives the executors access to them, when authorized by the providers."
//!
//! Two backends implement the same trait (the §II-F API-compatibility
//! point): [`LocalStore`] keeps plaintext on provider-owned hardware,
//! while [`ThirdPartyStore`] — outsourced storage per Fig. 3 — holds only
//! sealed ciphertext and *published* (redacted) metadata, so the storage
//! operator never sees raw data. Access is mediated by provider-signed
//! [`AccessGrant`]s.

use crate::semantic::{Metadata, Ontology, Requirement};
use pds2_crypto::chacha20::{open as seal_open, seal, SealedBlob, KEY_LEN, NONCE_LEN};
use pds2_crypto::codec::{Encode, Encoder};
use pds2_crypto::merkle::MerkleTree;
use pds2_crypto::schnorr::{KeyPair, PublicKey, Signature};
use pds2_crypto::sha256::{sha256, Digest};
use std::collections::BTreeMap;

/// Content-derived identifier of a stored record.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RecordId(pub Digest);

impl RecordId {
    /// The id of a payload.
    pub fn of(payload: &[u8]) -> RecordId {
        RecordId(sha256(payload))
    }
}

/// A stored record: payload plus semantic annotations.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Raw payload bytes.
    pub payload: Vec<u8>,
    /// Full (unredacted) metadata.
    pub metadata: Metadata,
    /// Logical creation timestamp (provider clock).
    pub timestamp: u64,
}

/// Errors from storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// No record under that id.
    NotFound,
    /// Grant signature or fields invalid.
    InvalidGrant(&'static str),
    /// Sealed payload failed authentication.
    CorruptCiphertext,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NotFound => write!(f, "record not found"),
            StorageError::InvalidGrant(why) => write!(f, "invalid access grant: {why}"),
            StorageError::CorruptCiphertext => write!(f, "sealed payload failed to open"),
        }
    }
}

impl std::error::Error for StorageError {}

/// A provider-signed authorization for one executor to read one record for
/// one workload — the certificate flow in Fig. 2 of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct AccessGrant {
    /// The authorizing provider.
    pub provider: PublicKey,
    /// The record being shared.
    pub record: RecordId,
    /// The workload this grant is scoped to.
    pub workload_id: u64,
    /// Identity digest of the executor allowed to read (e.g. hash of its
    /// attestation public key).
    pub executor: Digest,
    /// Logical expiry time.
    pub expires_at: u64,
    /// Provider signature over all fields above.
    pub signature: Signature,
}

impl AccessGrant {
    fn payload_bytes(
        provider: &PublicKey,
        record: &RecordId,
        workload_id: u64,
        executor: &Digest,
        expires_at: u64,
    ) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(b"pds2-grant-v1");
        provider.encode(&mut enc);
        enc.put_digest(&record.0);
        enc.put_u64(workload_id);
        enc.put_digest(executor);
        enc.put_u64(expires_at);
        enc.finish()
    }

    /// Issues a signed grant.
    pub fn issue(
        provider: &KeyPair,
        record: RecordId,
        workload_id: u64,
        executor: Digest,
        expires_at: u64,
    ) -> AccessGrant {
        let payload = Self::payload_bytes(
            &provider.public,
            &record,
            workload_id,
            &executor,
            expires_at,
        );
        AccessGrant {
            provider: provider.public.clone(),
            record,
            workload_id,
            executor,
            expires_at,
            signature: provider.sign(&payload),
        }
    }

    /// Verifies signature and scoping for a given access attempt.
    pub fn verify(
        &self,
        record: RecordId,
        workload_id: u64,
        executor: &Digest,
        now: u64,
    ) -> Result<(), StorageError> {
        if self.record != record {
            return Err(StorageError::InvalidGrant("record mismatch"));
        }
        if self.workload_id != workload_id {
            return Err(StorageError::InvalidGrant("workload mismatch"));
        }
        if &self.executor != executor {
            return Err(StorageError::InvalidGrant("executor mismatch"));
        }
        if now > self.expires_at {
            return Err(StorageError::InvalidGrant("expired"));
        }
        let payload = Self::payload_bytes(
            &self.provider,
            &self.record,
            self.workload_id,
            &self.executor,
            self.expires_at,
        );
        if !self.provider.verify(&payload, &self.signature) {
            return Err(StorageError::InvalidGrant("bad signature"));
        }
        Ok(())
    }
}

/// The storage-subsystem interface shared by all backends.
pub trait StorageBackend {
    /// Stores a record, returning its content id.
    fn put(&mut self, record: Record) -> RecordId;

    /// Published metadata of one record (what the matcher may see).
    fn published_metadata(&self, id: RecordId) -> Option<Metadata>;

    /// All record ids.
    fn record_ids(&self) -> Vec<RecordId>;

    /// Number of records.
    fn len(&self) -> usize;

    /// True when empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finds records whose *published* metadata satisfies a requirement —
    /// the §II-C matching duty, performed without payload access.
    fn match_workload(&self, req: &Requirement, ontology: &Ontology) -> Vec<RecordId> {
        self.record_ids()
            .into_iter()
            .filter(|id| {
                self.published_metadata(*id)
                    .map(|m| req.matches(&m, ontology))
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Releases a payload to an executor carrying a valid grant.
    fn fetch_with_grant(
        &self,
        grant: &AccessGrant,
        executor: &Digest,
        now: u64,
    ) -> Result<Vec<u8>, StorageError>;

    /// Merkle root over all payloads (for on-chain dataset registration).
    fn content_root(&self) -> Digest;
}

/// Provider-owned storage: full plaintext, full metadata (Fig. 3 left).
#[derive(Default)]
pub struct LocalStore {
    records: BTreeMap<RecordId, Record>,
}

impl LocalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Direct record access (owner only — not part of the backend trait).
    pub fn get(&self, id: RecordId) -> Option<&Record> {
        self.records.get(&id)
    }
}

impl StorageBackend for LocalStore {
    fn put(&mut self, record: Record) -> RecordId {
        let id = RecordId::of(&record.payload);
        self.records.insert(id, record);
        id
    }

    fn published_metadata(&self, id: RecordId) -> Option<Metadata> {
        self.records.get(&id).map(|r| r.metadata.clone())
    }

    fn record_ids(&self) -> Vec<RecordId> {
        self.records.keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn fetch_with_grant(
        &self,
        grant: &AccessGrant,
        executor: &Digest,
        now: u64,
    ) -> Result<Vec<u8>, StorageError> {
        let record = self
            .records
            .get(&grant.record)
            .ok_or(StorageError::NotFound)?;
        grant.verify(grant.record, grant.workload_id, executor, now)?;
        Ok(record.payload.clone())
    }

    fn content_root(&self) -> Digest {
        let leaves: Vec<&[u8]> = self
            .records
            .values()
            .map(|r| r.payload.as_slice())
            .collect();
        MerkleTree::from_leaves(&leaves).root()
    }
}

/// Outsourced storage (Fig. 3 right): the operator holds sealed payloads
/// and only the provider-chosen *published* view of the metadata.
pub struct ThirdPartyStore {
    sealed: BTreeMap<RecordId, (SealedBlob, Metadata)>,
    provider_key: [u8; KEY_LEN],
    publish_level: u8,
    seal_counter: u64,
}

impl ThirdPartyStore {
    /// Creates a store for a provider. `publish_level` is the metadata
    /// detail level the provider is willing to reveal to the operator
    /// (the E10 leakage knob).
    pub fn new(provider_key: [u8; KEY_LEN], publish_level: u8) -> Self {
        ThirdPartyStore {
            sealed: BTreeMap::new(),
            provider_key,
            publish_level,
            seal_counter: 0,
        }
    }

    /// Decrypts a fetched payload (provider/executor side, with the key
    /// conveyed out-of-band through the TEE session).
    pub fn unseal_payload(key: &[u8; KEY_LEN], blob: &SealedBlob) -> Result<Vec<u8>, StorageError> {
        seal_open(key, blob).ok_or(StorageError::CorruptCiphertext)
    }
}

impl StorageBackend for ThirdPartyStore {
    fn put(&mut self, record: Record) -> RecordId {
        let id = RecordId::of(&record.payload);
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&self.seal_counter.to_le_bytes());
        self.seal_counter += 1;
        let blob = seal(&self.provider_key, nonce, &record.payload);
        let published = record.metadata.redact(self.publish_level);
        self.sealed.insert(id, (blob, published));
        id
    }

    fn published_metadata(&self, id: RecordId) -> Option<Metadata> {
        self.sealed.get(&id).map(|(_, m)| m.clone())
    }

    fn record_ids(&self) -> Vec<RecordId> {
        self.sealed.keys().copied().collect()
    }

    fn len(&self) -> usize {
        self.sealed.len()
    }

    fn fetch_with_grant(
        &self,
        grant: &AccessGrant,
        executor: &Digest,
        now: u64,
    ) -> Result<Vec<u8>, StorageError> {
        let (blob, _) = self
            .sealed
            .get(&grant.record)
            .ok_or(StorageError::NotFound)?;
        grant.verify(grant.record, grant.workload_id, executor, now)?;
        // The operator releases ciphertext only; decryption happens at the
        // executor with the provider-shared key.
        let mut enc = Encoder::new();
        enc.put_raw(&blob.nonce);
        enc.put_bytes(&blob.ciphertext);
        enc.put_digest(&blob.tag);
        Ok(enc.finish())
    }

    fn content_root(&self) -> Digest {
        // Commitment over ciphertexts: the operator cannot be asked to
        // commit to plaintext it cannot see.
        let leaves: Vec<&[u8]> = self
            .sealed
            .values()
            .map(|(b, _)| b.ciphertext.as_slice())
            .collect();
        MerkleTree::from_leaves(&leaves).root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::MetaValue;

    fn sample_record(i: u64) -> Record {
        Record {
            payload: format!("reading-{i}").into_bytes(),
            metadata: Metadata::new()
                .with(
                    "type",
                    MetaValue::Class("sensor/environment/temperature".into()),
                    0,
                )
                .with("sample-rate-hz", MetaValue::Num(1.0), 1)
                .with("owner-email", MetaValue::Str("x@example.com".into()), 5),
            timestamp: 100 + i,
        }
    }

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.declare("sensor/environment/temperature");
        o
    }

    #[test]
    fn local_store_roundtrip() {
        let mut s = LocalStore::new();
        let id = s.put(sample_record(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(id).unwrap().payload, b"reading-1");
        assert_eq!(id, RecordId::of(b"reading-1"));
    }

    #[test]
    fn matching_on_published_metadata() {
        let mut s = LocalStore::new();
        s.put(sample_record(1));
        s.put(sample_record(2));
        let o = ontology();
        let req = Requirement::HasClass {
            attr: "type".into(),
            class: "sensor/environment".into(),
        };
        assert_eq!(s.match_workload(&req, &o).len(), 2);
        let no_match = Requirement::HasClass {
            attr: "type".into(),
            class: "sensor/motion".into(),
        };
        assert!(s.match_workload(&no_match, &o).is_empty());
    }

    #[test]
    fn grant_flow_local() {
        let provider = KeyPair::from_seed(1);
        let executor_id = sha256(b"executor-1");
        let mut s = LocalStore::new();
        let id = s.put(sample_record(1));
        let grant = AccessGrant::issue(&provider, id, 7, executor_id, 1000);
        let payload = s.fetch_with_grant(&grant, &executor_id, 500).unwrap();
        assert_eq!(payload, b"reading-1");
    }

    #[test]
    fn grant_rejections() {
        let provider = KeyPair::from_seed(1);
        let executor_id = sha256(b"executor-1");
        let other_executor = sha256(b"executor-2");
        let mut s = LocalStore::new();
        let id = s.put(sample_record(1));
        let grant = AccessGrant::issue(&provider, id, 7, executor_id, 1000);

        // Wrong executor.
        assert_eq!(
            s.fetch_with_grant(&grant, &other_executor, 500)
                .unwrap_err(),
            StorageError::InvalidGrant("executor mismatch")
        );
        // Expired.
        assert_eq!(
            s.fetch_with_grant(&grant, &executor_id, 2000).unwrap_err(),
            StorageError::InvalidGrant("expired")
        );
        // Tampered scope.
        let mut forged = grant.clone();
        forged.workload_id = 8;
        assert_eq!(
            forged.verify(id, 8, &executor_id, 500).unwrap_err(),
            StorageError::InvalidGrant("bad signature")
        );
        // Missing record.
        let ghost = AccessGrant::issue(&provider, RecordId::of(b"ghost"), 7, executor_id, 1000);
        assert_eq!(
            s.fetch_with_grant(&ghost, &executor_id, 500).unwrap_err(),
            StorageError::NotFound
        );
    }

    #[test]
    fn third_party_store_never_sees_plaintext() {
        let key = [9u8; KEY_LEN];
        let mut s = ThirdPartyStore::new(key, 1);
        let record = sample_record(1);
        let id = s.put(record.clone());
        // Fetch returns ciphertext bytes, not the payload.
        let provider = KeyPair::from_seed(1);
        let executor_id = sha256(b"executor-1");
        let grant = AccessGrant::issue(&provider, id, 7, executor_id, 1000);
        let wire = s.fetch_with_grant(&grant, &executor_id, 500).unwrap();
        assert!(
            !wire
                .windows(record.payload.len())
                .any(|w| w == record.payload),
            "plaintext must not appear in the operator's response"
        );
    }

    #[test]
    fn third_party_metadata_is_redacted() {
        let mut s = ThirdPartyStore::new([0u8; KEY_LEN], 1);
        let id = s.put(sample_record(1));
        let published = s.published_metadata(id).unwrap();
        assert!(published.get("type").is_some());
        assert!(published.get("sample-rate-hz").is_some());
        assert!(
            published.get("owner-email").is_none(),
            "rank-5 attribute must not be published at level 1"
        );
    }

    #[test]
    fn sealed_payload_roundtrip_via_wire_format() {
        let key = [7u8; KEY_LEN];
        let mut s = ThirdPartyStore::new(key, 0);
        let id = s.put(sample_record(3));
        let provider = KeyPair::from_seed(1);
        let executor_id = sha256(b"ex");
        let grant = AccessGrant::issue(&provider, id, 1, executor_id, 10);
        let wire = s.fetch_with_grant(&grant, &executor_id, 5).unwrap();
        // Decode the wire format back into a SealedBlob.
        let mut dec = pds2_crypto::codec::Decoder::new(&wire);
        let nonce: [u8; NONCE_LEN] = dec.get_raw(NONCE_LEN).unwrap().try_into().unwrap();
        let ciphertext = dec.get_bytes().unwrap();
        let tag = dec.get_digest().unwrap();
        let blob = SealedBlob {
            nonce,
            ciphertext,
            tag,
        };
        let plain = ThirdPartyStore::unseal_payload(&key, &blob).unwrap();
        assert_eq!(plain, b"reading-3");
        // Wrong key fails.
        assert_eq!(
            ThirdPartyStore::unseal_payload(&[0u8; KEY_LEN], &blob).unwrap_err(),
            StorageError::CorruptCiphertext
        );
    }

    #[test]
    fn content_roots_commit_to_contents() {
        let mut s1 = LocalStore::new();
        s1.put(sample_record(1));
        let r1 = s1.content_root();
        s1.put(sample_record(2));
        assert_ne!(s1.content_root(), r1);
        // Empty store commits to the zero sentinel.
        assert_eq!(LocalStore::new().content_root(), Digest::ZERO);
    }

    #[test]
    fn matching_respects_publish_level() {
        // At level 0 the rate attribute is hidden; a requirement on it
        // cannot match (the E10 precision/leakage trade-off in miniature).
        let o = ontology();
        let req = Requirement::NumInRange {
            attr: "sample-rate-hz".into(),
            min: 0.5,
            max: 2.0,
        };
        let mut hidden = ThirdPartyStore::new([0u8; KEY_LEN], 0);
        hidden.put(sample_record(1));
        assert!(hidden.match_workload(&req, &o).is_empty());
        let mut open = ThirdPartyStore::new([0u8; KEY_LEN], 1);
        open.put(sample_record(1));
        assert_eq!(open.match_workload(&req, &o).len(), 1);
    }
}
