//! # pds2-storage
//!
//! The storage-subsystem role of PDS² (§II-C) and the data-discovery
//! machinery of §IV-C.
//!
//! - [`semantic`] — ontology with subsumption reasoning, semantic metadata
//!   with detail-ranked attributes, a workload precondition language, and
//!   leakage estimation for the discovery/privacy trade-off;
//! - [`store`] — content-addressed record stores behind one trait:
//!   provider-owned plaintext storage and outsourced sealed storage
//!   (Fig. 3's hardware configurations), workload matching over published
//!   metadata only, and provider-signed access grants gating payload
//!   release to executors;
//! - [`chainlog`] — the append-only, checksummed block/receipt log with
//!   a snapshot slot that makes chain state crash-recoverable
//!   (DESIGN.md §5g).

pub mod chainlog;
pub mod semantic;
pub mod store;

pub use chainlog::{ChainLog, Frame, ScanResult, FRAME_BLOCK, FRAME_TX};
pub use semantic::{MetaValue, Metadata, Ontology, Requirement};
pub use store::{
    AccessGrant, LocalStore, Record, RecordId, StorageBackend, StorageError, ThirdPartyStore,
};
