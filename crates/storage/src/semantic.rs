//! Semantic metadata, ontology reasoning and workload preconditions
//! (§IV-C "Data Discovery and Filtering").
//!
//! Providers annotate datasets with machine-readable metadata; workloads
//! carry predicates over that metadata. A small ontology (class taxonomy
//! with subsumption) lets a requirement for `sensor/environment` match a
//! record annotated `sensor/environment/temperature` — "automated
//! reasoning on the contents of the data and their relationships".
//!
//! The §IV-C trade-off — "between the amount of information leaked by the
//! metadata and the complexity of the verifiable requirements" — is made
//! measurable: every attribute carries a *detail rank*, providers publish
//! metadata redacted to a chosen detail level, and [`Metadata::leakage_bits`]
//! estimates how much the published view reveals. Experiment E10 sweeps
//! the detail level and reports matching precision/recall vs leakage.

use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use std::collections::BTreeMap;

/// A class taxonomy: `child -> parent` edges over slash-separated names.
///
/// Classes are identified by path-like strings (`"sensor/environment/
/// temperature"`); a class is a subclass of every prefix of its path, and
/// additional cross-links can be registered explicitly.
#[derive(Clone, Debug, Default)]
pub struct Ontology {
    extra_parents: BTreeMap<String, Vec<String>>,
    known: std::collections::BTreeSet<String>,
}

impl Ontology {
    /// An empty ontology (path-prefix subsumption still works).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a class (and implicitly all its path prefixes).
    pub fn declare(&mut self, class: &str) {
        let mut acc = String::new();
        for part in class.split('/') {
            if !acc.is_empty() {
                acc.push('/');
            }
            acc.push_str(part);
            self.known.insert(acc.clone());
        }
    }

    /// Adds an explicit subclass relation beyond path prefixes.
    pub fn add_subclass(&mut self, child: &str, parent: &str) {
        self.declare(child);
        self.declare(parent);
        self.extra_parents
            .entry(child.to_string())
            .or_default()
            .push(parent.to_string());
    }

    /// Number of declared classes (used in leakage estimation).
    pub fn class_count(&self) -> usize {
        self.known.len()
    }

    /// True iff `child` is `parent` or a (transitive) subclass of it.
    pub fn is_subclass(&self, child: &str, parent: &str) -> bool {
        if child == parent || is_path_prefix(parent, child) {
            return true;
        }
        // Walk explicit links (DFS with a visited set; ontologies are tiny).
        let mut stack: Vec<&str> = vec![child];
        let mut visited = std::collections::BTreeSet::new();
        while let Some(c) = stack.pop() {
            if !visited.insert(c.to_string()) {
                continue;
            }
            if c == parent || is_path_prefix(parent, c) {
                return true;
            }
            if let Some(parents) = self.extra_parents.get(c) {
                stack.extend(parents.iter().map(|s| s.as_str()));
            }
            // Path prefixes are also ancestors whose explicit links apply.
            if let Some(idx) = c.rfind('/') {
                let prefix = &c[..idx];
                stack.push(prefix);
            }
        }
        false
    }
}

fn is_path_prefix(parent: &str, child: &str) -> bool {
    child.len() > parent.len()
        && child.starts_with(parent)
        && child.as_bytes()[parent.len()] == b'/'
}

/// A metadata attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetaValue {
    /// Free-text value.
    Str(String),
    /// Numeric value.
    Num(f64),
    /// Ontology class reference.
    Class(String),
}

impl Encode for MetaValue {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            MetaValue::Str(s) => {
                enc.put_u8(0);
                enc.put_str(s);
            }
            MetaValue::Num(v) => {
                enc.put_u8(1);
                enc.put_f64(*v);
            }
            MetaValue::Class(c) => {
                enc.put_u8(2);
                enc.put_str(c);
            }
        }
    }
}

impl Decode for MetaValue {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(MetaValue::Str(dec.get_str()?)),
            1 => Ok(MetaValue::Num(dec.get_f64()?)),
            2 => Ok(MetaValue::Class(dec.get_str()?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// One metadata attribute: value plus a detail rank controlling when it is
/// published (rank 0 = always public, higher = more sensitive).
#[derive(Clone, Debug, PartialEq)]
pub struct Attribute {
    /// The value.
    pub value: MetaValue,
    /// Detail rank: the attribute appears in views of level >= rank.
    pub detail_rank: u8,
}

/// A dataset's semantic annotations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metadata {
    attrs: BTreeMap<String, Attribute>,
}

impl Metadata {
    /// Empty metadata.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an attribute with a detail rank (builder style).
    pub fn with(mut self, key: &str, value: MetaValue, detail_rank: u8) -> Self {
        self.attrs
            .insert(key.to_string(), Attribute { value, detail_rank });
        self
    }

    /// Looks up an attribute value.
    pub fn get(&self, key: &str) -> Option<&MetaValue> {
        self.attrs.get(key).map(|a| &a.value)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if no attributes are present.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The published view at a given detail level: only attributes with
    /// `detail_rank <= level` survive.
    pub fn redact(&self, level: u8) -> Metadata {
        Metadata {
            attrs: self
                .attrs
                .iter()
                .filter(|(_, a)| a.detail_rank <= level)
                .map(|(k, a)| (k.clone(), a.clone()))
                .collect(),
        }
    }

    /// Rough information content of the published view, in bits: the
    /// quantity the §IV-C trade-off balances against matchability.
    pub fn leakage_bits(&self, ontology: &Ontology) -> f64 {
        self.attrs
            .values()
            .map(|a| match &a.value {
                // A class reveals ~log2(#classes) bits.
                MetaValue::Class(_) => (ontology.class_count().max(2) as f64).log2(),
                // A numeric attribute published at full precision: ~16 bits
                // of useful range in practice.
                MetaValue::Num(_) => 16.0,
                // Free text: estimate from length (4 bits/char, capped).
                MetaValue::Str(s) => (s.len() as f64 * 4.0).min(64.0),
            })
            .sum()
    }
}

/// A workload precondition over metadata.
#[derive(Clone, Debug, PartialEq)]
pub enum Requirement {
    /// Attribute `attr` must reference `class` or a subclass of it.
    HasClass {
        /// Attribute name.
        attr: String,
        /// Required (super)class.
        class: String,
    },
    /// Numeric attribute within `[min, max]`.
    NumInRange {
        /// Attribute name.
        attr: String,
        /// Inclusive lower bound.
        min: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// String attribute equals a value exactly.
    StrEquals {
        /// Attribute name.
        attr: String,
        /// Expected value.
        value: String,
    },
    /// Attribute merely present.
    Exists {
        /// Attribute name.
        attr: String,
    },
    /// All sub-requirements hold.
    All(Vec<Requirement>),
    /// Any sub-requirement holds.
    Any(Vec<Requirement>),
    /// Sub-requirement does not hold.
    Not(Box<Requirement>),
}

impl Requirement {
    /// Evaluates the requirement against (published) metadata.
    pub fn matches(&self, meta: &Metadata, ontology: &Ontology) -> bool {
        match self {
            Requirement::HasClass { attr, class } => match meta.get(attr) {
                Some(MetaValue::Class(c)) => ontology.is_subclass(c, class),
                _ => false,
            },
            Requirement::NumInRange { attr, min, max } => match meta.get(attr) {
                Some(MetaValue::Num(v)) => *v >= *min && *v <= *max,
                _ => false,
            },
            Requirement::StrEquals { attr, value } => match meta.get(attr) {
                Some(MetaValue::Str(s)) => s == value,
                _ => false,
            },
            Requirement::Exists { attr } => meta.get(attr).is_some(),
            Requirement::All(reqs) => reqs.iter().all(|r| r.matches(meta, ontology)),
            Requirement::Any(reqs) => reqs.iter().any(|r| r.matches(meta, ontology)),
            Requirement::Not(r) => !r.matches(meta, ontology),
        }
    }

    /// Number of atomic predicates (complexity measure for E10).
    pub fn complexity(&self) -> usize {
        match self {
            Requirement::All(reqs) | Requirement::Any(reqs) => {
                reqs.iter().map(|r| r.complexity()).sum()
            }
            Requirement::Not(r) => r.complexity(),
            _ => 1,
        }
    }
}

impl Encode for Requirement {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Requirement::HasClass { attr, class } => {
                enc.put_u8(0);
                enc.put_str(attr);
                enc.put_str(class);
            }
            Requirement::NumInRange { attr, min, max } => {
                enc.put_u8(1);
                enc.put_str(attr);
                enc.put_f64(*min);
                enc.put_f64(*max);
            }
            Requirement::StrEquals { attr, value } => {
                enc.put_u8(2);
                enc.put_str(attr);
                enc.put_str(value);
            }
            Requirement::Exists { attr } => {
                enc.put_u8(3);
                enc.put_str(attr);
            }
            Requirement::All(reqs) => {
                enc.put_u8(4);
                enc.put_seq(reqs);
            }
            Requirement::Any(reqs) => {
                enc.put_u8(5);
                enc.put_seq(reqs);
            }
            Requirement::Not(r) => {
                enc.put_u8(6);
                r.encode(enc);
            }
        }
    }
}

impl Decode for Requirement {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(Requirement::HasClass {
                attr: dec.get_str()?,
                class: dec.get_str()?,
            }),
            1 => Ok(Requirement::NumInRange {
                attr: dec.get_str()?,
                min: dec.get_f64()?,
                max: dec.get_f64()?,
            }),
            2 => Ok(Requirement::StrEquals {
                attr: dec.get_str()?,
                value: dec.get_str()?,
            }),
            3 => Ok(Requirement::Exists {
                attr: dec.get_str()?,
            }),
            4 => Ok(Requirement::All(dec.get_seq()?)),
            5 => Ok(Requirement::Any(dec.get_seq()?)),
            6 => Ok(Requirement::Not(Box::new(Requirement::decode(dec)?))),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ontology() -> Ontology {
        let mut o = Ontology::new();
        o.declare("sensor/environment/temperature");
        o.declare("sensor/environment/humidity");
        o.declare("sensor/motion/accelerometer");
        o.add_subclass("wearable/heart-rate", "sensor/health");
        o
    }

    fn temp_meta() -> Metadata {
        Metadata::new()
            .with(
                "type",
                MetaValue::Class("sensor/environment/temperature".into()),
                0,
            )
            .with("sample-rate-hz", MetaValue::Num(1.0), 1)
            .with("region", MetaValue::Str("EU".into()), 1)
            .with("device-serial", MetaValue::Str("X9-123".into()), 3)
    }

    #[test]
    fn path_prefix_subsumption() {
        let o = ontology();
        assert!(o.is_subclass("sensor/environment/temperature", "sensor/environment"));
        assert!(o.is_subclass("sensor/environment/temperature", "sensor"));
        assert!(o.is_subclass("sensor", "sensor"));
        assert!(!o.is_subclass("sensor", "sensor/environment"));
        assert!(!o.is_subclass("sensor/motion/accelerometer", "sensor/environment"));
        // No accidental string-prefix matches.
        assert!(!o.is_subclass("sensors-other", "sensor"));
    }

    #[test]
    fn explicit_subclass_links() {
        let o = ontology();
        assert!(o.is_subclass("wearable/heart-rate", "sensor/health"));
        assert!(o.is_subclass("wearable/heart-rate", "sensor"));
        assert!(!o.is_subclass("sensor/health", "wearable/heart-rate"));
    }

    #[test]
    fn requirements_match_semantics() {
        let o = ontology();
        let m = temp_meta();
        let req = Requirement::All(vec![
            Requirement::HasClass {
                attr: "type".into(),
                class: "sensor/environment".into(),
            },
            Requirement::NumInRange {
                attr: "sample-rate-hz".into(),
                min: 0.5,
                max: 10.0,
            },
            Requirement::StrEquals {
                attr: "region".into(),
                value: "EU".into(),
            },
        ]);
        assert!(req.matches(&m, &o));
        assert_eq!(req.complexity(), 3);

        let wrong_region = Requirement::StrEquals {
            attr: "region".into(),
            value: "US".into(),
        };
        assert!(!wrong_region.matches(&m, &o));
        assert!(Requirement::Not(Box::new(wrong_region)).matches(&m, &o));
    }

    #[test]
    fn any_and_exists() {
        let o = ontology();
        let m = temp_meta();
        let req = Requirement::Any(vec![
            Requirement::Exists {
                attr: "nonexistent".into(),
            },
            Requirement::Exists {
                attr: "region".into(),
            },
        ]);
        assert!(req.matches(&m, &o));
    }

    #[test]
    fn missing_attribute_fails_closed() {
        let o = ontology();
        let m = Metadata::new();
        assert!(!Requirement::HasClass {
            attr: "type".into(),
            class: "sensor".into()
        }
        .matches(&m, &o));
        assert!(!Requirement::NumInRange {
            attr: "x".into(),
            min: 0.0,
            max: 1.0
        }
        .matches(&m, &o));
    }

    #[test]
    fn type_mismatch_fails_closed() {
        let o = ontology();
        let m = Metadata::new().with("type", MetaValue::Str("temperature".into()), 0);
        // A string is not a class reference.
        assert!(!Requirement::HasClass {
            attr: "type".into(),
            class: "sensor".into()
        }
        .matches(&m, &o));
    }

    #[test]
    fn redaction_removes_sensitive_attributes() {
        let m = temp_meta();
        let public = m.redact(0);
        assert_eq!(public.len(), 1);
        assert!(public.get("type").is_some());
        assert!(public.get("device-serial").is_none());
        let detailed = m.redact(3);
        assert_eq!(detailed.len(), 4);
    }

    #[test]
    fn leakage_grows_with_detail_level() {
        let o = ontology();
        let m = temp_meta();
        let l0 = m.redact(0).leakage_bits(&o);
        let l1 = m.redact(1).leakage_bits(&o);
        let l3 = m.redact(3).leakage_bits(&o);
        assert!(l0 < l1 && l1 < l3, "{l0} {l1} {l3}");
        assert!(l0 > 0.0);
    }

    #[test]
    fn redaction_affects_matching() {
        let o = ontology();
        let m = temp_meta();
        let req = Requirement::StrEquals {
            attr: "region".into(),
            value: "EU".into(),
        };
        // region has rank 1: invisible at level 0, matchable at level 1.
        assert!(!req.matches(&m.redact(0), &o));
        assert!(req.matches(&m.redact(1), &o));
    }

    #[test]
    fn requirement_codec_roundtrip() {
        let req = Requirement::All(vec![
            Requirement::HasClass {
                attr: "t".into(),
                class: "sensor".into(),
            },
            Requirement::Any(vec![
                Requirement::NumInRange {
                    attr: "r".into(),
                    min: 0.0,
                    max: 5.0,
                },
                Requirement::Not(Box::new(Requirement::Exists { attr: "x".into() })),
            ]),
        ]);
        let bytes = req.to_bytes();
        assert_eq!(Requirement::from_bytes(&bytes).unwrap(), req);
    }
}
