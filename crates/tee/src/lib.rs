//! # pds2-tee
//!
//! A simulated trusted execution environment — the **TEE** building block
//! the PDS² paper selects as "the most promising solution" in §III-B.
//!
//! Real SGX hardware is replaced by a faithful software model of the
//! *contract* the marketplace relies on:
//!
//! - [`measurement`] — MRENCLAVE-style code identity;
//! - [`platform`] — platforms that launch enclaves, with sealed storage
//!   bound to (platform, measurement) and per-call cost charging;
//! - [`attestation`] — hardware-signed quotes, a verifier registry and
//!   revocation (the Intel-attestation-service analogue);
//! - [`oblivious`] — side-channel-free primitives (branchless select/swap,
//!   oblivious access, bitonic sort), per Ohrimenko et al. cited in the
//!   paper;
//! - [`cost`] — an SGX performance model (transition cost, EPC paging,
//!   memory-encryption factor) so the E4 comparison charges realistic
//!   overheads instead of pretending enclaves are free.
//!
//! See DESIGN.md for the substitution argument (paper → simulation).

pub mod attestation;
pub mod cost;
pub mod measurement;
pub mod oblivious;
pub mod platform;

pub use attestation::{AttestationError, AttestationService, PlatformId, Quote};
pub use cost::{CostMeter, CostModel};
pub use measurement::{EnclaveCode, Measurement};
pub use platform::{Enclave, Platform};
