//! Remote attestation for simulated enclaves.
//!
//! Each [`Platform`](crate::platform::Platform) owns a hardware root key
//! (the analogue of the SGX attestation key provisioned by Intel). A
//! [`Quote`] binds an enclave measurement and caller-chosen report data to
//! that key. Verifiers check the signature against the platform vendor's
//! registry and consult a revocation list — the PDS² governance layer
//! rejects executors whose platforms have been revoked.

use crate::measurement::Measurement;
use pds2_crypto::codec::Encoder;
use pds2_crypto::schnorr::{KeyPair, PublicKey, Signature};
use pds2_crypto::sha256::Digest;
use std::collections::{HashMap, HashSet};

/// Identifier of a hardware platform (hash of its attestation public key).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PlatformId(pub Digest);

impl std::fmt::Display for PlatformId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "platform:{}", self.0.short())
    }
}

impl PlatformId {
    /// Derives the platform id from its attestation public key.
    pub fn of(pk: &PublicKey) -> PlatformId {
        PlatformId(pds2_crypto::sha256::sha256(&pk.to_bytes()))
    }
}

/// An attestation quote: proof that `measurement` runs on `platform` and
/// asserted `report_data` from inside the enclave.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quote {
    /// The quoted enclave's measurement.
    pub measurement: Measurement,
    /// Issuing platform.
    pub platform: PlatformId,
    /// 32 bytes of caller data (e.g. a key-exchange commitment).
    pub report_data: Digest,
    /// Signature by the platform's hardware key.
    pub signature: Signature,
}

impl Quote {
    fn signing_payload(
        measurement: &Measurement,
        platform: &PlatformId,
        report_data: &Digest,
    ) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(b"pds2-quote-v1");
        enc.put_digest(&measurement.0);
        enc.put_digest(&platform.0);
        enc.put_digest(report_data);
        enc.finish()
    }

    /// Issues a quote with the platform's hardware key (crate-internal:
    /// only `Platform` can sign).
    pub(crate) fn issue(hw_key: &KeyPair, measurement: Measurement, report_data: Digest) -> Quote {
        let platform = PlatformId::of(&hw_key.public);
        let payload = Self::signing_payload(&measurement, &platform, &report_data);
        Quote {
            measurement,
            platform,
            report_data,
            signature: hw_key.sign(&payload),
        }
    }
}

/// Why quote verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestationError {
    /// The platform is not registered with the verifier.
    UnknownPlatform,
    /// The platform appears on the revocation list.
    RevokedPlatform,
    /// The quote signature does not verify.
    BadSignature,
    /// The measurement does not match the expected workload code.
    MeasurementMismatch {
        /// What the verifier expected.
        expected: Measurement,
        /// What the quote carried.
        got: Measurement,
    },
}

impl std::fmt::Display for AttestationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttestationError::UnknownPlatform => write!(f, "unknown platform"),
            AttestationError::RevokedPlatform => write!(f, "revoked platform"),
            AttestationError::BadSignature => write!(f, "invalid quote signature"),
            AttestationError::MeasurementMismatch { expected, got } => {
                write!(f, "measurement mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for AttestationError {}

/// The attestation verifier: knows registered platforms and revocations
/// (the analogue of Intel's attestation service and TCB recovery lists).
#[derive(Default, Clone, Debug)]
pub struct AttestationService {
    platforms: HashMap<PlatformId, PublicKey>,
    revoked: HashSet<PlatformId>,
}

impl AttestationService {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a platform's attestation public key.
    pub fn register_platform(&mut self, pk: PublicKey) -> PlatformId {
        let id = PlatformId::of(&pk);
        self.platforms.insert(id, pk);
        id
    }

    /// Puts a platform on the revocation list (e.g. after a disclosed
    /// side-channel compromise).
    pub fn revoke(&mut self, id: PlatformId) {
        self.revoked.insert(id);
    }

    /// Number of registered platforms.
    pub fn platform_count(&self) -> usize {
        self.platforms.len()
    }

    /// Verifies a quote's signature and platform status.
    pub fn verify(&self, quote: &Quote) -> Result<(), AttestationError> {
        if self.revoked.contains(&quote.platform) {
            return Err(AttestationError::RevokedPlatform);
        }
        let pk = self
            .platforms
            .get(&quote.platform)
            .ok_or(AttestationError::UnknownPlatform)?;
        let payload =
            Quote::signing_payload(&quote.measurement, &quote.platform, &quote.report_data);
        if !pk.verify(&payload, &quote.signature) {
            return Err(AttestationError::BadSignature);
        }
        Ok(())
    }

    /// Verifies a quote *and* that it attests the expected code.
    pub fn verify_expecting(
        &self,
        quote: &Quote,
        expected: Measurement,
    ) -> Result<(), AttestationError> {
        self.verify(quote)?;
        if quote.measurement != expected {
            return Err(AttestationError::MeasurementMismatch {
                expected,
                got: quote.measurement,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_crypto::sha256::sha256;

    fn setup() -> (AttestationService, KeyPair, PlatformId) {
        let hw = KeyPair::from_seed(100);
        let mut svc = AttestationService::new();
        let id = svc.register_platform(hw.public.clone());
        (svc, hw, id)
    }

    #[test]
    fn valid_quote_verifies() {
        let (svc, hw, _) = setup();
        let m = Measurement::of(b"code", 1);
        let q = Quote::issue(&hw, m, sha256(b"report"));
        assert!(svc.verify(&q).is_ok());
        assert!(svc.verify_expecting(&q, m).is_ok());
    }

    #[test]
    fn unknown_platform_rejected() {
        let (svc, _, _) = setup();
        let rogue = KeyPair::from_seed(999);
        let q = Quote::issue(&rogue, Measurement::of(b"c", 1), sha256(b"r"));
        assert_eq!(svc.verify(&q), Err(AttestationError::UnknownPlatform));
    }

    #[test]
    fn revoked_platform_rejected() {
        let (mut svc, hw, id) = setup();
        svc.revoke(id);
        let q = Quote::issue(&hw, Measurement::of(b"c", 1), sha256(b"r"));
        assert_eq!(svc.verify(&q), Err(AttestationError::RevokedPlatform));
    }

    #[test]
    fn tampered_measurement_rejected() {
        let (svc, hw, _) = setup();
        let mut q = Quote::issue(&hw, Measurement::of(b"good", 1), sha256(b"r"));
        q.measurement = Measurement::of(b"evil", 1);
        assert_eq!(svc.verify(&q), Err(AttestationError::BadSignature));
    }

    #[test]
    fn tampered_report_data_rejected() {
        let (svc, hw, _) = setup();
        let mut q = Quote::issue(&hw, Measurement::of(b"c", 1), sha256(b"honest"));
        q.report_data = sha256(b"forged");
        assert_eq!(svc.verify(&q), Err(AttestationError::BadSignature));
    }

    #[test]
    fn measurement_mismatch_detected() {
        let (svc, hw, _) = setup();
        let actual = Measurement::of(b"running-code", 1);
        let expected = Measurement::of(b"approved-code", 1);
        let q = Quote::issue(&hw, actual, sha256(b"r"));
        match svc.verify_expecting(&q, expected) {
            Err(AttestationError::MeasurementMismatch { expected: e, got }) => {
                assert_eq!(e, expected);
                assert_eq!(got, actual);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn quote_from_one_platform_not_valid_as_another() {
        let (mut svc, hw1, _) = setup();
        let hw2 = KeyPair::from_seed(101);
        let id2 = svc.register_platform(hw2.public.clone());
        let mut q = Quote::issue(&hw1, Measurement::of(b"c", 1), sha256(b"r"));
        q.platform = id2; // claim it came from platform 2
        assert_eq!(svc.verify(&q), Err(AttestationError::BadSignature));
    }
}
