//! The simulated hardware platform and its enclaves.
//!
//! A [`Platform`] models one SGX-capable machine: it owns a hardware
//! attestation key and a fused seal secret, launches [`Enclave`]s from
//! measured code, and charges every enclave call to the platform's
//! [`crate::cost::CostModel`].
//!
//! Sealing policy is MRENCLAVE-like: the sealing key is derived from the
//! platform secret *and* the enclave measurement, so data sealed by one
//! enclave version cannot be opened by different code — and never by the
//! (potentially hostile) platform owner, which is the property PDS² relies
//! on so that "trust in \[executors\] becomes unnecessary" (§II-E).

use crate::attestation::{PlatformId, Quote};
use crate::cost::{CostMeter, CostModel};
use crate::measurement::{EnclaveCode, Measurement};
use parking_lot::Mutex;
use pds2_crypto::chacha20::{open as aead_open, seal as aead_seal, SealedBlob, KEY_LEN, NONCE_LEN};
use pds2_crypto::hmac::hkdf;
use pds2_crypto::schnorr::KeyPair;
use pds2_crypto::sha256::Digest;
use std::sync::Arc;

/// A simulated SGX-capable machine.
pub struct Platform {
    hw_key: KeyPair,
    seal_secret: [u8; KEY_LEN],
    /// Performance model used to charge enclave work.
    pub cost_model: CostModel,
    launched: Mutex<Vec<Measurement>>,
}

impl Platform {
    /// Creates a platform with keys derived deterministically from `seed`.
    pub fn new(seed: u64, cost_model: CostModel) -> Arc<Platform> {
        let hw_key = KeyPair::from_seed(seed ^ 0x7ee_5eed);
        let secret = hkdf(b"pds2-platform-seal", &seed.to_le_bytes(), b"fuse", KEY_LEN);
        Arc::new(Platform {
            hw_key,
            seal_secret: secret.try_into().unwrap(),
            cost_model,
            launched: Mutex::new(Vec::new()),
        })
    }

    /// The platform's identity (hash of its attestation public key).
    pub fn id(&self) -> PlatformId {
        PlatformId::of(&self.hw_key.public)
    }

    /// The attestation public key to register with an
    /// [`AttestationService`](crate::attestation::AttestationService).
    pub fn attestation_key(&self) -> pds2_crypto::schnorr::PublicKey {
        self.hw_key.public.clone()
    }

    /// Launches an enclave from measured code.
    pub fn launch(self: &Arc<Self>, code: &EnclaveCode) -> Enclave {
        let measurement = code.measurement();
        self.launched.lock().push(measurement);
        Enclave {
            platform: Arc::clone(self),
            measurement,
            name: code.name.clone(),
            meter: CostMeter::default(),
            seal_counter: 0,
        }
    }

    /// Measurements of all enclaves this platform has launched.
    pub fn launched_measurements(&self) -> Vec<Measurement> {
        self.launched.lock().clone()
    }

    /// Derives the sealing key for a given measurement (platform-internal).
    fn sealing_key(&self, measurement: &Measurement) -> [u8; KEY_LEN] {
        hkdf(
            b"pds2-seal-key",
            &self.seal_secret,
            measurement.0.as_bytes(),
            KEY_LEN,
        )
        .try_into()
        .unwrap()
    }
}

/// A running enclave instance.
pub struct Enclave {
    platform: Arc<Platform>,
    measurement: Measurement,
    name: String,
    meter: CostMeter,
    seal_counter: u64,
}

impl Enclave {
    /// The enclave's measured identity.
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hosting platform's id.
    pub fn platform_id(&self) -> PlatformId {
        self.platform.id()
    }

    /// Accumulated simulated cost of this enclave's work.
    pub fn meter(&self) -> CostMeter {
        self.meter
    }

    /// Produces an attestation quote over `report_data`.
    ///
    /// Charges one enclave transition (the quote ecall).
    pub fn attest(&mut self, report_data: Digest) -> Quote {
        self.meter.charge(&self.platform.cost_model, 0, 0, 1);
        Quote::issue(&self.platform.hw_key, self.measurement, report_data)
    }

    /// Runs `f` "inside" the enclave, charging `plain_compute_ns` of work
    /// over `working_set_bytes` of enclave memory plus one transition.
    pub fn execute<T>(
        &mut self,
        plain_compute_ns: u64,
        working_set_bytes: u64,
        f: impl FnOnce() -> T,
    ) -> T {
        self.meter.charge(
            &self.platform.cost_model,
            plain_compute_ns,
            working_set_bytes,
            1,
        );
        f()
    }

    /// Seals data to this enclave's identity on this platform.
    pub fn seal(&mut self, plaintext: &[u8]) -> SealedBlob {
        let key = self.platform.sealing_key(&self.measurement);
        let mut nonce = [0u8; NONCE_LEN];
        nonce[..8].copy_from_slice(&self.seal_counter.to_le_bytes());
        self.seal_counter += 1;
        self.meter
            .charge(&self.platform.cost_model, 0, plaintext.len() as u64, 1);
        aead_seal(&key, nonce, plaintext)
    }

    /// Unseals data previously sealed by the *same code on the same
    /// platform*. Returns `None` on any mismatch or tampering.
    pub fn unseal(&mut self, blob: &SealedBlob) -> Option<Vec<u8>> {
        let key = self.platform.sealing_key(&self.measurement);
        self.meter.charge(
            &self.platform.cost_model,
            0,
            blob.ciphertext.len() as u64,
            1,
        );
        aead_open(&key, blob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::AttestationService;
    use pds2_crypto::sha256::sha256;

    fn platform(seed: u64) -> Arc<Platform> {
        Platform::new(seed, CostModel::default())
    }

    fn code(name: &str, v: u32) -> EnclaveCode {
        EnclaveCode::new(name, v, format!("binary-of-{name}-v{v}").into_bytes())
    }

    #[test]
    fn launch_records_measurement() {
        let p = platform(1);
        let e = p.launch(&code("trainer", 1));
        assert_eq!(p.launched_measurements(), vec![e.measurement()]);
        assert_eq!(e.name(), "trainer");
        assert_eq!(e.platform_id(), p.id());
    }

    #[test]
    fn attest_and_verify_end_to_end() {
        let p = platform(2);
        let mut svc = AttestationService::new();
        svc.register_platform(p.attestation_key());
        let c = code("trainer", 1);
        let mut e = p.launch(&c);
        let q = e.attest(sha256(b"session-key-commitment"));
        svc.verify_expecting(&q, c.measurement()).unwrap();
        assert_eq!(e.meter().transitions, 1);
    }

    #[test]
    fn seal_unseal_same_enclave() {
        let p = platform(3);
        let mut e = p.launch(&code("store", 1));
        let blob = e.seal(b"model weights");
        assert_eq!(e.unseal(&blob).unwrap(), b"model weights");
    }

    #[test]
    fn different_code_cannot_unseal() {
        let p = platform(4);
        let mut e1 = p.launch(&code("honest", 1));
        let blob = e1.seal(b"secret");
        let mut e2 = p.launch(&code("evil", 1));
        assert!(e2.unseal(&blob).is_none());
    }

    #[test]
    fn different_version_cannot_unseal() {
        // MRENCLAVE policy: even an upgrade loses access (by design here).
        let p = platform(5);
        let mut v1 = p.launch(&code("app", 1));
        let blob = v1.seal(b"state");
        let mut v2 = p.launch(&code("app", 2));
        assert!(v2.unseal(&blob).is_none());
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let c = code("app", 1);
        let p1 = platform(6);
        let p2 = platform(7);
        let mut e1 = p1.launch(&c);
        let blob = e1.seal(b"state");
        let mut e2 = p2.launch(&c);
        assert!(e2.unseal(&blob).is_none());
    }

    #[test]
    fn tampered_blob_rejected() {
        let p = platform(8);
        let mut e = p.launch(&code("app", 1));
        let mut blob = e.seal(b"state");
        blob.ciphertext[0] ^= 0xff;
        assert!(e.unseal(&blob).is_none());
    }

    #[test]
    fn seal_nonces_are_unique() {
        let p = platform(9);
        let mut e = p.launch(&code("app", 1));
        let b1 = e.seal(b"same");
        let b2 = e.seal(b"same");
        assert_ne!(b1.nonce, b2.nonce);
        assert_ne!(b1.ciphertext, b2.ciphertext);
    }

    #[test]
    fn execute_charges_meter() {
        let p = Platform::new(
            10,
            CostModel {
                transition_ns: 100,
                compute_factor: 2.0,
                ..CostModel::default()
            },
        );
        let mut e = p.launch(&code("app", 1));
        let result = e.execute(1000, 0, || 21 * 2);
        assert_eq!(result, 42);
        // 1000 plain + 1000 factor overhead + 100 transition.
        assert_eq!(e.meter().charged_ns, 2100);
    }

    #[test]
    fn two_platforms_have_distinct_ids() {
        assert_ne!(platform(11).id(), platform(12).id());
    }
}
