//! Oblivious primitives for side-channel-resistant enclave code.
//!
//! §III-B of the paper notes that SGX "side-channel leaks are possible but
//! can be avoided using oblivious primitives" (Ohrimenko et al., USENIX
//! Sec'16). These helpers make control flow and memory-access patterns
//! independent of secret data:
//!
//! - [`o_select`] — branchless conditional select;
//! - [`o_swap`] — branchless conditional swap;
//! - [`o_access`] — array read that touches every element;
//! - [`o_sort`] — bitonic sort, whose compare-exchange sequence depends
//!   only on the input length.
//!
//! In this simulation the primitives are functionally real (the data-
//! independent access pattern is structurally guaranteed), even though no
//! physical side channel exists to defend against.

/// Branchless select: returns `a` if `cond` is true, else `b`.
#[inline]
pub fn o_select(cond: bool, a: u64, b: u64) -> u64 {
    let mask = (cond as u64).wrapping_neg(); // all-ones or all-zeros
    (a & mask) | (b & !mask)
}

/// Branchless select for `f64` (via bit patterns).
#[inline]
pub fn o_select_f64(cond: bool, a: f64, b: f64) -> f64 {
    f64::from_bits(o_select(cond, a.to_bits(), b.to_bits()))
}

/// Branchless conditional swap: swaps `a` and `b` iff `cond`.
#[inline]
pub fn o_swap(cond: bool, a: &mut u64, b: &mut u64) {
    let mask = (cond as u64).wrapping_neg();
    let diff = (*a ^ *b) & mask;
    *a ^= diff;
    *b ^= diff;
}

/// Oblivious array access: reads `data[index]` while touching every
/// element, so the memory trace is independent of `index`.
pub fn o_access(data: &[u64], index: usize) -> u64 {
    assert!(index < data.len(), "index out of bounds");
    let mut out = 0u64;
    for (i, &v) in data.iter().enumerate() {
        out |= o_select(i == index, v, 0);
    }
    out
}

/// Oblivious bitonic sort (ascending). The sequence of compare-exchange
/// positions depends only on `data.len()`, never on the values.
///
/// Operates on the next power of two by virtually padding with `u64::MAX`.
pub fn o_sort(data: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let padded = n.next_power_of_two();
    let mut buf: Vec<u64> = Vec::with_capacity(padded);
    buf.extend_from_slice(data);
    buf.resize(padded, u64::MAX);

    // Iterative bitonic network.
    let mut k = 2;
    while k <= padded {
        let mut j = k / 2;
        while j > 0 {
            for i in 0..padded {
                let l = i ^ j;
                if l > i {
                    let ascending = i & k == 0;
                    let (lo, hi) = (i.min(l), i.max(l));
                    let (left, right) = buf.split_at_mut(hi);
                    let a = &mut left[lo];
                    let b = &mut right[0];
                    // Compare-exchange, direction fixed by position.
                    let should_swap = if ascending { *a > *b } else { *a < *b };
                    o_swap(should_swap, a, b);
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    data.copy_from_slice(&buf[..n]);
}

/// Counts compare-exchange operations the bitonic network performs for a
/// given input length — used to verify data-independence in tests and to
/// charge cost models.
pub fn o_sort_comparisons(n: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    let padded = n.next_power_of_two() as u64;
    let stages = padded.trailing_zeros() as u64;
    // Bitonic network: padded/2 comparators per substage, stages*(stages+1)/2 substages.
    (padded / 2) * stages * (stages + 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn select_behaviour() {
        assert_eq!(o_select(true, 7, 9), 7);
        assert_eq!(o_select(false, 7, 9), 9);
        assert_eq!(o_select_f64(true, 1.5, -2.5), 1.5);
        assert_eq!(o_select_f64(false, 1.5, -2.5), -2.5);
    }

    #[test]
    fn swap_behaviour() {
        let (mut a, mut b) = (1u64, 2u64);
        o_swap(false, &mut a, &mut b);
        assert_eq!((a, b), (1, 2));
        o_swap(true, &mut a, &mut b);
        assert_eq!((a, b), (2, 1));
    }

    #[test]
    fn access_matches_indexing() {
        let data: Vec<u64> = (10..20).collect();
        for i in 0..data.len() {
            assert_eq!(o_access(&data, i), data[i]);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn access_rejects_oob() {
        let _ = o_access(&[1, 2, 3], 3);
    }

    #[test]
    fn sort_sorts() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [0usize, 1, 2, 3, 7, 8, 9, 100, 255, 256] {
            let mut data: Vec<u64> = (0..n).map(|_| rng.random_range(0..1000)).collect();
            let mut expected = data.clone();
            expected.sort_unstable();
            o_sort(&mut data);
            assert_eq!(data, expected, "n={n}");
        }
    }

    #[test]
    fn sort_handles_duplicates_and_extremes() {
        let mut data = vec![5, 5, 5, 0, u64::MAX, 1, u64::MAX];
        let mut expected = data.clone();
        expected.sort_unstable();
        o_sort(&mut data);
        assert_eq!(data, expected);
    }

    #[test]
    fn comparison_count_is_data_independent() {
        // The formula depends only on n.
        assert_eq!(o_sort_comparisons(0), 0);
        assert_eq!(o_sort_comparisons(1), 0);
        assert_eq!(o_sort_comparisons(2), 1);
        // n=4: padded=4, stages=2, comparators = 2 * 3 = 6.
        assert_eq!(o_sort_comparisons(4), 6);
        // n=5..8 all pad to 8: 4 * 6 = 24.
        for n in 5..=8 {
            assert_eq!(o_sort_comparisons(n), 24);
        }
    }
}
