//! Enclave code measurement (the MRENCLAVE analogue).
//!
//! An enclave's identity is the SHA-256 digest of its canonical code bytes
//! plus its declared version. Attestation quotes embed this measurement so
//! that data providers can verify *which* workload binary will touch their
//! data before granting access — the §II-E requirement that executors have
//! "no way to tamper with the results without being detected".

use pds2_crypto::sha256::{Digest, Sha256};

/// The measured identity of a piece of enclave code.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Measurement(pub Digest);

impl Measurement {
    /// Measures code bytes and a version counter.
    pub fn of(code: &[u8], version: u32) -> Measurement {
        let mut h = Sha256::new();
        h.update(b"pds2-enclave-measurement");
        h.update(&version.to_le_bytes());
        h.update(&(code.len() as u64).to_le_bytes());
        h.update(code);
        Measurement(h.finalize())
    }

    /// Hex rendering.
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }
}

impl std::fmt::Display for Measurement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mrenclave:{}", self.0.short())
    }
}

/// A description of enclave code: the bytes that stand in for the binary,
/// plus a human-readable name and version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnclaveCode {
    /// Human-readable identifier (e.g. "logistic-trainer").
    pub name: String,
    /// Version; bumping it changes the measurement.
    pub version: u32,
    /// Canonical code bytes (in a real SGX build, the signed binary).
    pub code: Vec<u8>,
}

impl EnclaveCode {
    /// Creates a code description.
    pub fn new(name: impl Into<String>, version: u32, code: impl Into<Vec<u8>>) -> Self {
        EnclaveCode {
            name: name.into(),
            version,
            code: code.into(),
        }
    }

    /// The code's measurement.
    pub fn measurement(&self) -> Measurement {
        Measurement::of(&self.code, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_deterministic() {
        let c = EnclaveCode::new("trainer", 1, b"code".to_vec());
        assert_eq!(c.measurement(), c.measurement());
    }

    #[test]
    fn measurement_changes_with_code() {
        let a = EnclaveCode::new("trainer", 1, b"code-a".to_vec());
        let b = EnclaveCode::new("trainer", 1, b"code-b".to_vec());
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn measurement_changes_with_version() {
        let a = EnclaveCode::new("trainer", 1, b"code".to_vec());
        let b = EnclaveCode::new("trainer", 2, b"code".to_vec());
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn measurement_ignores_name() {
        // Names are for humans; identity is code+version only.
        let a = EnclaveCode::new("x", 1, b"code".to_vec());
        let b = EnclaveCode::new("y", 1, b"code".to_vec());
        assert_eq!(a.measurement(), b.measurement());
    }

    #[test]
    fn length_prefix_prevents_extension_ambiguity() {
        // (code="ab", v=1) must differ from (code="a", v=1) padded tricks.
        let a = Measurement::of(b"ab", 1);
        let b = Measurement::of(b"a", 1);
        assert_ne!(a, b);
    }
}
