//! SGX performance cost model.
//!
//! The simulation charges the published overhead sources of real SGX
//! hardware:
//!
//! - **enclave transitions** (ecall/ocall): ~8,000–12,000 cycles each in
//!   the literature; defaults to 3.5 µs round-trip;
//! - **EPC paging**: working sets beyond the Enclave Page Cache limit
//!   (96 MiB usable on v1 hardware) incur encrypted page swaps, charged
//!   per 4 KiB page;
//! - **memory-encryption slowdown**: a multiplicative factor on in-enclave
//!   compute (MEE overhead, typically 1.2–2× for memory-bound code).
//!
//! Ablation A2 sweeps these parameters to show which regime dominates.

/// Parameters of the simulated SGX platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// One ecall+ocall round trip, in nanoseconds.
    pub transition_ns: u64,
    /// Usable Enclave Page Cache in bytes (v1 hardware: ~96 MiB usable).
    pub epc_limit_bytes: u64,
    /// Page size for EPC paging.
    pub page_bytes: u64,
    /// Cost of swapping one page in/out of the EPC, in nanoseconds.
    pub paging_ns_per_page: u64,
    /// Multiplicative slowdown on in-enclave compute (memory encryption).
    pub compute_factor: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            transition_ns: 3_500,
            epc_limit_bytes: 96 * 1024 * 1024,
            page_bytes: 4096,
            paging_ns_per_page: 40_000,
            compute_factor: 1.3,
        }
    }
}

impl CostModel {
    /// A model with paging disabled (infinite EPC), for ablations.
    pub fn no_paging() -> Self {
        CostModel {
            epc_limit_bytes: u64::MAX,
            ..Default::default()
        }
    }

    /// Estimated overhead added by the enclave to a task, in nanoseconds.
    ///
    /// * `plain_compute_ns` — what the same work costs outside the enclave;
    /// * `working_set_bytes` — peak enclave memory the task touches;
    /// * `transitions` — number of ecall/ocall round trips.
    pub fn overhead_ns(
        &self,
        plain_compute_ns: u64,
        working_set_bytes: u64,
        transitions: u64,
    ) -> u64 {
        let compute_extra = (plain_compute_ns as f64 * (self.compute_factor - 1.0)).max(0.0) as u64;
        let transition_cost = transitions.saturating_mul(self.transition_ns);
        let paging_cost = if working_set_bytes > self.epc_limit_bytes {
            let excess = working_set_bytes - self.epc_limit_bytes;
            let pages = excess.div_ceil(self.page_bytes);
            pages.saturating_mul(self.paging_ns_per_page)
        } else {
            0
        };
        compute_extra + transition_cost + paging_cost
    }

    /// Total in-enclave time for a task (plain compute + overhead).
    pub fn total_ns(&self, plain_compute_ns: u64, working_set_bytes: u64, transitions: u64) -> u64 {
        plain_compute_ns + self.overhead_ns(plain_compute_ns, working_set_bytes, transitions)
    }
}

/// Running meter for a single enclave's charged costs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostMeter {
    /// Total charged nanoseconds (simulated).
    pub charged_ns: u64,
    /// Transitions performed.
    pub transitions: u64,
    /// Pages swapped.
    pub pages_swapped: u64,
}

impl CostMeter {
    /// Adds a task execution to the meter.
    pub fn charge(
        &mut self,
        model: &CostModel,
        plain_compute_ns: u64,
        working_set_bytes: u64,
        transitions: u64,
    ) {
        self.charged_ns += model.total_ns(plain_compute_ns, working_set_bytes, transitions);
        self.transitions += transitions;
        if working_set_bytes > model.epc_limit_bytes {
            self.pages_swapped +=
                (working_set_bytes - model.epc_limit_bytes).div_ceil(model.page_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_overhead_for_free_task() {
        let m = CostModel::default();
        assert_eq!(m.overhead_ns(0, 0, 0), 0);
    }

    #[test]
    fn transitions_charged_linearly() {
        let m = CostModel::default();
        assert_eq!(m.overhead_ns(0, 0, 10), 10 * m.transition_ns);
    }

    #[test]
    fn compute_factor_applies() {
        let m = CostModel {
            compute_factor: 2.0,
            ..Default::default()
        };
        assert_eq!(m.overhead_ns(1_000_000, 0, 0), 1_000_000);
        assert_eq!(m.total_ns(1_000_000, 0, 0), 2_000_000);
    }

    #[test]
    fn paging_kicks_in_above_epc_limit() {
        let m = CostModel {
            epc_limit_bytes: 1024 * 1024,
            page_bytes: 4096,
            paging_ns_per_page: 1000,
            compute_factor: 1.0,
            transition_ns: 0,
        };
        assert_eq!(m.overhead_ns(0, 1024 * 1024, 0), 0, "at limit: no paging");
        // 8 KiB over the limit = 2 pages.
        assert_eq!(m.overhead_ns(0, 1024 * 1024 + 8192, 0), 2000);
        // Partial page rounds up.
        assert_eq!(m.overhead_ns(0, 1024 * 1024 + 1, 0), 1000);
    }

    #[test]
    fn no_paging_model_never_pages() {
        let m = CostModel::no_paging();
        assert_eq!(m.overhead_ns(0, u64::MAX / 2, 0), 0);
    }

    #[test]
    fn meter_accumulates() {
        let m = CostModel {
            transition_ns: 100,
            compute_factor: 1.0,
            epc_limit_bytes: 1000,
            page_bytes: 100,
            paging_ns_per_page: 10,
        };
        let mut meter = CostMeter::default();
        meter.charge(&m, 500, 1200, 2);
        assert_eq!(meter.transitions, 2);
        assert_eq!(meter.pages_swapped, 2);
        assert_eq!(meter.charged_ns, 500 + 200 + 20);
        meter.charge(&m, 0, 0, 1);
        assert_eq!(meter.transitions, 3);
    }
}
