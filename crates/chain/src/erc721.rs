//! Non-fungible tokens — the ERC-721 analogue.
//!
//! §III-A: NFTs "can be particularly useful to model data and workload code
//! in PDS²". The marketplace mints one NFT per registered dataset (the
//! token's content hash commits to the data without revealing it) and one
//! per workload-code package.

use crate::address::Address;
use crate::event::{Event, EventSink};
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::Digest;
use std::collections::BTreeMap;

/// Identifier of an NFT.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NftId(pub u64);

impl Encode for NftId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
}

impl Decode for NftId {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(NftId(dec.get_u64()?))
    }
}

/// What kind of marketplace asset an NFT represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssetKind {
    /// A registered dataset (content hash of the provider's data).
    Dataset,
    /// A workload-code package (content hash of the enclave binary).
    WorkloadCode,
    /// Anything else.
    Other,
}

impl Encode for AssetKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            AssetKind::Dataset => 0,
            AssetKind::WorkloadCode => 1,
            AssetKind::Other => 2,
        });
    }
}

impl Decode for AssetKind {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(AssetKind::Dataset),
            1 => Ok(AssetKind::WorkloadCode),
            2 => Ok(AssetKind::Other),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Operations accepted by the ERC-721 module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Erc721Op {
    /// Mints an NFT to the sender.
    Mint {
        /// Asset class.
        kind: AssetKind,
        /// Content hash the token commits to.
        content: Digest,
        /// Optional display label.
        label: String,
    },
    /// Transfers an owned NFT.
    Transfer {
        /// Token to transfer.
        id: NftId,
        /// Recipient.
        to: Address,
    },
    /// Approves one address to take the token.
    Approve {
        /// Token.
        id: NftId,
        /// Approved taker (or None to clear).
        approved: Option<Address>,
    },
    /// Transfers using an approval.
    TransferFrom {
        /// Token.
        id: NftId,
        /// Recipient.
        to: Address,
    },
    /// Burns an owned NFT.
    Burn {
        /// Token to burn.
        id: NftId,
    },
}

const N_MINT: u8 = 0;
const N_TRANSFER: u8 = 1;
const N_APPROVE: u8 = 2;
const N_TRANSFER_FROM: u8 = 3;
const N_BURN: u8 = 4;

impl Encode for Erc721Op {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Erc721Op::Mint {
                kind,
                content,
                label,
            } => {
                enc.put_u8(N_MINT);
                kind.encode(enc);
                enc.put_digest(content);
                enc.put_str(label);
            }
            Erc721Op::Transfer { id, to } => {
                enc.put_u8(N_TRANSFER);
                id.encode(enc);
                to.encode(enc);
            }
            Erc721Op::Approve { id, approved } => {
                enc.put_u8(N_APPROVE);
                id.encode(enc);
                enc.put_option(approved);
            }
            Erc721Op::TransferFrom { id, to } => {
                enc.put_u8(N_TRANSFER_FROM);
                id.encode(enc);
                to.encode(enc);
            }
            Erc721Op::Burn { id } => {
                enc.put_u8(N_BURN);
                id.encode(enc);
            }
        }
    }
}

impl Decode for Erc721Op {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            N_MINT => Ok(Erc721Op::Mint {
                kind: AssetKind::decode(dec)?,
                content: dec.get_digest()?,
                label: dec.get_str()?,
            }),
            N_TRANSFER => Ok(Erc721Op::Transfer {
                id: NftId::decode(dec)?,
                to: Address::decode(dec)?,
            }),
            N_APPROVE => Ok(Erc721Op::Approve {
                id: NftId::decode(dec)?,
                approved: dec.get_option()?,
            }),
            N_TRANSFER_FROM => Ok(Erc721Op::TransferFrom {
                id: NftId::decode(dec)?,
                to: Address::decode(dec)?,
            }),
            N_BURN => Ok(Erc721Op::Burn {
                id: NftId::decode(dec)?,
            }),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Errors from NFT operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NftError {
    /// Token does not exist.
    UnknownToken,
    /// Caller is neither owner nor approved.
    NotAuthorized,
    /// The same content hash was already minted for this asset kind.
    DuplicateContent,
}

impl std::fmt::Display for NftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NftError::UnknownToken => write!(f, "unknown NFT"),
            NftError::NotAuthorized => write!(f, "caller not owner or approved"),
            NftError::DuplicateContent => write!(f, "content hash already minted"),
        }
    }
}

impl std::error::Error for NftError {}

/// Metadata stored for one NFT.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NftInfo {
    /// Current owner.
    pub owner: Address,
    /// Asset class.
    pub kind: AssetKind,
    /// Committed content hash.
    pub content: Digest,
    /// Display label.
    pub label: String,
    /// Approved taker, if any.
    pub approved: Option<Address>,
}

/// The ERC-721 module holding every NFT on the chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Erc721Module {
    tokens: BTreeMap<NftId, NftInfo>,
    /// Duplicate-prevention index: (kind tag, content) -> id.
    by_content: BTreeMap<(u8, Digest), NftId>,
    next_id: u64,
}

fn kind_tag(kind: AssetKind) -> u8 {
    match kind {
        AssetKind::Dataset => 0,
        AssetKind::WorkloadCode => 1,
        AssetKind::Other => 2,
    }
}

impl Erc721Module {
    /// Applies an operation on behalf of `sender`.
    pub fn apply(
        &mut self,
        sender: Address,
        op: &Erc721Op,
        events: &mut EventSink,
    ) -> Result<Option<NftId>, NftError> {
        match op {
            Erc721Op::Mint {
                kind,
                content,
                label,
            } => {
                let key = (kind_tag(*kind), *content);
                if self.by_content.contains_key(&key) {
                    return Err(NftError::DuplicateContent);
                }
                let id = NftId(self.next_id);
                self.next_id += 1;
                self.tokens.insert(
                    id,
                    NftInfo {
                        owner: sender,
                        kind: *kind,
                        content: *content,
                        label: label.clone(),
                        approved: None,
                    },
                );
                self.by_content.insert(key, id);
                events.emit(Event::token(
                    "erc721.mint",
                    format!("id={} owner={sender} content={}", id.0, content.short()),
                ));
                Ok(Some(id))
            }
            Erc721Op::Transfer { id, to } => {
                let info = self.tokens.get_mut(id).ok_or(NftError::UnknownToken)?;
                if info.owner != sender {
                    return Err(NftError::NotAuthorized);
                }
                info.owner = *to;
                info.approved = None;
                events.emit(Event::token(
                    "erc721.transfer",
                    format!("id={} from={sender} to={to}", id.0),
                ));
                Ok(None)
            }
            Erc721Op::Approve { id, approved } => {
                let info = self.tokens.get_mut(id).ok_or(NftError::UnknownToken)?;
                if info.owner != sender {
                    return Err(NftError::NotAuthorized);
                }
                info.approved = *approved;
                Ok(None)
            }
            Erc721Op::TransferFrom { id, to } => {
                let info = self.tokens.get_mut(id).ok_or(NftError::UnknownToken)?;
                if info.approved != Some(sender) {
                    return Err(NftError::NotAuthorized);
                }
                let from = info.owner;
                info.owner = *to;
                info.approved = None;
                events.emit(Event::token(
                    "erc721.transfer_from",
                    format!("id={} from={from} to={to} by={sender}", id.0),
                ));
                Ok(None)
            }
            Erc721Op::Burn { id } => {
                let info = self.tokens.get(id).ok_or(NftError::UnknownToken)?;
                if info.owner != sender {
                    return Err(NftError::NotAuthorized);
                }
                let key = (kind_tag(info.kind), info.content);
                self.tokens.remove(id);
                self.by_content.remove(&key);
                events.emit(Event::token("erc721.burn", format!("id={}", id.0)));
                Ok(None)
            }
        }
    }

    /// Owner query.
    pub fn owner_of(&self, id: NftId) -> Option<Address> {
        self.tokens.get(&id).map(|t| t.owner)
    }

    /// Full metadata query.
    pub fn info(&self, id: NftId) -> Option<&NftInfo> {
        self.tokens.get(&id)
    }

    /// Looks up an NFT by its committed content hash.
    pub fn find_by_content(&self, kind: AssetKind, content: &Digest) -> Option<NftId> {
        self.by_content.get(&(kind_tag(kind), *content)).copied()
    }

    /// Number of live tokens.
    pub fn count(&self) -> usize {
        self.tokens.len()
    }

    /// Next NFT id to be assigned (0 when nothing was ever minted).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// All live tokens with metadata.
    pub(crate) fn token_entries(&self) -> impl Iterator<Item = (NftId, &NftInfo)> + '_ {
        self.tokens.iter().map(|(id, t)| (*id, t))
    }

    /// Canonical digest of module state (for state roots).
    pub fn state_digest(&self) -> Digest {
        let mut enc = Encoder::new();
        enc.put_u64(self.next_id);
        enc.put_u64(self.tokens.len() as u64);
        for (id, t) in &self.tokens {
            id.encode(&mut enc);
            t.owner.encode(&mut enc);
            t.kind.encode(&mut enc);
            enc.put_digest(&t.content);
            enc.put_str(&t.label);
            enc.put_option(&t.approved);
        }
        pds2_crypto::sha256(&enc.finish())
    }
}

impl Encode for NftInfo {
    fn encode(&self, enc: &mut Encoder) {
        self.owner.encode(enc);
        self.kind.encode(enc);
        enc.put_digest(&self.content);
        enc.put_str(&self.label);
        enc.put_option(&self.approved);
    }
}

impl Decode for NftInfo {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(NftInfo {
            owner: Address::decode(dec)?,
            kind: AssetKind::decode(dec)?,
            content: dec.get_digest()?,
            label: dec.get_str()?,
            approved: dec.get_option()?,
        })
    }
}

// Snapshot codec (crash recovery). The `by_content` index is derived
// from the tokens on decode rather than serialized.
impl Encode for Erc721Module {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.next_id);
        enc.put_u64(self.tokens.len() as u64);
        for (id, t) in &self.tokens {
            id.encode(enc);
            t.encode(enc);
        }
    }
}

impl Decode for Erc721Module {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let next_id = dec.get_u64()?;
        let n = dec.get_u64()? as usize;
        let mut tokens = BTreeMap::new();
        let mut by_content = BTreeMap::new();
        for _ in 0..n {
            let id = NftId::decode(dec)?;
            let info = NftInfo::decode(dec)?;
            by_content.insert((kind_tag(info.kind), info.content), id);
            tokens.insert(id, info);
        }
        Ok(Erc721Module {
            tokens,
            by_content,
            next_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_crypto::{sha256, KeyPair};

    fn addr(seed: u64) -> Address {
        Address::of(&KeyPair::from_seed(seed).public)
    }

    fn mint(m: &mut Erc721Module, owner: Address, label: &str) -> NftId {
        let mut ev = EventSink::new();
        m.apply(
            owner,
            &Erc721Op::Mint {
                kind: AssetKind::Dataset,
                content: sha256(label.as_bytes()),
                label: label.into(),
            },
            &mut ev,
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn mint_and_query() {
        let mut m = Erc721Module::default();
        let alice = addr(1);
        let id = mint(&mut m, alice, "sensor-data-1");
        assert_eq!(m.owner_of(id), Some(alice));
        assert_eq!(m.count(), 1);
        assert_eq!(
            m.find_by_content(AssetKind::Dataset, &sha256(b"sensor-data-1")),
            Some(id)
        );
    }

    #[test]
    fn duplicate_content_rejected() {
        let mut m = Erc721Module::default();
        let alice = addr(1);
        mint(&mut m, alice, "data");
        let mut ev = EventSink::new();
        // Even a different sender cannot re-mint the same content: this is
        // the §IV-B "prevent the user from creating multiple copies and
        // reselling them" defence at the governance layer.
        assert_eq!(
            m.apply(
                addr(2),
                &Erc721Op::Mint {
                    kind: AssetKind::Dataset,
                    content: sha256(b"data"),
                    label: "copy".into()
                },
                &mut ev
            )
            .unwrap_err(),
            NftError::DuplicateContent
        );
    }

    #[test]
    fn same_content_different_kind_allowed() {
        let mut m = Erc721Module::default();
        let mut ev = EventSink::new();
        let content = sha256(b"bytes");
        m.apply(
            addr(1),
            &Erc721Op::Mint {
                kind: AssetKind::Dataset,
                content,
                label: "d".into(),
            },
            &mut ev,
        )
        .unwrap();
        m.apply(
            addr(1),
            &Erc721Op::Mint {
                kind: AssetKind::WorkloadCode,
                content,
                label: "w".into(),
            },
            &mut ev,
        )
        .unwrap();
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn transfer_requires_ownership() {
        let mut m = Erc721Module::default();
        let (alice, bob) = (addr(1), addr(2));
        let id = mint(&mut m, alice, "data");
        let mut ev = EventSink::new();
        assert_eq!(
            m.apply(bob, &Erc721Op::Transfer { id, to: bob }, &mut ev)
                .unwrap_err(),
            NftError::NotAuthorized
        );
        m.apply(alice, &Erc721Op::Transfer { id, to: bob }, &mut ev)
            .unwrap();
        assert_eq!(m.owner_of(id), Some(bob));
    }

    #[test]
    fn approval_workflow() {
        let mut m = Erc721Module::default();
        let (alice, bob, carol) = (addr(1), addr(2), addr(3));
        let id = mint(&mut m, alice, "data");
        let mut ev = EventSink::new();
        m.apply(
            alice,
            &Erc721Op::Approve {
                id,
                approved: Some(bob),
            },
            &mut ev,
        )
        .unwrap();
        // Carol is not approved.
        assert_eq!(
            m.apply(carol, &Erc721Op::TransferFrom { id, to: carol }, &mut ev)
                .unwrap_err(),
            NftError::NotAuthorized
        );
        m.apply(bob, &Erc721Op::TransferFrom { id, to: carol }, &mut ev)
            .unwrap();
        assert_eq!(m.owner_of(id), Some(carol));
        // Approval cleared on transfer.
        assert_eq!(
            m.apply(bob, &Erc721Op::TransferFrom { id, to: bob }, &mut ev)
                .unwrap_err(),
            NftError::NotAuthorized
        );
    }

    #[test]
    fn burn_frees_content() {
        let mut m = Erc721Module::default();
        let alice = addr(1);
        let id = mint(&mut m, alice, "data");
        let mut ev = EventSink::new();
        m.apply(alice, &Erc721Op::Burn { id }, &mut ev).unwrap();
        assert_eq!(m.owner_of(id), None);
        assert_eq!(m.count(), 0);
        // Content can be minted again after burn.
        let id2 = mint(&mut m, alice, "data");
        assert_ne!(id, id2, "ids are never reused");
    }

    #[test]
    fn op_codec_roundtrip() {
        let ops = vec![
            Erc721Op::Mint {
                kind: AssetKind::WorkloadCode,
                content: sha256(b"x"),
                label: "l".into(),
            },
            Erc721Op::Transfer {
                id: NftId(3),
                to: addr(1),
            },
            Erc721Op::Approve {
                id: NftId(3),
                approved: None,
            },
            Erc721Op::TransferFrom {
                id: NftId(3),
                to: addr(2),
            },
            Erc721Op::Burn { id: NftId(9) },
        ];
        for op in ops {
            assert_eq!(Erc721Op::from_bytes(&op.to_bytes()).unwrap(), op);
        }
    }

    #[test]
    fn state_digest_tracks_changes() {
        let mut m = Erc721Module::default();
        let d0 = m.state_digest();
        mint(&mut m, addr(1), "data");
        assert_ne!(d0, m.state_digest());
    }
}
