//! Gas metering and the dynamic base fee.
//!
//! Gas bounds work per transaction and per block, and `gas_used` is the
//! cost metric experiment E3 reports per marketplace action. On top of
//! the meter sits an EIP-1559-style fee market: every block carries a
//! base fee derived from its parent's gas usage by [`next_base_fee`], so
//! heavy traffic degrades by price instead of by collapse. The arithmetic
//! is pure integer math over `u128` intermediates — deterministic on
//! every platform and pinned by golden values in this module's tests.

/// Base cost of any transaction (Ethereum's 21 000 analogue).
pub const TX_BASE: u64 = 21_000;
/// Per-byte cost of transaction payload.
pub const PER_BYTE: u64 = 16;
/// Cost of one fungible-token operation.
pub const ERC20_OP: u64 = 5_000;
/// Cost of one NFT operation.
pub const ERC721_OP: u64 = 8_000;
/// Cost of deploying a contract instance.
pub const DEPLOY: u64 = 32_000;
/// Base cost of a contract call (before contract-charged gas).
pub const CALL_BASE: u64 = 2_500;
/// Cost of emitting one event.
pub const EVENT: u64 = 375;
/// Cost per 32-byte word a contract reads or writes to its state.
pub const STORAGE_WORD: u64 = 200;

/// Ratio between the block gas limit and the base-fee target
/// (EIP-1559's elasticity multiplier): the base fee is stable when a
/// block consumes `block_gas_limit / ELASTICITY` gas.
pub const ELASTICITY: u64 = 2;
/// Maximum per-block base-fee change is `1/BASE_FEE_MAX_CHANGE_DENOM`
/// of the current base fee (12.5%, as on Ethereum).
pub const BASE_FEE_MAX_CHANGE_DENOM: u64 = 8;

/// The base fee of the block following a parent with base fee
/// `parent_base_fee` that consumed `parent_gas_used` of a
/// `block_gas_limit` budget.
///
/// EIP-1559 update rule in pure integer arithmetic:
///
/// ```text
/// target = block_gas_limit / ELASTICITY
/// used == target  ->  unchanged
/// used >  target  ->  base + max(1, base * (used - target) / target / 8)
/// used <  target  ->  base - base * (target - used) / target / 8
/// ```
///
/// The increase is floored at 1 so a congested chain escapes a zero base
/// fee; the decrease has no floor, so an idle chain decays back to zero
/// (free transactions — the legacy behaviour — are the uncongested
/// steady state).
pub fn next_base_fee(parent_base_fee: u64, parent_gas_used: u64, block_gas_limit: u64) -> u64 {
    let target = (block_gas_limit / ELASTICITY).max(1);
    match parent_gas_used.cmp(&target) {
        std::cmp::Ordering::Equal => parent_base_fee,
        std::cmp::Ordering::Greater => {
            let excess = (parent_gas_used - target) as u128;
            let delta = (parent_base_fee as u128 * excess
                / target as u128
                / BASE_FEE_MAX_CHANGE_DENOM as u128)
                .max(1);
            parent_base_fee.saturating_add(delta.min(u64::MAX as u128) as u64)
        }
        std::cmp::Ordering::Less => {
            let shortfall = (target - parent_gas_used) as u128;
            let delta = parent_base_fee as u128 * shortfall
                / target as u128
                / BASE_FEE_MAX_CHANGE_DENOM as u128;
            parent_base_fee - delta as u64
        }
    }
}

/// A per-transaction gas meter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GasMeter {
    limit: u64,
    used: u64,
}

/// Raised when a transaction exceeds its gas limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfGas;

impl std::fmt::Display for OutOfGas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out of gas")
    }
}

impl std::error::Error for OutOfGas {}

impl GasMeter {
    /// Creates a meter with the transaction's gas limit.
    pub fn new(limit: u64) -> GasMeter {
        GasMeter { limit, used: 0 }
    }

    /// Charges `amount` gas, failing if the limit would be exceeded.
    pub fn charge(&mut self, amount: u64) -> Result<(), OutOfGas> {
        let new_used = self.used.saturating_add(amount);
        if new_used > self.limit {
            self.used = self.limit;
            return Err(OutOfGas);
        }
        self.used = new_used;
        Ok(())
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Remaining budget.
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_within_limit() {
        let mut m = GasMeter::new(100);
        m.charge(60).unwrap();
        assert_eq!(m.used(), 60);
        assert_eq!(m.remaining(), 40);
        m.charge(40).unwrap();
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn charge_over_limit_fails_and_exhausts() {
        let mut m = GasMeter::new(100);
        m.charge(90).unwrap();
        assert_eq!(m.charge(11), Err(OutOfGas));
        // Out-of-gas consumes the whole budget (as on Ethereum).
        assert_eq!(m.used(), 100);
    }

    /// Golden values for the base-fee trajectory: pinned integers so any
    /// change to the update rule is a deliberate, visible diff.
    #[test]
    fn base_fee_golden_values() {
        const LIMIT: u64 = 30_000_000; // target 15M
                                       // At target: unchanged.
        assert_eq!(next_base_fee(1_000, 15_000_000, LIMIT), 1_000);
        // Full block: +12.5%.
        assert_eq!(next_base_fee(1_000, 30_000_000, LIMIT), 1_125);
        // Empty block: -12.5%.
        assert_eq!(next_base_fee(1_000, 0, LIMIT), 875);
        // Half-way between target and full: +6.25%.
        assert_eq!(next_base_fee(1_000, 22_500_000, LIMIT), 1_062);
        // Congestion escapes a zero base fee (increase floored at 1)...
        assert_eq!(next_base_fee(0, 30_000_000, LIMIT), 1);
        // ...and the idle chain decays back to exactly zero.
        assert_eq!(next_base_fee(0, 0, LIMIT), 0);
        assert_eq!(next_base_fee(7, 0, LIMIT), 7); // 7/8 rounds to 0 delta
        assert_eq!(next_base_fee(8, 0, LIMIT), 7);
        // Ten consecutive full blocks from 1 000 (compounding +12.5%).
        let mut fee = 1_000;
        let mut trajectory = Vec::new();
        for _ in 0..10 {
            fee = next_base_fee(fee, LIMIT, LIMIT);
            trajectory.push(fee);
        }
        assert_eq!(
            trajectory,
            [1_125, 1_265, 1_423, 1_600, 1_800, 2_025, 2_278, 2_562, 2_882, 3_242]
        );
    }

    #[test]
    fn base_fee_extremes_do_not_overflow() {
        // Huge base fee and gas values stay within u64 via u128 interm.
        let f = next_base_fee(u64::MAX / 2, u64::MAX, u64::MAX);
        assert!(f >= u64::MAX / 2);
        assert_eq!(
            next_base_fee(u64::MAX, 0, u64::MAX),
            u64::MAX - u64::MAX / 8
        );
        // Degenerate 0/1-gas block limits do not divide by zero.
        assert_eq!(next_base_fee(100, 0, 0), 100 - 100 / 8);
        assert_eq!(next_base_fee(100, 5, 1), next_base_fee(100, 5, 2));
    }

    #[test]
    fn saturating_charge() {
        let mut m = GasMeter::new(u64::MAX - 1);
        m.charge(u64::MAX - 2).unwrap();
        assert_eq!(
            m.charge(u64::MAX),
            Err(OutOfGas),
            "saturating add still trips the limit"
        );
    }
}
