//! Gas metering.
//!
//! Gas is not paid for in currency here (no fee market); it bounds work per
//! transaction and per block, and `gas_used` is the cost metric experiment
//! E3 reports per marketplace action.

/// Base cost of any transaction (Ethereum's 21 000 analogue).
pub const TX_BASE: u64 = 21_000;
/// Per-byte cost of transaction payload.
pub const PER_BYTE: u64 = 16;
/// Cost of one fungible-token operation.
pub const ERC20_OP: u64 = 5_000;
/// Cost of one NFT operation.
pub const ERC721_OP: u64 = 8_000;
/// Cost of deploying a contract instance.
pub const DEPLOY: u64 = 32_000;
/// Base cost of a contract call (before contract-charged gas).
pub const CALL_BASE: u64 = 2_500;
/// Cost of emitting one event.
pub const EVENT: u64 = 375;
/// Cost per 32-byte word a contract reads or writes to its state.
pub const STORAGE_WORD: u64 = 200;

/// A per-transaction gas meter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GasMeter {
    limit: u64,
    used: u64,
}

/// Raised when a transaction exceeds its gas limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfGas;

impl std::fmt::Display for OutOfGas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out of gas")
    }
}

impl std::error::Error for OutOfGas {}

impl GasMeter {
    /// Creates a meter with the transaction's gas limit.
    pub fn new(limit: u64) -> GasMeter {
        GasMeter { limit, used: 0 }
    }

    /// Charges `amount` gas, failing if the limit would be exceeded.
    pub fn charge(&mut self, amount: u64) -> Result<(), OutOfGas> {
        let new_used = self.used.saturating_add(amount);
        if new_used > self.limit {
            self.used = self.limit;
            return Err(OutOfGas);
        }
        self.used = new_used;
        Ok(())
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Remaining budget.
    pub fn remaining(&self) -> u64 {
        self.limit - self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_within_limit() {
        let mut m = GasMeter::new(100);
        m.charge(60).unwrap();
        assert_eq!(m.used(), 60);
        assert_eq!(m.remaining(), 40);
        m.charge(40).unwrap();
        assert_eq!(m.remaining(), 0);
    }

    #[test]
    fn charge_over_limit_fails_and_exhausts() {
        let mut m = GasMeter::new(100);
        m.charge(90).unwrap();
        assert_eq!(m.charge(11), Err(OutOfGas));
        // Out-of-gas consumes the whole budget (as on Ethereum).
        assert_eq!(m.used(), 100);
    }

    #[test]
    fn saturating_charge() {
        let mut m = GasMeter::new(u64::MAX - 1);
        m.charge(u64::MAX - 2).unwrap();
        assert_eq!(
            m.charge(u64::MAX),
            Err(OutOfGas),
            "saturating add still trips the limit"
        );
    }
}
