//! Pluggable state-commitment backends.
//!
//! [`crate::state::WorldState`] flattens every piece of consensus state
//! into `(LeafKey, value bytes)` pairs and delegates root computation to
//! a [`StateBackend`]. Two deterministic implementations exist:
//!
//! - [`SmtBackend`] (default) — an incremental copy-on-write sparse
//!   Merkle tree ([`crate::smt`]). Each block's commit costs
//!   O(touched keys · depth) hashes, independent of total state size.
//! - [`FullRehashBackend`] — the reference oracle. It ignores the dirty
//!   set entirely and rebuilds the tree from a fresh enumeration of
//!   *every* leaf in the live maps, mirroring the schoolbook-oracle
//!   pattern used for the crypto fast paths. Any dirty-tracking bug in
//!   the incremental path shows up as a root divergence against this
//!   backend.
//!
//! Both produce **bit-identical roots** for identical logical state —
//! the root is a pure function of the canonical leaf set. Selection is
//! via [`BackendKind::from_env`] (`PDS2_STATE_BACKEND=smt|rehash`) or
//! [`crate::state::WorldState::set_backend`].

use crate::address::Address;
use crate::erc20::TokenId;
use crate::erc721::NftId;
use crate::smt::{SmtProof, SmtTree};
use pds2_crypto::codec::{Encode, Encoder};
use pds2_crypto::sha256::{Digest, Sha256};

/// Domain prefix for leaf-key digests (keeps state keys disjoint from
/// every other hash domain in the system).
const KEY_DOMAIN: &[u8] = b"pds2-state-leaf";

/// Identifies one leaf of the authenticated state map. A leaf is
/// present iff the corresponding map entry exists (for singleton
/// counters: iff the value is non-zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LeafKey {
    /// Native account (balance + nonce).
    Account(Address),
    /// ERC-20 token metadata: symbol, minter, total supply.
    Erc20Meta(TokenId),
    /// ERC-20 balance entry (explicit zeros included).
    Erc20Bal(TokenId, Address),
    /// ERC-20 allowance entry `(owner, spender)`.
    Erc20Allow(TokenId, Address, Address),
    /// ERC-20 next-token-id counter (present iff non-zero).
    Erc20Next,
    /// ERC-721 token metadata.
    Erc721Token(NftId),
    /// ERC-721 next-id counter (present iff non-zero).
    Erc721Next,
    /// Deployed contract: code id + state digest.
    Contract(Address),
    /// Cumulative burned native supply (present iff non-zero).
    Burned,
}

impl LeafKey {
    /// The 256-bit tree key for this leaf.
    pub fn digest(&self) -> Digest {
        let mut enc = Encoder::new();
        match self {
            LeafKey::Account(a) => {
                enc.put_u8(0);
                a.encode(&mut enc);
            }
            LeafKey::Erc20Meta(t) => {
                enc.put_u8(1);
                t.encode(&mut enc);
            }
            LeafKey::Erc20Bal(t, a) => {
                enc.put_u8(2);
                t.encode(&mut enc);
                a.encode(&mut enc);
            }
            LeafKey::Erc20Allow(t, o, s) => {
                enc.put_u8(3);
                t.encode(&mut enc);
                o.encode(&mut enc);
                s.encode(&mut enc);
            }
            LeafKey::Erc20Next => enc.put_u8(4),
            LeafKey::Erc721Token(id) => {
                enc.put_u8(5);
                id.encode(&mut enc);
            }
            LeafKey::Erc721Next => enc.put_u8(6),
            LeafKey::Contract(a) => {
                enc.put_u8(7);
                a.encode(&mut enc);
            }
            LeafKey::Burned => enc.put_u8(8),
        }
        let mut h = Sha256::new();
        h.update(KEY_DOMAIN);
        h.update(&enc.finish());
        h.finalize()
    }
}

/// Which backend maintains the state commitment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendKind {
    /// Incremental sparse Merkle tree (default).
    Smt,
    /// Full-rehash reference oracle.
    FullRehash,
}

impl BackendKind {
    /// Reads `PDS2_STATE_BACKEND` (`smt` default; `rehash`, `memory` or
    /// `full` select the oracle). Unknown values fall back to the SMT.
    pub fn from_env() -> BackendKind {
        match std::env::var("PDS2_STATE_BACKEND").as_deref() {
            Ok("rehash") | Ok("memory") | Ok("full") => BackendKind::FullRehash,
            _ => BackendKind::Smt,
        }
    }

    /// Instantiates an empty backend of this kind.
    pub fn make(self) -> Box<dyn StateBackend> {
        match self {
            BackendKind::Smt => Box::new(SmtBackend::default()),
            BackendKind::FullRehash => Box::new(FullRehashBackend::default()),
        }
    }
}

/// State-commitment strategy. `commit` receives both the changed-key
/// delta and a thunk enumerating the full canonical leaf set; an
/// incremental backend uses the delta, an oracle uses the enumeration.
/// Either way the returned root must be the canonical SMT root of the
/// current leaf set.
pub trait StateBackend {
    /// Backend name for diagnostics and bench output.
    fn name(&self) -> &'static str;

    /// Applies a batch of leaf changes (`None` = delete) and returns
    /// `(new root, node hashes computed)`.
    fn commit(
        &mut self,
        changed: &[(Digest, Option<Digest>)],
        full: &mut dyn FnMut() -> Vec<(Digest, Digest)>,
    ) -> (Digest, u64);

    /// Root of the last commit (`None` before the first).
    fn root(&self) -> Option<Digest>;

    /// Merkle (non-)inclusion proof for a tree key, against the last
    /// committed root.
    fn prove(&self, key: &Digest) -> SmtProof;

    /// Leaves currently present.
    fn leaf_count(&self) -> usize;
}

/// Incremental sparse-Merkle backend (see [`crate::smt`]).
#[derive(Default)]
pub struct SmtBackend {
    tree: SmtTree,
    committed: bool,
}

impl StateBackend for SmtBackend {
    fn name(&self) -> &'static str {
        "smt"
    }

    fn commit(
        &mut self,
        changed: &[(Digest, Option<Digest>)],
        _full: &mut dyn FnMut() -> Vec<(Digest, Digest)>,
    ) -> (Digest, u64) {
        let hashed = self.tree.commit(changed.to_vec());
        self.committed = true;
        (self.tree.root_hash(), hashed)
    }

    fn root(&self) -> Option<Digest> {
        self.committed.then(|| self.tree.root_hash())
    }

    fn prove(&self, key: &Digest) -> SmtProof {
        self.tree.prove(key)
    }

    fn leaf_count(&self) -> usize {
        self.tree.len()
    }
}

/// Reference oracle: rebuilds the whole tree from a fresh full-state
/// enumeration on every commit, ignoring the delta. O(total state) per
/// block — correct by construction, and deliberately blind to any
/// dirty-tracking mistake the incremental path could make.
#[derive(Default)]
pub struct FullRehashBackend {
    tree: SmtTree,
    committed: bool,
}

impl StateBackend for FullRehashBackend {
    fn name(&self) -> &'static str {
        "rehash"
    }

    fn commit(
        &mut self,
        _changed: &[(Digest, Option<Digest>)],
        full: &mut dyn FnMut() -> Vec<(Digest, Digest)>,
    ) -> (Digest, u64) {
        let (tree, hashed) = SmtTree::from_leaves(full());
        self.tree = tree;
        self.committed = true;
        (self.tree.root_hash(), hashed)
    }

    fn root(&self) -> Option<Digest> {
        self.committed.then(|| self.tree.root_hash())
    }

    fn prove(&self, key: &Digest) -> SmtProof {
        self.tree.prove(key)
    }

    fn leaf_count(&self) -> usize {
        self.tree.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_crypto::sha256;
    use std::collections::BTreeMap;

    #[test]
    fn leaf_keys_are_distinct() {
        let addr = Address(sha256(b"a"));
        let keys = [
            LeafKey::Account(addr),
            LeafKey::Erc20Meta(TokenId(0)),
            LeafKey::Erc20Bal(TokenId(0), addr),
            LeafKey::Erc20Allow(TokenId(0), addr, addr),
            LeafKey::Erc20Next,
            LeafKey::Erc721Token(NftId(0)),
            LeafKey::Erc721Next,
            LeafKey::Contract(addr),
            LeafKey::Burned,
        ];
        let digests: std::collections::BTreeSet<Digest> = keys.iter().map(|k| k.digest()).collect();
        assert_eq!(digests.len(), keys.len());
    }

    #[test]
    fn backends_agree_under_incremental_changes() {
        let mut smt = BackendKind::Smt.make();
        let mut oracle = BackendKind::FullRehash.make();
        let mut map: BTreeMap<Digest, Digest> = BTreeMap::new();
        for round in 0..8u64 {
            let mut changed = Vec::new();
            for i in 0..12u64 {
                let k = sha256(&(round * 5 + i).to_le_bytes());
                if (round + i) % 4 == 0 && map.contains_key(&k) {
                    map.remove(&k);
                    changed.push((k, None));
                } else {
                    let v = sha256(&(round * 1000 + i).to_le_bytes());
                    map.insert(k, v);
                    changed.push((k, Some(v)));
                }
            }
            let mut full = || map.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>();
            let (r1, _) = smt.commit(&changed, &mut full);
            let (r2, _) = oracle.commit(&changed, &mut full);
            assert_eq!(r1, r2, "round {round}");
            assert_eq!(smt.leaf_count(), oracle.leaf_count());
        }
    }

    #[test]
    fn env_knob_selects_backend() {
        assert_eq!(BackendKind::Smt.make().name(), "smt");
        assert_eq!(BackendKind::FullRehash.make().name(), "rehash");
    }
}
