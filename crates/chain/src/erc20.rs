//! Fungible tokens — the ERC-20 analogue.
//!
//! §III-A: ERC-20 tokens "could be used to handle any kind of rewards
//! offered by the consumers, which would be split among the providers."
//! The module supports multiple independent tokens, each with balances,
//! allowances, minting (creator-controlled) and burning.

use crate::address::Address;
use crate::event::{Event, EventSink};
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use std::collections::BTreeMap;

/// Identifier of a fungible token.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TokenId(pub u64);

impl Encode for TokenId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }
}

impl Decode for TokenId {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TokenId(dec.get_u64()?))
    }
}

/// Operations accepted by the ERC-20 module (carried inside transactions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Erc20Op {
    /// Creates a new token; the sender becomes its minter.
    Create {
        /// Token symbol for display.
        symbol: String,
        /// Initial supply minted to the sender.
        initial_supply: u128,
    },
    /// Mints new supply (minter only).
    Mint {
        /// Token to mint.
        token: TokenId,
        /// Recipient of the minted amount.
        to: Address,
        /// Amount to mint.
        amount: u128,
    },
    /// Transfers tokens from the sender.
    Transfer {
        /// Token to move.
        token: TokenId,
        /// Recipient.
        to: Address,
        /// Amount.
        amount: u128,
    },
    /// Approves a spender for an allowance.
    Approve {
        /// Token.
        token: TokenId,
        /// Spender being approved.
        spender: Address,
        /// Allowance amount (replaces previous).
        amount: u128,
    },
    /// Spends an allowance on behalf of `owner`.
    TransferFrom {
        /// Token.
        token: TokenId,
        /// Account whose tokens move.
        owner: Address,
        /// Recipient.
        to: Address,
        /// Amount.
        amount: u128,
    },
    /// Destroys tokens held by the sender.
    Burn {
        /// Token.
        token: TokenId,
        /// Amount to burn.
        amount: u128,
    },
}

const T_CREATE: u8 = 0;
const T_MINT: u8 = 1;
const T_TRANSFER: u8 = 2;
const T_APPROVE: u8 = 3;
const T_TRANSFER_FROM: u8 = 4;
const T_BURN: u8 = 5;

impl Encode for Erc20Op {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Erc20Op::Create {
                symbol,
                initial_supply,
            } => {
                enc.put_u8(T_CREATE);
                enc.put_str(symbol);
                enc.put_u128(*initial_supply);
            }
            Erc20Op::Mint { token, to, amount } => {
                enc.put_u8(T_MINT);
                token.encode(enc);
                to.encode(enc);
                enc.put_u128(*amount);
            }
            Erc20Op::Transfer { token, to, amount } => {
                enc.put_u8(T_TRANSFER);
                token.encode(enc);
                to.encode(enc);
                enc.put_u128(*amount);
            }
            Erc20Op::Approve {
                token,
                spender,
                amount,
            } => {
                enc.put_u8(T_APPROVE);
                token.encode(enc);
                spender.encode(enc);
                enc.put_u128(*amount);
            }
            Erc20Op::TransferFrom {
                token,
                owner,
                to,
                amount,
            } => {
                enc.put_u8(T_TRANSFER_FROM);
                token.encode(enc);
                owner.encode(enc);
                to.encode(enc);
                enc.put_u128(*amount);
            }
            Erc20Op::Burn { token, amount } => {
                enc.put_u8(T_BURN);
                token.encode(enc);
                enc.put_u128(*amount);
            }
        }
    }
}

impl Decode for Erc20Op {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            T_CREATE => Ok(Erc20Op::Create {
                symbol: dec.get_str()?,
                initial_supply: dec.get_u128()?,
            }),
            T_MINT => Ok(Erc20Op::Mint {
                token: TokenId::decode(dec)?,
                to: Address::decode(dec)?,
                amount: dec.get_u128()?,
            }),
            T_TRANSFER => Ok(Erc20Op::Transfer {
                token: TokenId::decode(dec)?,
                to: Address::decode(dec)?,
                amount: dec.get_u128()?,
            }),
            T_APPROVE => Ok(Erc20Op::Approve {
                token: TokenId::decode(dec)?,
                spender: Address::decode(dec)?,
                amount: dec.get_u128()?,
            }),
            T_TRANSFER_FROM => Ok(Erc20Op::TransferFrom {
                token: TokenId::decode(dec)?,
                owner: Address::decode(dec)?,
                to: Address::decode(dec)?,
                amount: dec.get_u128()?,
            }),
            T_BURN => Ok(Erc20Op::Burn {
                token: TokenId::decode(dec)?,
                amount: dec.get_u128()?,
            }),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Errors from token operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenError {
    /// Token id does not exist.
    UnknownToken,
    /// Balance too low.
    InsufficientBalance,
    /// Allowance too low.
    InsufficientAllowance,
    /// Only the minter may mint.
    NotMinter,
    /// Supply arithmetic would overflow.
    Overflow,
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TokenError::UnknownToken => write!(f, "unknown token"),
            TokenError::InsufficientBalance => write!(f, "insufficient token balance"),
            TokenError::InsufficientAllowance => write!(f, "insufficient allowance"),
            TokenError::NotMinter => write!(f, "sender is not the token minter"),
            TokenError::Overflow => write!(f, "token supply overflow"),
        }
    }
}

impl std::error::Error for TokenError {}

/// One fungible token's state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct TokenState {
    symbol: String,
    minter: Option<Address>,
    total_supply: u128,
    balances: BTreeMap<Address, u128>,
    allowances: BTreeMap<(Address, Address), u128>,
}

/// The ERC-20 module holding every fungible token on the chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Erc20Module {
    tokens: BTreeMap<TokenId, TokenState>,
    next_id: u64,
}

impl Erc20Module {
    /// Applies an operation on behalf of `sender`, emitting events.
    pub fn apply(
        &mut self,
        sender: Address,
        op: &Erc20Op,
        events: &mut EventSink,
    ) -> Result<Option<TokenId>, TokenError> {
        match op {
            Erc20Op::Create {
                symbol,
                initial_supply,
            } => {
                let id = TokenId(self.next_id);
                self.next_id += 1;
                let mut state = TokenState {
                    symbol: symbol.clone(),
                    minter: Some(sender),
                    total_supply: *initial_supply,
                    ..Default::default()
                };
                if *initial_supply > 0 {
                    state.balances.insert(sender, *initial_supply);
                }
                self.tokens.insert(id, state);
                events.emit(Event::token(
                    "erc20.create",
                    format!("token={} symbol={symbol} supply={initial_supply}", id.0),
                ));
                Ok(Some(id))
            }
            Erc20Op::Mint { token, to, amount } => {
                let state = self.tokens.get_mut(token).ok_or(TokenError::UnknownToken)?;
                if state.minter != Some(sender) {
                    return Err(TokenError::NotMinter);
                }
                state.total_supply = state
                    .total_supply
                    .checked_add(*amount)
                    .ok_or(TokenError::Overflow)?;
                *state.balances.entry(*to).or_default() += amount;
                events.emit(Event::token(
                    "erc20.mint",
                    format!("token={} to={to} amount={amount}", token.0),
                ));
                Ok(None)
            }
            Erc20Op::Transfer { token, to, amount } => {
                self.move_tokens(*token, sender, *to, *amount)?;
                events.emit(Event::token(
                    "erc20.transfer",
                    format!("token={} from={sender} to={to} amount={amount}", token.0),
                ));
                Ok(None)
            }
            Erc20Op::Approve {
                token,
                spender,
                amount,
            } => {
                let state = self.tokens.get_mut(token).ok_or(TokenError::UnknownToken)?;
                state.allowances.insert((sender, *spender), *amount);
                events.emit(Event::token(
                    "erc20.approve",
                    format!(
                        "token={} owner={sender} spender={spender} amount={amount}",
                        token.0
                    ),
                ));
                Ok(None)
            }
            Erc20Op::TransferFrom {
                token,
                owner,
                to,
                amount,
            } => {
                // Validate allowance AND balance before mutating anything,
                // so a failed op leaves no partial effects.
                {
                    let state = self.tokens.get_mut(token).ok_or(TokenError::UnknownToken)?;
                    let allowance = state
                        .allowances
                        .get(&(*owner, sender))
                        .copied()
                        .unwrap_or(0);
                    if allowance < *amount {
                        return Err(TokenError::InsufficientAllowance);
                    }
                    let balance = state.balances.get(owner).copied().unwrap_or(0);
                    if balance < *amount {
                        return Err(TokenError::InsufficientBalance);
                    }
                    state
                        .allowances
                        .insert((*owner, sender), allowance - amount);
                }
                self.move_tokens(*token, *owner, *to, *amount)?;
                events.emit(Event::token(
                    "erc20.transfer_from",
                    format!(
                        "token={} owner={owner} spender={sender} to={to} amount={amount}",
                        token.0
                    ),
                ));
                Ok(None)
            }
            Erc20Op::Burn { token, amount } => {
                let state = self.tokens.get_mut(token).ok_or(TokenError::UnknownToken)?;
                let bal = state.balances.entry(sender).or_default();
                if *bal < *amount {
                    return Err(TokenError::InsufficientBalance);
                }
                *bal -= amount;
                state.total_supply -= amount;
                events.emit(Event::token(
                    "erc20.burn",
                    format!("token={} from={sender} amount={amount}", token.0),
                ));
                Ok(None)
            }
        }
    }

    fn move_tokens(
        &mut self,
        token: TokenId,
        from: Address,
        to: Address,
        amount: u128,
    ) -> Result<(), TokenError> {
        let state = self
            .tokens
            .get_mut(&token)
            .ok_or(TokenError::UnknownToken)?;
        let from_bal = state.balances.entry(from).or_default();
        if *from_bal < amount {
            return Err(TokenError::InsufficientBalance);
        }
        *from_bal -= amount;
        *state.balances.entry(to).or_default() += amount;
        Ok(())
    }

    /// Transfers tokens without a signed op — used by trusted native
    /// contracts (e.g. the workload contract paying rewards from escrow).
    pub fn module_transfer(
        &mut self,
        token: TokenId,
        from: Address,
        to: Address,
        amount: u128,
    ) -> Result<(), TokenError> {
        self.move_tokens(token, from, to, amount)
    }

    /// Balance query.
    pub fn balance_of(&self, token: TokenId, owner: &Address) -> u128 {
        self.tokens
            .get(&token)
            .and_then(|t| t.balances.get(owner).copied())
            .unwrap_or(0)
    }

    /// Allowance query.
    pub fn allowance(&self, token: TokenId, owner: &Address, spender: &Address) -> u128 {
        self.tokens
            .get(&token)
            .and_then(|t| t.allowances.get(&(*owner, *spender)).copied())
            .unwrap_or(0)
    }

    /// Total supply query.
    pub fn total_supply(&self, token: TokenId) -> Option<u128> {
        self.tokens.get(&token).map(|t| t.total_supply)
    }

    /// Token symbol query.
    pub fn symbol(&self, token: TokenId) -> Option<&str> {
        self.tokens.get(&token).map(|t| t.symbol.as_str())
    }

    /// Next token id to be assigned (0 when no token was ever created).
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Token metadata leaf value: `(symbol, minter, total_supply)`,
    /// present iff the token exists.
    pub(crate) fn meta_entry(&self, token: TokenId) -> Option<(&str, Option<Address>, u128)> {
        self.tokens
            .get(&token)
            .map(|t| (t.symbol.as_str(), t.minter, t.total_supply))
    }

    /// Balance map entry — `Some(0)` when an explicit zero entry exists,
    /// `None` when the holder has no entry at all. The state root leafs
    /// exactly the entries present (failed transfers can leave zero
    /// entries behind, and those must hash identically on every node).
    pub(crate) fn bal_entry(&self, token: TokenId, owner: &Address) -> Option<u128> {
        self.tokens
            .get(&token)
            .and_then(|t| t.balances.get(owner).copied())
    }

    /// Allowance map entry, distinguishing absent from explicit zero
    /// (approvals of 0 are stored).
    pub(crate) fn allowance_entry(
        &self,
        token: TokenId,
        owner: &Address,
        spender: &Address,
    ) -> Option<u128> {
        self.tokens
            .get(&token)
            .and_then(|t| t.allowances.get(&(*owner, *spender)).copied())
    }

    /// All live token ids.
    pub(crate) fn token_ids(&self) -> impl Iterator<Item = TokenId> + '_ {
        self.tokens.keys().copied()
    }

    /// All balance entries of one token (including explicit zeros).
    pub(crate) fn balance_entries(
        &self,
        token: TokenId,
    ) -> impl Iterator<Item = (Address, u128)> + '_ {
        self.tokens
            .get(&token)
            .into_iter()
            .flat_map(|t| t.balances.iter().map(|(a, b)| (*a, *b)))
    }

    /// All allowance entries of one token.
    pub(crate) fn allowance_entries(
        &self,
        token: TokenId,
    ) -> impl Iterator<Item = (Address, Address, u128)> + '_ {
        self.tokens
            .get(&token)
            .into_iter()
            .flat_map(|t| t.allowances.iter().map(|((o, s), a)| (*o, *s, *a)))
    }

    /// Canonical digest of the whole module state (for state roots).
    pub fn state_digest(&self) -> pds2_crypto::Digest {
        let mut enc = Encoder::new();
        enc.put_u64(self.next_id);
        enc.put_u64(self.tokens.len() as u64);
        for (id, t) in &self.tokens {
            id.encode(&mut enc);
            enc.put_str(&t.symbol);
            enc.put_option(&t.minter);
            enc.put_u128(t.total_supply);
            enc.put_u64(t.balances.len() as u64);
            for (addr, bal) in &t.balances {
                addr.encode(&mut enc);
                enc.put_u128(*bal);
            }
            enc.put_u64(t.allowances.len() as u64);
            for ((o, s), a) in &t.allowances {
                o.encode(&mut enc);
                s.encode(&mut enc);
                enc.put_u128(*a);
            }
        }
        pds2_crypto::sha256(&enc.finish())
    }
}

// Snapshot codec (crash recovery): same canonical layout as
// `state_digest`, so restoring a snapshot reproduces the digest exactly.
impl Encode for Erc20Module {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.next_id);
        enc.put_u64(self.tokens.len() as u64);
        for (id, t) in &self.tokens {
            id.encode(enc);
            enc.put_str(&t.symbol);
            enc.put_option(&t.minter);
            enc.put_u128(t.total_supply);
            enc.put_u64(t.balances.len() as u64);
            for (addr, bal) in &t.balances {
                addr.encode(enc);
                enc.put_u128(*bal);
            }
            enc.put_u64(t.allowances.len() as u64);
            for ((o, s), a) in &t.allowances {
                o.encode(enc);
                s.encode(enc);
                enc.put_u128(*a);
            }
        }
    }
}

impl Decode for Erc20Module {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let next_id = dec.get_u64()?;
        let n_tokens = dec.get_u64()? as usize;
        let mut tokens = BTreeMap::new();
        for _ in 0..n_tokens {
            let id = TokenId::decode(dec)?;
            let symbol = dec.get_str()?;
            let minter = dec.get_option()?;
            let total_supply = dec.get_u128()?;
            let mut balances = BTreeMap::new();
            for _ in 0..dec.get_u64()? {
                let addr = Address::decode(dec)?;
                balances.insert(addr, dec.get_u128()?);
            }
            let mut allowances = BTreeMap::new();
            for _ in 0..dec.get_u64()? {
                let o = Address::decode(dec)?;
                let s = Address::decode(dec)?;
                allowances.insert((o, s), dec.get_u128()?);
            }
            tokens.insert(
                id,
                TokenState {
                    symbol,
                    minter,
                    total_supply,
                    balances,
                    allowances,
                },
            );
        }
        Ok(Erc20Module { tokens, next_id })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_crypto::KeyPair;

    fn addr(seed: u64) -> Address {
        Address::of(&KeyPair::from_seed(seed).public)
    }

    fn create_token(m: &mut Erc20Module, minter: Address, supply: u128) -> TokenId {
        let mut events = EventSink::new();
        m.apply(
            minter,
            &Erc20Op::Create {
                symbol: "PDS".into(),
                initial_supply: supply,
            },
            &mut events,
        )
        .unwrap()
        .unwrap()
    }

    #[test]
    fn create_assigns_supply_to_creator() {
        let mut m = Erc20Module::default();
        let alice = addr(1);
        let id = create_token(&mut m, alice, 1000);
        assert_eq!(m.balance_of(id, &alice), 1000);
        assert_eq!(m.total_supply(id), Some(1000));
        assert_eq!(m.symbol(id), Some("PDS"));
    }

    #[test]
    fn transfer_moves_balance() {
        let mut m = Erc20Module::default();
        let (alice, bob) = (addr(1), addr(2));
        let id = create_token(&mut m, alice, 100);
        let mut ev = EventSink::new();
        m.apply(
            alice,
            &Erc20Op::Transfer {
                token: id,
                to: bob,
                amount: 30,
            },
            &mut ev,
        )
        .unwrap();
        assert_eq!(m.balance_of(id, &alice), 70);
        assert_eq!(m.balance_of(id, &bob), 30);
        assert_eq!(ev.events().len(), 1);
    }

    #[test]
    fn transfer_rejects_overdraft() {
        let mut m = Erc20Module::default();
        let (alice, bob) = (addr(1), addr(2));
        let id = create_token(&mut m, alice, 10);
        let mut ev = EventSink::new();
        let err = m
            .apply(
                alice,
                &Erc20Op::Transfer {
                    token: id,
                    to: bob,
                    amount: 11,
                },
                &mut ev,
            )
            .unwrap_err();
        assert_eq!(err, TokenError::InsufficientBalance);
        assert_eq!(m.balance_of(id, &alice), 10, "no partial effects");
    }

    #[test]
    fn only_minter_can_mint() {
        let mut m = Erc20Module::default();
        let (alice, mallory) = (addr(1), addr(3));
        let id = create_token(&mut m, alice, 0);
        let mut ev = EventSink::new();
        assert_eq!(
            m.apply(
                mallory,
                &Erc20Op::Mint {
                    token: id,
                    to: mallory,
                    amount: 1_000_000
                },
                &mut ev
            )
            .unwrap_err(),
            TokenError::NotMinter
        );
        m.apply(
            alice,
            &Erc20Op::Mint {
                token: id,
                to: alice,
                amount: 5,
            },
            &mut ev,
        )
        .unwrap();
        assert_eq!(m.total_supply(id), Some(5));
    }

    #[test]
    fn allowance_workflow() {
        let mut m = Erc20Module::default();
        let (alice, bob, carol) = (addr(1), addr(2), addr(3));
        let id = create_token(&mut m, alice, 100);
        let mut ev = EventSink::new();
        m.apply(
            alice,
            &Erc20Op::Approve {
                token: id,
                spender: bob,
                amount: 40,
            },
            &mut ev,
        )
        .unwrap();
        assert_eq!(m.allowance(id, &alice, &bob), 40);
        m.apply(
            bob,
            &Erc20Op::TransferFrom {
                token: id,
                owner: alice,
                to: carol,
                amount: 25,
            },
            &mut ev,
        )
        .unwrap();
        assert_eq!(m.balance_of(id, &carol), 25);
        assert_eq!(m.allowance(id, &alice, &bob), 15);
        // Exceeding the remaining allowance fails.
        assert_eq!(
            m.apply(
                bob,
                &Erc20Op::TransferFrom {
                    token: id,
                    owner: alice,
                    to: carol,
                    amount: 16
                },
                &mut ev
            )
            .unwrap_err(),
            TokenError::InsufficientAllowance
        );
    }

    #[test]
    fn burn_reduces_supply() {
        let mut m = Erc20Module::default();
        let alice = addr(1);
        let id = create_token(&mut m, alice, 100);
        let mut ev = EventSink::new();
        m.apply(
            alice,
            &Erc20Op::Burn {
                token: id,
                amount: 60,
            },
            &mut ev,
        )
        .unwrap();
        assert_eq!(m.total_supply(id), Some(40));
        assert_eq!(m.balance_of(id, &alice), 40);
        assert_eq!(
            m.apply(
                alice,
                &Erc20Op::Burn {
                    token: id,
                    amount: 41
                },
                &mut ev
            )
            .unwrap_err(),
            TokenError::InsufficientBalance
        );
    }

    #[test]
    fn unknown_token_rejected() {
        let mut m = Erc20Module::default();
        let mut ev = EventSink::new();
        assert_eq!(
            m.apply(
                addr(1),
                &Erc20Op::Transfer {
                    token: TokenId(42),
                    to: addr(2),
                    amount: 1
                },
                &mut ev
            )
            .unwrap_err(),
            TokenError::UnknownToken
        );
    }

    #[test]
    fn state_digest_tracks_changes() {
        let mut m = Erc20Module::default();
        let d0 = m.state_digest();
        let alice = addr(1);
        let id = create_token(&mut m, alice, 100);
        let d1 = m.state_digest();
        assert_ne!(d0, d1);
        let mut ev = EventSink::new();
        m.apply(
            alice,
            &Erc20Op::Transfer {
                token: id,
                to: addr(2),
                amount: 1,
            },
            &mut ev,
        )
        .unwrap();
        assert_ne!(d1, m.state_digest());
    }

    #[test]
    fn balance_conservation_under_transfers() {
        let mut m = Erc20Module::default();
        let holders: Vec<Address> = (1..=5).map(addr).collect();
        let id = create_token(&mut m, holders[0], 10_000);
        let mut ev = EventSink::new();
        // Shuffle tokens around.
        for i in 0..20 {
            let from = holders[i % 5];
            let to = holders[(i + 2) % 5];
            let _ = m.apply(
                from,
                &Erc20Op::Transfer {
                    token: id,
                    to,
                    amount: 100,
                },
                &mut ev,
            );
        }
        let total: u128 = holders.iter().map(|h| m.balance_of(id, h)).sum();
        assert_eq!(total, 10_000, "transfers must conserve supply");
    }
}
