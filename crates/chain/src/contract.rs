//! The native-contract framework.
//!
//! PDS² deploys "a separate smart contract instance … for managing the
//! lifetime of each workload" (§III-A). Here contracts are native Rust
//! types registered under a `code_id`; deploying instantiates one with a
//! constructor input, and calls dispatch byte-encoded inputs to it.
//!
//! The framework provides the Ethereum-like execution guarantees the
//! governance layer needs:
//!
//! - **atomicity** — a failed call rolls back all contract state, pending
//!   value transfers and events (via snapshot/restore);
//! - **metering** — contracts charge gas through [`CallCtx::charge_gas`];
//! - **auditability** — events emitted through the context land in the
//!   block's receipt log;
//! - **escrow** — attached value is credited to the contract account, and
//!   contracts schedule payouts with [`CallCtx::transfer_out`].

use crate::address::Address;
use crate::erc20::{Erc20Module, TokenId};
use crate::event::{Event, EventSink};
use crate::gas::{self, GasMeter};
use pds2_crypto::sha256::{sha256, Digest};
use std::collections::HashMap;

/// Why a contract call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// The contract explicitly reverted.
    Revert(String),
    /// Gas limit exceeded.
    OutOfGas,
    /// Input bytes could not be decoded.
    BadInput(String),
    /// The contract tried to pay out more than its balance.
    InsufficientContractFunds,
}

impl std::fmt::Display for ContractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContractError::Revert(msg) => write!(f, "reverted: {msg}"),
            ContractError::OutOfGas => write!(f, "out of gas"),
            ContractError::BadInput(msg) => write!(f, "bad input: {msg}"),
            ContractError::InsufficientContractFunds => {
                write!(f, "contract balance too low for payout")
            }
        }
    }
}

impl std::error::Error for ContractError {}

impl From<gas::OutOfGas> for ContractError {
    fn from(_: gas::OutOfGas) -> Self {
        ContractError::OutOfGas
    }
}

/// Execution context handed to a contract call.
pub struct CallCtx<'a> {
    /// Address of the calling account.
    pub sender: Address,
    /// Address of the contract instance being called.
    pub contract: Address,
    /// Native value attached to the call (already escrowed).
    pub value: u128,
    /// Height of the block including this transaction.
    pub block_height: u64,
    /// Causal context of the workload that submitted this transaction
    /// ([`pds2_obs::TraceCtx::NONE`] when the submission was untraced).
    /// Contracts attach their domain events to it via
    /// [`pds2_obs::trace_event!`].
    pub trace: pds2_obs::TraceCtx,
    pub(crate) gas: &'a mut GasMeter,
    pub(crate) events: &'a mut EventSink,
    pub(crate) pending_transfers: Vec<(Address, u128)>,
    pub(crate) pending_token_transfers: Vec<(TokenId, Address, u128)>,
    pub(crate) erc20: &'a Erc20Module,
}

impl<'a> CallCtx<'a> {
    /// Charges gas; returns `OutOfGas` on exhaustion.
    pub fn charge_gas(&mut self, amount: u64) -> Result<(), ContractError> {
        self.gas.charge(amount)?;
        Ok(())
    }

    /// Emits an event (charged).
    pub fn emit(&mut self, topic: &str, data: String) -> Result<(), ContractError> {
        self.gas.charge(gas::EVENT)?;
        self.events.emit(Event::new(topic, data));
        Ok(())
    }

    /// Schedules a native-token payout from the contract's account. The
    /// transfer is applied only if the call succeeds and the contract
    /// balance covers all scheduled payouts.
    pub fn transfer_out(&mut self, to: Address, amount: u128) {
        self.pending_transfers.push((to, amount));
    }

    /// Schedules an ERC-20 payout from the contract's token balance —
    /// §III-A's "rewards … handled with fungible tokens". Applied only if
    /// the call succeeds and the balance covers all scheduled payouts.
    pub fn transfer_token_out(&mut self, token: TokenId, to: Address, amount: u128) {
        self.pending_token_transfers.push((token, to, amount));
    }

    /// The contract's own ERC-20 balance (read-only view of the module).
    pub fn own_token_balance(&self, token: TokenId) -> u128 {
        self.erc20.balance_of(token, &self.contract)
    }
}

/// A native smart contract.
///
/// State persistence and rollback go through [`snapshot`](Contract::snapshot)
/// / [`restore`](Contract::restore); the state root commits to
/// `sha256(snapshot())`.
pub trait Contract {
    /// Handles one call. Any `Err` rolls the contract back.
    fn call(&mut self, ctx: &mut CallCtx<'_>, input: &[u8]) -> Result<Vec<u8>, ContractError>;

    /// Serializes the full contract state canonically.
    fn snapshot(&self) -> Vec<u8>;

    /// Restores state from a snapshot.
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), ContractError>;

    /// Canonical state digest (default: hash of the snapshot).
    fn state_digest(&self) -> Digest {
        sha256(&self.snapshot())
    }
}

/// Constructor signature for a registered contract type.
pub type ContractConstructor =
    fn(deployer: Address, init: &[u8]) -> Result<Box<dyn Contract>, ContractError>;

/// Registry of deployable contract types.
#[derive(Default)]
pub struct ContractRegistry {
    constructors: HashMap<String, ContractConstructor>,
}

impl ContractRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a contract type under `code_id`.
    pub fn register(&mut self, code_id: impl Into<String>, constructor: ContractConstructor) {
        self.constructors.insert(code_id.into(), constructor);
    }

    /// Instantiates a registered type.
    pub fn instantiate(
        &self,
        code_id: &str,
        deployer: Address,
        init: &[u8],
    ) -> Result<Box<dyn Contract>, ContractError> {
        let ctor = self
            .constructors
            .get(code_id)
            .ok_or_else(|| ContractError::BadInput(format!("unknown contract type {code_id}")))?;
        ctor(deployer, init)
    }

    /// Whether a type is registered.
    pub fn contains(&self, code_id: &str) -> bool {
        self.constructors.contains_key(code_id)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use pds2_crypto::codec::{Decode, Decoder, Encode, Encoder};

    /// A minimal counter contract used by framework tests.
    pub struct Counter {
        pub value: u64,
        pub owner: Address,
    }

    impl Counter {
        pub fn construct(
            deployer: Address,
            init: &[u8],
        ) -> Result<Box<dyn Contract>, ContractError> {
            let start = if init.is_empty() {
                0
            } else {
                let mut dec = Decoder::new(init);
                dec.get_u64()
                    .map_err(|e| ContractError::BadInput(e.to_string()))?
            };
            Ok(Box::new(Counter {
                value: start,
                owner: deployer,
            }))
        }
    }

    impl Contract for Counter {
        fn call(&mut self, ctx: &mut CallCtx<'_>, input: &[u8]) -> Result<Vec<u8>, ContractError> {
            ctx.charge_gas(100)?;
            match input.first() {
                Some(0) => {
                    // increment
                    self.value += 1;
                    ctx.emit("counter.inc", format!("value={}", self.value))?;
                    let mut enc = Encoder::new();
                    enc.put_u64(self.value);
                    Ok(enc.finish())
                }
                Some(1) => {
                    // increment then revert (for rollback tests)
                    self.value += 100;
                    Err(ContractError::Revert("deliberate".into()))
                }
                Some(2) => {
                    // pay out half the attached value back to the sender
                    ctx.transfer_out(ctx.sender, ctx.value / 2);
                    Ok(Vec::new())
                }
                Some(3) => {
                    // try to overspend the contract
                    ctx.transfer_out(ctx.sender, u128::MAX);
                    Ok(Vec::new())
                }
                _ => Err(ContractError::BadInput("unknown method".into())),
            }
        }

        fn snapshot(&self) -> Vec<u8> {
            let mut enc = Encoder::new();
            enc.put_u64(self.value);
            self.owner.encode(&mut enc);
            enc.finish()
        }

        fn restore(&mut self, snapshot: &[u8]) -> Result<(), ContractError> {
            let mut dec = Decoder::new(snapshot);
            self.value = dec
                .get_u64()
                .map_err(|e| ContractError::BadInput(e.to_string()))?;
            self.owner =
                Address::decode(&mut dec).map_err(|e| ContractError::BadInput(e.to_string()))?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::Counter;
    use super::*;
    use pds2_crypto::KeyPair;

    fn addr(seed: u64) -> Address {
        Address::of(&KeyPair::from_seed(seed).public)
    }

    #[test]
    fn registry_instantiates_registered_types() {
        let mut reg = ContractRegistry::new();
        reg.register("counter", Counter::construct);
        assert!(reg.contains("counter"));
        assert!(!reg.contains("missing"));
        let c = reg.instantiate("counter", addr(1), &[]).unwrap();
        assert_eq!(c.state_digest(), c.state_digest());
    }

    #[test]
    fn unknown_type_rejected() {
        let reg = ContractRegistry::new();
        assert!(matches!(
            reg.instantiate("nope", addr(1), &[]),
            Err(ContractError::BadInput(_))
        ));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut c = Counter {
            value: 42,
            owner: addr(1),
        };
        let snap = c.snapshot();
        c.value = 0;
        c.restore(&snap).unwrap();
        assert_eq!(c.value, 42);
        assert_eq!(c.owner, addr(1));
    }

    #[test]
    fn call_ctx_gas_and_events() {
        let mut gas = GasMeter::new(1000);
        let mut events = EventSink::new();
        let erc20 = Erc20Module::default();
        let mut ctx = CallCtx {
            sender: addr(1),
            contract: addr(2),
            value: 0,
            block_height: 5,
            trace: pds2_obs::TraceCtx::NONE,
            gas: &mut gas,
            events: &mut events,
            pending_transfers: Vec::new(),
            pending_token_transfers: Vec::new(),
            erc20: &erc20,
        };
        ctx.charge_gas(100).unwrap();
        ctx.emit("test.topic", "data".into()).unwrap();
        assert_eq!(gas.used(), 100 + gas::EVENT);
        assert_eq!(events.events().len(), 1);
    }

    #[test]
    fn out_of_gas_surfaces() {
        let mut gas = GasMeter::new(10);
        let mut events = EventSink::new();
        let erc20 = Erc20Module::default();
        let mut ctx = CallCtx {
            sender: addr(1),
            contract: addr(2),
            value: 0,
            block_height: 0,
            trace: pds2_obs::TraceCtx::NONE,
            gas: &mut gas,
            events: &mut events,
            pending_transfers: Vec::new(),
            pending_token_transfers: Vec::new(),
            erc20: &erc20,
        };
        assert_eq!(ctx.charge_gas(11).unwrap_err(), ContractError::OutOfGas);
    }
}
