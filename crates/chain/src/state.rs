//! World state and transaction execution.
//!
//! [`WorldState`] holds native accounts, the two token modules and every
//! deployed contract instance. [`WorldState::apply_transaction`] is the
//! single state-transition function: it meters gas, enforces nonces,
//! executes the payload atomically (failed transactions leave no effects
//! beyond the nonce bump) and produces a [`TxReceipt`].

use crate::address::{Account, Address};
use crate::backend::{BackendKind, LeafKey, StateBackend};
use crate::contract::{CallCtx, ContractError, ContractRegistry};
use crate::erc20::Erc20Op;
use crate::erc721::Erc721Op;
use crate::event::{Event, EventSink};
use crate::gas::{self, GasMeter};
use crate::smt::SmtProof;
use crate::tx::{SignedTransaction, TxKind};
use pds2_crypto::codec::{Decode, Decoder, Encode, Encoder};
use pds2_crypto::sha256::{sha256, Digest};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Per-block execution environment: the consensus values every
/// transaction in the block executes under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEnv {
    /// Height of the including block.
    pub height: u64,
    /// Base fee per gas (EIP-1559): burned on every unit of gas.
    pub base_fee: u64,
    /// Proposer address credited with priority fees.
    pub coinbase: Address,
}

impl BlockEnv {
    /// A zero-fee environment at `height` — the legacy execution model
    /// (no base fee, no proposer payment).
    pub fn free(height: u64) -> BlockEnv {
        BlockEnv {
            height,
            base_fee: 0,
            coinbase: Address(Digest::ZERO),
        }
    }
}

/// Outcome of executing one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxReceipt {
    /// Hash of the transaction.
    pub tx_hash: Digest,
    /// Whether execution succeeded.
    pub success: bool,
    /// Gas consumed.
    pub gas_used: u64,
    /// Per-gas price actually paid (EIP-1559 effective price at the
    /// block's base fee; 0 for free/legacy transactions).
    pub effective_gas_price: u64,
    /// Contract return data (empty unless a successful call returned some).
    pub output: Vec<u8>,
    /// Error description on failure.
    pub error: Option<String>,
    /// Events emitted (empty on failure).
    pub events: Vec<Event>,
    /// Address of the deployed contract, for deploy transactions.
    pub deployed: Option<Address>,
}

/// A deployed contract instance. `deployer` and `init` are retained so
/// snapshot restore can revive the instance through the registry's
/// constructor before restoring its canonical snapshot; they are NOT
/// part of the state root (which commits only `code_id` + state digest).
struct ContractInstance {
    code_id: String,
    deployer: Address,
    init: Vec<u8>,
    contract: Box<dyn crate::contract::Contract>,
}

/// Root-commitment bookkeeping: the pluggable backend plus the set of
/// leaves mutated since the last commit. Behind a [`RefCell`] so
/// `state_root(&self)` can commit lazily.
struct Committer {
    backend: Box<dyn StateBackend>,
    dirty: BTreeSet<LeafKey>,
}

/// The full chain state.
pub struct WorldState {
    accounts: BTreeMap<Address, Account>,
    /// Fungible-token module.
    pub erc20: crate::erc20::Erc20Module,
    /// NFT module.
    pub erc721: crate::erc721::Erc721Module,
    contracts: BTreeMap<Address, ContractInstance>,
    /// Cumulative native tokens destroyed by base-fee burning. Part of
    /// the state root: every node must agree on it, and the conservation
    /// invariant becomes `circulating supply + burned = const`.
    burned: u128,
    /// Maintained sum of every native balance, so conservation checks
    /// are O(1) instead of an account-map walk. Every credit/debit nets
    /// to zero except genesis minting (+) and base-fee burning (−).
    native_supply: u128,
    committer: RefCell<Committer>,
}

impl Default for WorldState {
    fn default() -> Self {
        WorldState {
            accounts: BTreeMap::new(),
            erc20: Default::default(),
            erc721: Default::default(),
            contracts: BTreeMap::new(),
            burned: 0,
            native_supply: 0,
            committer: RefCell::new(Committer {
                backend: BackendKind::from_env().make(),
                dirty: BTreeSet::new(),
            }),
        }
    }
}

impl WorldState {
    /// Creates an empty state with the backend selected by
    /// `PDS2_STATE_BACKEND` (SMT unless overridden).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty state with an explicit commitment backend.
    pub fn with_backend(kind: BackendKind) -> Self {
        let mut st = Self::default();
        st.set_backend(kind);
        st
    }

    /// Swaps the commitment backend in place. The entire current leaf
    /// set is marked dirty so the next `state_root()` rebuilds the new
    /// backend's tree from scratch.
    pub fn set_backend(&mut self, kind: BackendKind) {
        {
            let mut c = self.committer.borrow_mut();
            c.backend = kind.make();
            c.dirty.clear();
        }
        self.mark_all_dirty();
    }

    /// Name of the active commitment backend.
    pub fn backend_name(&self) -> &'static str {
        self.committer.borrow().backend.name()
    }

    /// Marks one leaf for recommit. Conservative over-marking is always
    /// safe: the committed value is recomputed from the live maps, and
    /// an absent entry becomes a (possibly no-op) delete.
    fn mark(&self, key: LeafKey) {
        self.committer.borrow_mut().dirty.insert(key);
    }

    /// Marks every leaf currently present (backend swap / snapshot
    /// restore).
    pub(crate) fn mark_all_dirty(&self) {
        let mut c = self.committer.borrow_mut();
        for addr in self.accounts.keys() {
            c.dirty.insert(LeafKey::Account(*addr));
        }
        if self.erc20.next_id() != 0 {
            c.dirty.insert(LeafKey::Erc20Next);
        }
        for token in self.erc20.token_ids() {
            c.dirty.insert(LeafKey::Erc20Meta(token));
            for (addr, _) in self.erc20.balance_entries(token) {
                c.dirty.insert(LeafKey::Erc20Bal(token, addr));
            }
            for (owner, spender, _) in self.erc20.allowance_entries(token) {
                c.dirty.insert(LeafKey::Erc20Allow(token, owner, spender));
            }
        }
        if self.erc721.next_id() != 0 {
            c.dirty.insert(LeafKey::Erc721Next);
        }
        for (id, _) in self.erc721.token_entries() {
            c.dirty.insert(LeafKey::Erc721Token(id));
        }
        for addr in self.contracts.keys() {
            c.dirty.insert(LeafKey::Contract(*addr));
        }
        if self.burned != 0 {
            c.dirty.insert(LeafKey::Burned);
        }
    }

    /// Credits an address at genesis.
    pub fn genesis_credit(&mut self, addr: Address, amount: u128) {
        self.accounts.entry(addr).or_default().balance += amount;
        self.native_supply += amount;
        self.mark(LeafKey::Account(addr));
    }

    /// Account balance query.
    pub fn balance(&self, addr: &Address) -> u128 {
        self.accounts.get(addr).map_or(0, |a| a.balance)
    }

    /// Account nonce query.
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.accounts.get(addr).map_or(0, |a| a.nonce)
    }

    /// Sum of every native balance (for conservation checks). O(1):
    /// returns the maintained counter rather than walking the account
    /// map — `recompute_native_supply` is the slow cross-check.
    pub fn total_native_supply(&self) -> u128 {
        self.native_supply
    }

    /// Recomputes the native supply by walking every account. O(total
    /// accounts); exists so tests can assert the maintained counter
    /// never drifts from the ground truth.
    pub fn recompute_native_supply(&self) -> u128 {
        self.accounts.values().map(|a| a.balance).sum()
    }

    /// Total native tokens burned as base fees since genesis.
    pub fn burned(&self) -> u128 {
        self.burned
    }

    /// Whether a contract is deployed at `addr`.
    pub fn has_contract(&self, addr: &Address) -> bool {
        self.contracts.contains_key(addr)
    }

    /// The `code_id` of the contract at `addr`.
    pub fn contract_code_id(&self, addr: &Address) -> Option<&str> {
        self.contracts.get(addr).map(|c| c.code_id.as_str())
    }

    /// Read-only view of a contract's canonical snapshot (for inspection
    /// and off-chain indexing).
    pub fn contract_snapshot(&self, addr: &Address) -> Option<Vec<u8>> {
        self.contracts.get(addr).map(|c| c.contract.snapshot())
    }

    /// Canonical root hash of the entire state: the sparse-Merkle root
    /// over the [`LeafKey`] → value-bytes map (see DESIGN.md §5g).
    ///
    /// Commits lazily: leaves touched since the last call are
    /// recomputed from the live maps and folded into the backend's
    /// tree, costing O(touched keys · depth) on the incremental
    /// backend. With nothing dirty this is a cached-root read.
    pub fn state_root(&self) -> Digest {
        let mut committer = self.committer.borrow_mut();
        if committer.dirty.is_empty() {
            if let Some(root) = committer.backend.root() {
                return root;
            }
        }
        let updates: Vec<(Digest, Option<Digest>)> = committer
            .dirty
            .iter()
            .map(|k| (k.digest(), self.leaf_value(k).map(|b| sha256(&b))))
            .collect();
        let span = pds2_obs::span("state", "commit", pds2_obs::Stamp::None);
        let mut full = || self.full_leaves();
        let (root, hashed) = committer.backend.commit(&updates, &mut full);
        committer.dirty.clear();
        pds2_obs::counter!("state.smt.nodes_hashed").add(hashed);
        span.finish(
            pds2_obs::Stamp::None,
            vec![
                ("touched", pds2_obs::Value::from(updates.len() as u64)),
                ("nodes_hashed", pds2_obs::Value::from(hashed)),
            ],
        );
        root
    }

    /// Canonical value bytes of one leaf, `None` when the leaf is
    /// absent. This is the byte string a light client feeds to
    /// [`crate::smt::verify_proof`]; the tree stores its sha256.
    pub fn leaf_value(&self, key: &LeafKey) -> Option<Vec<u8>> {
        match key {
            LeafKey::Account(a) => self.accounts.get(a).map(|acct| acct.to_bytes()),
            LeafKey::Erc20Meta(t) => self.erc20.meta_entry(*t).map(|(sym, minter, supply)| {
                let mut enc = Encoder::new();
                enc.put_str(sym);
                enc.put_option(&minter);
                enc.put_u128(supply);
                enc.finish()
            }),
            LeafKey::Erc20Bal(t, a) => self.erc20.bal_entry(*t, a).map(|b| {
                let mut enc = Encoder::new();
                enc.put_u128(b);
                enc.finish()
            }),
            LeafKey::Erc20Allow(t, o, s) => self.erc20.allowance_entry(*t, o, s).map(|a| {
                let mut enc = Encoder::new();
                enc.put_u128(a);
                enc.finish()
            }),
            LeafKey::Erc20Next => (self.erc20.next_id() != 0).then(|| {
                let mut enc = Encoder::new();
                enc.put_u64(self.erc20.next_id());
                enc.finish()
            }),
            LeafKey::Erc721Token(id) => self.erc721.info(*id).map(|info| info.to_bytes()),
            LeafKey::Erc721Next => (self.erc721.next_id() != 0).then(|| {
                let mut enc = Encoder::new();
                enc.put_u64(self.erc721.next_id());
                enc.finish()
            }),
            LeafKey::Contract(a) => self.contracts.get(a).map(|inst| {
                let mut enc = Encoder::new();
                enc.put_str(&inst.code_id);
                enc.put_digest(&inst.contract.state_digest());
                enc.finish()
            }),
            LeafKey::Burned => (self.burned != 0).then(|| {
                let mut enc = Encoder::new();
                enc.put_u128(self.burned);
                enc.finish()
            }),
        }
    }

    /// Enumerates the complete canonical leaf set `(tree key, value
    /// digest)` from the live maps — the full-rehash oracle's input.
    /// Deliberately independent of the dirty set, so an incremental
    /// marking bug cannot hide here.
    pub(crate) fn full_leaves(&self) -> Vec<(Digest, Digest)> {
        let mut keys: Vec<LeafKey> = Vec::with_capacity(self.accounts.len() + 8);
        keys.extend(self.accounts.keys().map(|a| LeafKey::Account(*a)));
        if self.erc20.next_id() != 0 {
            keys.push(LeafKey::Erc20Next);
        }
        for token in self.erc20.token_ids() {
            keys.push(LeafKey::Erc20Meta(token));
            keys.extend(
                self.erc20
                    .balance_entries(token)
                    .map(|(a, _)| LeafKey::Erc20Bal(token, a)),
            );
            keys.extend(
                self.erc20
                    .allowance_entries(token)
                    .map(|(o, s, _)| LeafKey::Erc20Allow(token, o, s)),
            );
        }
        if self.erc721.next_id() != 0 {
            keys.push(LeafKey::Erc721Next);
        }
        keys.extend(
            self.erc721
                .token_entries()
                .map(|(id, _)| LeafKey::Erc721Token(id)),
        );
        keys.extend(self.contracts.keys().map(|a| LeafKey::Contract(*a)));
        if self.burned != 0 {
            keys.push(LeafKey::Burned);
        }
        keys.iter()
            .map(|k| {
                let bytes = self.leaf_value(k).expect("enumerated leaves are present");
                (k.digest(), sha256(&bytes))
            })
            .collect()
    }

    /// Produces the leaf's current value and a Merkle (non-)inclusion
    /// proof against the current state root (committing first if
    /// needed). Verify with [`crate::smt::verify_proof`] against the
    /// root from a validated block header.
    pub fn prove_leaf(&self, key: &LeafKey) -> (Option<Vec<u8>>, SmtProof) {
        let _ = self.state_root(); // flush pending changes
        let proof = self.committer.borrow().backend.prove(&key.digest());
        (self.leaf_value(key), proof)
    }

    /// Serializes the complete state for a recovery snapshot. Contracts
    /// are stored as `(code_id, deployer, init, snapshot)` so restore
    /// can revive each instance through the registry constructor — the
    /// construction that succeeded at deploy time succeeds again.
    pub(crate) fn encode_snapshot(&self, enc: &mut Encoder) {
        enc.put_u64(self.accounts.len() as u64);
        for (addr, acct) in &self.accounts {
            addr.encode(enc);
            acct.encode(enc);
        }
        self.erc20.encode(enc);
        self.erc721.encode(enc);
        enc.put_u64(self.contracts.len() as u64);
        for (addr, inst) in &self.contracts {
            addr.encode(enc);
            enc.put_str(&inst.code_id);
            inst.deployer.encode(enc);
            enc.put_bytes(&inst.init);
            enc.put_bytes(&inst.contract.snapshot());
        }
        enc.put_u128(self.burned);
        enc.put_u128(self.native_supply);
    }

    /// Rebuilds a state from a snapshot. The whole leaf set is marked
    /// dirty, so the first `state_root()` repopulates the backend.
    pub(crate) fn decode_snapshot(
        dec: &mut Decoder<'_>,
        registry: &ContractRegistry,
    ) -> Result<WorldState, String> {
        let fail = |e: pds2_crypto::DecodeError| format!("snapshot decode: {e:?}");
        let mut st = WorldState::new();
        for _ in 0..dec.get_u64().map_err(fail)? {
            let addr = Address::decode(dec).map_err(fail)?;
            let acct = Account::decode(dec).map_err(fail)?;
            st.accounts.insert(addr, acct);
        }
        st.erc20 = crate::erc20::Erc20Module::decode(dec).map_err(fail)?;
        st.erc721 = crate::erc721::Erc721Module::decode(dec).map_err(fail)?;
        for _ in 0..dec.get_u64().map_err(fail)? {
            let addr = Address::decode(dec).map_err(fail)?;
            let code_id = dec.get_str().map_err(fail)?;
            let deployer = Address::decode(dec).map_err(fail)?;
            let init = dec.get_bytes().map_err(fail)?;
            let snap = dec.get_bytes().map_err(fail)?;
            let mut contract = registry
                .instantiate(&code_id, deployer, &init)
                .map_err(|e| format!("snapshot revive {code_id}: {e}"))?;
            contract
                .restore(&snap)
                .map_err(|e| format!("snapshot restore {code_id}: {e}"))?;
            st.contracts.insert(
                addr,
                ContractInstance {
                    code_id,
                    deployer,
                    init,
                    contract,
                },
            );
        }
        st.burned = dec.get_u128().map_err(fail)?;
        st.native_supply = dec.get_u128().map_err(fail)?;
        st.mark_all_dirty();
        Ok(st)
    }

    /// Executes one signed transaction against the state.
    ///
    /// The caller (block producer / validator) must have verified the
    /// signature; this function re-checks it defensively and treats a bad
    /// signature or nonce as an invalid transaction (no state change, no
    /// receipt nonce bump).
    pub fn apply_transaction(
        &mut self,
        registry: &ContractRegistry,
        signed: &SignedTransaction,
        block_height: u64,
        tx_index: u32,
    ) -> TxReceipt {
        self.apply_transaction_traced(
            registry,
            signed,
            block_height,
            tx_index,
            pds2_obs::TraceCtx::NONE,
        )
    }

    /// [`WorldState::apply_transaction`] with an explicit causal context.
    ///
    /// The context flows into [`CallCtx::trace`] so contract code (and the
    /// marketplace state machine built on it) can attach its phase events
    /// to the workload's trace. Passing [`TraceCtx::NONE`] is exactly
    /// `apply_transaction`.
    ///
    /// [`TraceCtx::NONE`]: pds2_obs::TraceCtx::NONE
    pub fn apply_transaction_traced(
        &mut self,
        registry: &ContractRegistry,
        signed: &SignedTransaction,
        block_height: u64,
        tx_index: u32,
        trace: pds2_obs::TraceCtx,
    ) -> TxReceipt {
        self.apply_transaction_env(
            registry,
            signed,
            &BlockEnv::free(block_height),
            tx_index,
            trace,
        )
    }

    /// Executes one transaction under a block environment, charging
    /// EIP-1559 fees around the state transition:
    ///
    /// 1. the effective gas price at `env.base_fee` is computed (a fee
    ///    cap below the base fee fails the transaction without touching
    ///    state — producers never select such transactions, so hitting
    ///    this is a proposer fault);
    /// 2. `gas_limit × price` is escrowed from the sender up front (so
    ///    execution cannot spend money owed for gas);
    /// 3. after execution the unused portion is refunded, the base-fee
    ///    share of the consumed gas is burned (`burned` accumulator,
    ///    part of the state root) and the tip share is credited to
    ///    `env.coinbase`.
    ///
    /// A zero effective price (free/legacy transaction at zero base fee)
    /// skips the fee machinery entirely and is byte-identical to the
    /// historical execution path.
    pub fn apply_transaction_env(
        &mut self,
        registry: &ContractRegistry,
        signed: &SignedTransaction,
        env: &BlockEnv,
        tx_index: u32,
        trace: pds2_obs::TraceCtx,
    ) -> TxReceipt {
        let Some(price) = signed.tx.effective_gas_price(env.base_fee) else {
            return TxReceipt {
                tx_hash: signed.hash(),
                success: false,
                gas_used: 0,
                effective_gas_price: 0,
                output: Vec::new(),
                error: Some(format!(
                    "fee cap {} below base fee {}",
                    signed.tx.max_fee_per_gas, env.base_fee
                )),
                events: Vec::new(),
                deployed: None,
            };
        };
        if price == 0 {
            return self.apply_inner(registry, signed, env.height, tx_index, trace);
        }
        let sender = signed.tx.sender();
        // Let a bad signature or nonce produce its usual failure receipt
        // before any money moves.
        if !signed.verify_signature() || signed.tx.nonce != self.nonce(&sender) {
            return self.apply_inner(registry, signed, env.height, tx_index, trace);
        }
        let upfront = signed.tx.gas_limit as u128 * price as u128;
        if self.balance(&sender) < upfront {
            return TxReceipt {
                tx_hash: signed.hash(),
                success: false,
                gas_used: 0,
                effective_gas_price: price,
                output: Vec::new(),
                error: Some(format!(
                    "insufficient funds for gas: need {upfront}, have {}",
                    self.balance(&sender)
                )),
                events: Vec::new(),
                deployed: None,
            };
        }
        self.accounts.entry(sender).or_default().balance -= upfront;
        self.mark(LeafKey::Account(sender));
        let mut receipt = self.apply_inner(registry, signed, env.height, tx_index, trace);
        let gas_cost = receipt.gas_used as u128 * price as u128;
        self.accounts.entry(sender).or_default().balance += upfront - gas_cost;
        let burn = receipt.gas_used as u128 * env.base_fee as u128;
        let tip = gas_cost - burn;
        self.burned += burn;
        // Escrow−refund−tip nets the circulating supply down by exactly
        // the burn.
        self.native_supply -= burn;
        if burn > 0 {
            self.mark(LeafKey::Burned);
        }
        if tip > 0 {
            self.accounts.entry(env.coinbase).or_default().balance += tip;
            self.mark(LeafKey::Account(env.coinbase));
        }
        receipt.effective_gas_price = price;
        receipt
    }

    /// The fee-agnostic state transition (signature, nonce, gas metering,
    /// payload execution, receipt assembly).
    fn apply_inner(
        &mut self,
        registry: &ContractRegistry,
        signed: &SignedTransaction,
        block_height: u64,
        tx_index: u32,
        trace: pds2_obs::TraceCtx,
    ) -> TxReceipt {
        let tx_hash = signed.hash();
        let sender = signed.tx.sender();

        let fail = |error: String, gas_used: u64| TxReceipt {
            tx_hash,
            success: false,
            gas_used,
            effective_gas_price: 0,
            output: Vec::new(),
            error: Some(error),
            events: Vec::new(),
            deployed: None,
        };

        if !signed.verify_signature() {
            return fail("invalid signature".into(), 0);
        }
        let expected_nonce = self.nonce(&sender);
        if signed.tx.nonce != expected_nonce {
            return fail(
                format!(
                    "bad nonce: expected {expected_nonce}, got {}",
                    signed.tx.nonce
                ),
                0,
            );
        }

        // From here on the nonce is consumed, success or not.
        self.accounts.entry(sender).or_default().nonce += 1;
        self.mark(LeafKey::Account(sender));
        let sender_nonce_used = signed.tx.nonce;

        let mut meter = GasMeter::new(signed.tx.gas_limit);
        let intrinsic =
            gas::TX_BASE.saturating_add(signed.tx.to_bytes().len() as u64 * gas::PER_BYTE);
        if meter.charge(intrinsic).is_err() {
            return fail("out of gas (intrinsic)".into(), meter.used());
        }

        let mut events = EventSink::new();
        let result: Result<(Vec<u8>, Option<Address>), String> = match &signed.tx.kind {
            TxKind::Transfer { to, amount } => {
                self.native_transfer(sender, *to, *amount).map(|_| {
                    events.emit(Event::new(
                        "native.transfer",
                        format!("from={sender} to={to} amount={amount}"),
                    ));
                    (Vec::new(), None)
                })
            }
            TxKind::Erc20(op) => match meter.charge(gas::ERC20_OP) {
                Err(_) => Err("out of gas".into()),
                Ok(()) => {
                    let result = self.erc20.apply(sender, op, &mut events);
                    // Mark regardless of outcome: a failed Transfer/Burn
                    // still creates a zero balance entry for the sender
                    // (`entry().or_default()` precedes the check), and
                    // that entry is part of the canonical leaf set.
                    self.mark_erc20(sender, op, *result.as_ref().unwrap_or(&None));
                    result
                        .map(|created| {
                            let out = created
                                .map(|id| id.0.to_le_bytes().to_vec())
                                .unwrap_or_default();
                            (out, None)
                        })
                        .map_err(|e| e.to_string())
                }
            },
            TxKind::Erc721(op) => match meter.charge(gas::ERC721_OP) {
                Err(_) => Err("out of gas".into()),
                Ok(()) => {
                    let result = self.erc721.apply(sender, op, &mut events);
                    self.mark_erc721(op, *result.as_ref().unwrap_or(&None));
                    result
                        .map(|created| {
                            let out = created
                                .map(|id| id.0.to_le_bytes().to_vec())
                                .unwrap_or_default();
                            (out, None)
                        })
                        .map_err(|e| e.to_string())
                }
            },
            TxKind::Deploy { code_id, init } => match meter.charge(gas::DEPLOY) {
                Err(_) => Err("out of gas".into()),
                Ok(()) => {
                    let addr = Address::contract(&sender, sender_nonce_used);
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        self.contracts.entry(addr)
                    {
                        match registry.instantiate(code_id, sender, init) {
                            Ok(contract) => {
                                e.insert(ContractInstance {
                                    code_id: code_id.clone(),
                                    deployer: sender,
                                    init: init.clone(),
                                    contract,
                                });
                                self.accounts.entry(addr).or_default();
                                self.mark(LeafKey::Contract(addr));
                                self.mark(LeafKey::Account(addr));
                                events.emit(Event::new(
                                    "contract.deploy",
                                    format!("code={code_id} addr={addr} by={sender}"),
                                ));
                                Ok((Vec::new(), Some(addr)))
                            }
                            Err(e) => Err(e.to_string()),
                        }
                    } else {
                        Err("contract address collision".into())
                    }
                }
            },
            TxKind::Call {
                contract,
                input,
                value,
            } => self
                .execute_call(
                    sender,
                    *contract,
                    input,
                    *value,
                    block_height,
                    trace,
                    &mut meter,
                    &mut events,
                )
                .map(|out| (out, None)),
        };

        match result {
            Ok((output, deployed)) => {
                let mut evs = events.into_events();
                for (i, e) in evs.iter_mut().enumerate() {
                    e.block_height = block_height;
                    e.tx_index = tx_index;
                    let _ = i;
                }
                TxReceipt {
                    tx_hash,
                    success: true,
                    gas_used: meter.used(),
                    effective_gas_price: 0,
                    output,
                    error: None,
                    events: evs,
                    deployed,
                }
            }
            Err(error) => fail(error, meter.used()),
        }
    }

    fn native_transfer(&mut self, from: Address, to: Address, amount: u128) -> Result<(), String> {
        let from_balance = self.balance(&from);
        if from_balance < amount {
            return Err(format!(
                "insufficient balance: have {from_balance}, need {amount}"
            ));
        }
        self.accounts.entry(from).or_default().balance -= amount;
        self.accounts.entry(to).or_default().balance += amount;
        self.mark(LeafKey::Account(from));
        self.mark(LeafKey::Account(to));
        Ok(())
    }

    /// Dirty-marks the leaves an ERC-20 op can touch. Called on success
    /// AND failure: every marked leaf is recomputed from the live maps,
    /// so over-marking is harmless, while under-marking a failed op that
    /// left a zero entry behind would silently fork the root.
    fn mark_erc20(&self, sender: Address, op: &Erc20Op, created: Option<crate::erc20::TokenId>) {
        match op {
            Erc20Op::Create { .. } => {
                if let Some(id) = created {
                    self.mark(LeafKey::Erc20Next);
                    self.mark(LeafKey::Erc20Meta(id));
                    self.mark(LeafKey::Erc20Bal(id, sender));
                }
            }
            Erc20Op::Mint { token, to, .. } => {
                self.mark(LeafKey::Erc20Meta(*token));
                self.mark(LeafKey::Erc20Bal(*token, *to));
            }
            Erc20Op::Transfer { token, to, .. } => {
                self.mark(LeafKey::Erc20Bal(*token, sender));
                self.mark(LeafKey::Erc20Bal(*token, *to));
            }
            Erc20Op::Approve { token, spender, .. } => {
                self.mark(LeafKey::Erc20Allow(*token, sender, *spender));
            }
            Erc20Op::TransferFrom {
                token, owner, to, ..
            } => {
                self.mark(LeafKey::Erc20Allow(*token, *owner, sender));
                self.mark(LeafKey::Erc20Bal(*token, *owner));
                self.mark(LeafKey::Erc20Bal(*token, *to));
            }
            Erc20Op::Burn { token, .. } => {
                self.mark(LeafKey::Erc20Meta(*token));
                self.mark(LeafKey::Erc20Bal(*token, sender));
            }
        }
    }

    /// Dirty-marks the leaves an ERC-721 op can touch (failed NFT ops
    /// are verified non-mutating, but marking is still unconditional —
    /// recomputing an untouched leaf is a no-op).
    fn mark_erc721(&self, op: &Erc721Op, created: Option<crate::erc721::NftId>) {
        match op {
            Erc721Op::Mint { .. } => {
                if let Some(id) = created {
                    self.mark(LeafKey::Erc721Next);
                    self.mark(LeafKey::Erc721Token(id));
                }
            }
            Erc721Op::Transfer { id, .. }
            | Erc721Op::Approve { id, .. }
            | Erc721Op::TransferFrom { id, .. }
            | Erc721Op::Burn { id } => self.mark(LeafKey::Erc721Token(*id)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_call(
        &mut self,
        sender: Address,
        contract_addr: Address,
        input: &[u8],
        value: u128,
        block_height: u64,
        trace: pds2_obs::TraceCtx,
        meter: &mut GasMeter,
        events: &mut EventSink,
    ) -> Result<Vec<u8>, String> {
        meter.charge(gas::CALL_BASE).map_err(|e| e.to_string())?;
        if !self.contracts.contains_key(&contract_addr) {
            return Err(format!("no contract at {contract_addr}"));
        }
        // Escrow the attached value.
        if value > 0 {
            self.native_transfer(sender, contract_addr, value)?;
        }
        let snapshot = {
            let inst = self.contracts.get(&contract_addr).expect("checked above");
            inst.contract.snapshot()
        };
        // Split borrows: the contract is called mutably while the token
        // module is readable through the context.
        let (call_result, pending, pending_tokens) = {
            let contracts = &mut self.contracts;
            let erc20 = &self.erc20;
            let mut ctx = CallCtx {
                sender,
                contract: contract_addr,
                value,
                block_height,
                trace,
                gas: meter,
                events,
                pending_transfers: Vec::new(),
                pending_token_transfers: Vec::new(),
                erc20,
            };
            let inst = contracts.get_mut(&contract_addr).expect("checked above");
            let result = inst.contract.call(&mut ctx, input);
            (
                result,
                std::mem::take(&mut ctx.pending_transfers),
                std::mem::take(&mut ctx.pending_token_transfers),
            )
        };
        // The call may have mutated the contract's internal state (and a
        // failed call restores it); recompute its leaf either way.
        self.mark(LeafKey::Contract(contract_addr));

        let rollback = |state: &mut WorldState, events: &mut EventSink| {
            let inst = state
                .contracts
                .get_mut(&contract_addr)
                .expect("checked above");
            inst.contract
                .restore(&snapshot)
                .expect("restoring own snapshot cannot fail");
            if value > 0 {
                state
                    .native_transfer(contract_addr, sender, value)
                    .expect("escrow refund cannot fail");
            }
            events.clear();
        };

        match call_result {
            Ok(output) => {
                // Apply scheduled payouts; overspend aborts the whole call.
                let total: u128 = pending
                    .iter()
                    .map(|(_, a)| *a)
                    .fold(0u128, |acc, a| acc.saturating_add(a));
                if total > self.balance(&contract_addr) {
                    rollback(self, events);
                    return Err(ContractError::InsufficientContractFunds.to_string());
                }
                // Token payouts: per-token totals must fit the contract's
                // ERC-20 balance before anything moves.
                let mut token_totals: std::collections::BTreeMap<crate::erc20::TokenId, u128> =
                    std::collections::BTreeMap::new();
                for (token, _, amount) in &pending_tokens {
                    let t = token_totals.entry(*token).or_default();
                    *t = t.saturating_add(*amount);
                }
                for (token, total) in &token_totals {
                    if *total > self.erc20.balance_of(*token, &contract_addr) {
                        rollback(self, events);
                        return Err(ContractError::InsufficientContractFunds.to_string());
                    }
                }
                for (to, amount) in pending {
                    self.native_transfer(contract_addr, to, amount)
                        .expect("total checked above");
                }
                for (token, to, amount) in pending_tokens {
                    self.erc20
                        .module_transfer(token, contract_addr, to, amount)
                        .expect("totals checked above");
                    self.mark(LeafKey::Erc20Bal(token, contract_addr));
                    self.mark(LeafKey::Erc20Bal(token, to));
                    events.emit(Event::new(
                        "erc20.contract_payout",
                        format!(
                            "token={} from={contract_addr} to={to} amount={amount}",
                            token.0
                        ),
                    ));
                }
                Ok(output)
            }
            Err(e) => {
                rollback(self, events);
                Err(e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::test_support::Counter;
    use crate::tx::Transaction;
    use pds2_crypto::KeyPair;

    fn registry() -> ContractRegistry {
        let mut reg = ContractRegistry::new();
        reg.register("counter", Counter::construct);
        reg
    }

    fn make_tx(kp: &KeyPair, nonce: u64, kind: TxKind) -> SignedTransaction {
        Transaction {
            from: kp.public.clone(),
            nonce,
            kind,
            gas_limit: 1_000_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(kp)
    }

    fn funded_state(kp: &KeyPair, amount: u128) -> WorldState {
        let mut st = WorldState::new();
        st.genesis_credit(Address::of(&kp.public), amount);
        st
    }

    #[test]
    fn native_transfer_moves_funds_and_bumps_nonce() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let tx = make_tx(
            &alice,
            0,
            TxKind::Transfer {
                to: bob,
                amount: 400,
            },
        );
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(r.success, "{:?}", r.error);
        assert_eq!(st.balance(&bob), 400);
        assert_eq!(st.balance(&Address::of(&alice.public)), 600);
        assert_eq!(st.nonce(&Address::of(&alice.public)), 1);
        assert_eq!(r.events.len(), 1);
        assert!(r.gas_used >= gas::TX_BASE);
    }

    #[test]
    fn overdraft_fails_but_consumes_nonce() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 100);
        let reg = registry();
        let tx = make_tx(
            &alice,
            0,
            TxKind::Transfer {
                to: bob,
                amount: 400,
            },
        );
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(!r.success);
        assert_eq!(st.balance(&bob), 0);
        assert_eq!(st.nonce(&Address::of(&alice.public)), 1, "nonce consumed");
    }

    #[test]
    fn bad_nonce_rejected_without_state_change() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let tx = make_tx(&alice, 5, TxKind::Transfer { to: bob, amount: 1 });
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("bad nonce"));
        assert_eq!(st.nonce(&Address::of(&alice.public)), 0, "nonce unchanged");
    }

    #[test]
    fn forged_signature_rejected() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let mut tx = make_tx(&alice, 0, TxKind::Transfer { to: bob, amount: 1 });
        if let TxKind::Transfer { amount, .. } = &mut tx.tx.kind {
            *amount = 999; // tamper after signing
        }
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(!r.success);
        assert_eq!(r.error.unwrap(), "invalid signature");
        assert_eq!(st.balance(&bob), 0);
    }

    #[test]
    fn deploy_and_call_contract() {
        let alice = KeyPair::from_seed(1);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let deploy = make_tx(
            &alice,
            0,
            TxKind::Deploy {
                code_id: "counter".into(),
                init: Vec::new(),
            },
        );
        let r = st.apply_transaction(&reg, &deploy, 1, 0);
        assert!(r.success, "{:?}", r.error);
        let addr = r.deployed.unwrap();
        assert!(st.has_contract(&addr));
        assert_eq!(st.contract_code_id(&addr), Some("counter"));

        let call = make_tx(
            &alice,
            1,
            TxKind::Call {
                contract: addr,
                input: vec![0], // increment
                value: 0,
            },
        );
        let r = st.apply_transaction(&reg, &call, 2, 0);
        assert!(r.success, "{:?}", r.error);
        assert_eq!(u64::from_le_bytes(r.output[..8].try_into().unwrap()), 1);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].block_height, 2);
    }

    #[test]
    fn reverted_call_rolls_back_contract_state() {
        let alice = KeyPair::from_seed(1);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let deploy = make_tx(
            &alice,
            0,
            TxKind::Deploy {
                code_id: "counter".into(),
                init: Vec::new(),
            },
        );
        let addr = st.apply_transaction(&reg, &deploy, 1, 0).deployed.unwrap();
        let snap_before = st.contract_snapshot(&addr).unwrap();

        let call = make_tx(
            &alice,
            1,
            TxKind::Call {
                contract: addr,
                input: vec![1], // increment by 100 then revert
                value: 0,
            },
        );
        let r = st.apply_transaction(&reg, &call, 2, 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("deliberate"));
        assert_eq!(
            st.contract_snapshot(&addr).unwrap(),
            snap_before,
            "state rolled back"
        );
        assert!(r.events.is_empty(), "events dropped on revert");
    }

    #[test]
    fn value_escrow_and_payout() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let deploy = make_tx(
            &alice,
            0,
            TxKind::Deploy {
                code_id: "counter".into(),
                init: Vec::new(),
            },
        );
        let addr = st.apply_transaction(&reg, &deploy, 1, 0).deployed.unwrap();

        // Attach 100; contract pays back half.
        let call = make_tx(
            &alice,
            1,
            TxKind::Call {
                contract: addr,
                input: vec![2],
                value: 100,
            },
        );
        let r = st.apply_transaction(&reg, &call, 2, 0);
        assert!(r.success, "{:?}", r.error);
        assert_eq!(st.balance(&addr), 50);
        assert_eq!(st.balance(&alice_addr), 950);
        assert_eq!(st.total_native_supply(), 1000, "conservation");
    }

    #[test]
    fn overspending_contract_reverts_everything() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let deploy = make_tx(
            &alice,
            0,
            TxKind::Deploy {
                code_id: "counter".into(),
                init: Vec::new(),
            },
        );
        let addr = st.apply_transaction(&reg, &deploy, 1, 0).deployed.unwrap();
        let call = make_tx(
            &alice,
            1,
            TxKind::Call {
                contract: addr,
                input: vec![3], // schedules absurd payout
                value: 10,
            },
        );
        let r = st.apply_transaction(&reg, &call, 2, 0);
        assert!(!r.success);
        assert_eq!(st.balance(&alice_addr), 1000, "escrow refunded");
        assert_eq!(st.balance(&addr), 0);
    }

    #[test]
    fn call_to_missing_contract_fails() {
        let alice = KeyPair::from_seed(1);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let call = make_tx(
            &alice,
            0,
            TxKind::Call {
                contract: Address::contract(&Address::of(&alice.public), 99),
                input: vec![0],
                value: 0,
            },
        );
        let r = st.apply_transaction(&reg, &call, 1, 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("no contract"));
    }

    #[test]
    fn gas_limit_too_low_fails_intrinsic() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let tx = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer { to: bob, amount: 1 },
            gas_limit: 100, // far below TX_BASE
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("intrinsic"));
    }

    #[test]
    fn token_ops_via_transactions() {
        let alice = KeyPair::from_seed(1);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let create = make_tx(
            &alice,
            0,
            TxKind::Erc20(crate::erc20::Erc20Op::Create {
                symbol: "RWD".into(),
                initial_supply: 500,
            }),
        );
        let r = st.apply_transaction(&reg, &create, 1, 0);
        assert!(r.success);
        let token = crate::erc20::TokenId(u64::from_le_bytes(r.output[..8].try_into().unwrap()));
        assert_eq!(st.erc20.balance_of(token, &Address::of(&alice.public)), 500);
    }

    #[test]
    fn base_fee_burns_and_tips_the_proposer() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let coinbase = Address::of(&KeyPair::from_seed(3).public);
        let mut st = funded_state(&alice, 100_000_000);
        let reg = registry();
        let mut tx = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer { to: bob, amount: 7 },
            gas_limit: 1_000_000,
            max_fee_per_gas: 5,
            priority_fee_per_gas: 1,
        };
        let signed = tx.clone().sign(&alice);
        let env = BlockEnv {
            height: 1,
            base_fee: 2,
            coinbase,
        };
        let root_before = st.state_root();
        let r = st.apply_transaction_env(&reg, &signed, &env, 0, pds2_obs::TraceCtx::NONE);
        assert!(r.success, "{:?}", r.error);
        // price = min(max_fee, base + tip) = min(5, 3) = 3.
        assert_eq!(r.effective_gas_price, 3);
        let gas = r.gas_used as u128;
        assert_eq!(st.burned(), gas * 2, "base-fee share burned");
        assert_eq!(st.balance(&coinbase), gas, "1/gas tip to the proposer");
        assert_eq!(st.balance(&bob), 7);
        assert_eq!(st.balance(&alice_addr), 100_000_000 - 7 - gas * 3);
        // Conservation now includes the burn.
        assert_eq!(st.total_native_supply() + st.burned(), 100_000_000);
        assert_ne!(st.state_root(), root_before);

        // A fee cap below the base fee fails without touching state.
        tx.nonce = 1;
        tx.max_fee_per_gas = 1;
        let signed = tx.sign(&alice);
        let supply = st.total_native_supply();
        let r = st.apply_transaction_env(&reg, &signed, &env, 1, pds2_obs::TraceCtx::NONE);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("below base fee"));
        assert_eq!(st.nonce(&alice_addr), 1, "nonce NOT consumed");
        assert_eq!(st.total_native_supply(), supply);
    }

    #[test]
    fn failed_execution_still_pays_gas() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        // Fund enough for gas but not the transfer.
        let mut st = funded_state(&alice, 10_000_000);
        let reg = registry();
        let signed = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer {
                to: bob,
                amount: u128::MAX / 2,
            },
            gas_limit: 1_000_000,
            max_fee_per_gas: 2,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        let env = BlockEnv {
            height: 1,
            base_fee: 2,
            coinbase: Address(pds2_crypto::sha256(b"cb")),
        };
        let r = st.apply_transaction_env(&reg, &signed, &env, 0, pds2_obs::TraceCtx::NONE);
        assert!(!r.success);
        assert_eq!(r.effective_gas_price, 2);
        let gas = r.gas_used as u128;
        assert!(gas > 0);
        assert_eq!(st.balance(&alice_addr), 10_000_000 - gas * 2);
        assert_eq!(st.burned(), gas * 2, "whole fee burned (tip is zero)");
        assert_eq!(st.nonce(&alice_addr), 1, "nonce consumed");
    }

    #[test]
    fn insufficient_funds_for_gas_fails_cleanly() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 100); // can't escrow 1M gas at 2/gas
        let reg = registry();
        let signed = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer { to: bob, amount: 1 },
            gas_limit: 1_000_000,
            max_fee_per_gas: 2,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        let env = BlockEnv {
            height: 1,
            base_fee: 2,
            coinbase: Address(pds2_crypto::sha256(b"cb")),
        };
        let r = st.apply_transaction_env(&reg, &signed, &env, 0, pds2_obs::TraceCtx::NONE);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("insufficient funds for gas"));
        assert_eq!(st.balance(&alice_addr), 100, "nothing charged");
        assert_eq!(st.nonce(&alice_addr), 0, "nonce untouched");
    }

    #[test]
    fn state_root_changes_with_every_mutation() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let r0 = st.state_root();
        let tx = make_tx(&alice, 0, TxKind::Transfer { to: bob, amount: 1 });
        st.apply_transaction(&reg, &tx, 1, 0);
        let r1 = st.state_root();
        assert_ne!(r0, r1);
        // Deterministic: same state, same root.
        assert_eq!(st.state_root(), r1);
    }
}
