//! World state and transaction execution.
//!
//! [`WorldState`] holds native accounts, the two token modules and every
//! deployed contract instance. [`WorldState::apply_transaction`] is the
//! single state-transition function: it meters gas, enforces nonces,
//! executes the payload atomically (failed transactions leave no effects
//! beyond the nonce bump) and produces a [`TxReceipt`].

use crate::address::{Account, Address};
use crate::contract::{CallCtx, ContractError, ContractRegistry};
use crate::event::{Event, EventSink};
use crate::gas::{self, GasMeter};
use crate::tx::{SignedTransaction, TxKind};
use pds2_crypto::codec::{Encode, Encoder};
use pds2_crypto::sha256::{sha256, Digest};
use std::collections::BTreeMap;

/// Per-block execution environment: the consensus values every
/// transaction in the block executes under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEnv {
    /// Height of the including block.
    pub height: u64,
    /// Base fee per gas (EIP-1559): burned on every unit of gas.
    pub base_fee: u64,
    /// Proposer address credited with priority fees.
    pub coinbase: Address,
}

impl BlockEnv {
    /// A zero-fee environment at `height` — the legacy execution model
    /// (no base fee, no proposer payment).
    pub fn free(height: u64) -> BlockEnv {
        BlockEnv {
            height,
            base_fee: 0,
            coinbase: Address(Digest::ZERO),
        }
    }
}

/// Outcome of executing one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxReceipt {
    /// Hash of the transaction.
    pub tx_hash: Digest,
    /// Whether execution succeeded.
    pub success: bool,
    /// Gas consumed.
    pub gas_used: u64,
    /// Per-gas price actually paid (EIP-1559 effective price at the
    /// block's base fee; 0 for free/legacy transactions).
    pub effective_gas_price: u64,
    /// Contract return data (empty unless a successful call returned some).
    pub output: Vec<u8>,
    /// Error description on failure.
    pub error: Option<String>,
    /// Events emitted (empty on failure).
    pub events: Vec<Event>,
    /// Address of the deployed contract, for deploy transactions.
    pub deployed: Option<Address>,
}

/// A deployed contract instance.
struct ContractInstance {
    code_id: String,
    contract: Box<dyn crate::contract::Contract>,
}

/// The full chain state.
#[derive(Default)]
pub struct WorldState {
    accounts: BTreeMap<Address, Account>,
    /// Fungible-token module.
    pub erc20: crate::erc20::Erc20Module,
    /// NFT module.
    pub erc721: crate::erc721::Erc721Module,
    contracts: BTreeMap<Address, ContractInstance>,
    /// Cumulative native tokens destroyed by base-fee burning. Part of
    /// the state root: every node must agree on it, and the conservation
    /// invariant becomes `circulating supply + burned = const`.
    burned: u128,
}

impl WorldState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Credits an address at genesis.
    pub fn genesis_credit(&mut self, addr: Address, amount: u128) {
        self.accounts.entry(addr).or_default().balance += amount;
    }

    /// Account balance query.
    pub fn balance(&self, addr: &Address) -> u128 {
        self.accounts.get(addr).map_or(0, |a| a.balance)
    }

    /// Account nonce query.
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.accounts.get(addr).map_or(0, |a| a.nonce)
    }

    /// Sum of every native balance (for conservation checks).
    pub fn total_native_supply(&self) -> u128 {
        self.accounts.values().map(|a| a.balance).sum()
    }

    /// Total native tokens burned as base fees since genesis.
    pub fn burned(&self) -> u128 {
        self.burned
    }

    /// Whether a contract is deployed at `addr`.
    pub fn has_contract(&self, addr: &Address) -> bool {
        self.contracts.contains_key(addr)
    }

    /// The `code_id` of the contract at `addr`.
    pub fn contract_code_id(&self, addr: &Address) -> Option<&str> {
        self.contracts.get(addr).map(|c| c.code_id.as_str())
    }

    /// Read-only view of a contract's canonical snapshot (for inspection
    /// and off-chain indexing).
    pub fn contract_snapshot(&self, addr: &Address) -> Option<Vec<u8>> {
        self.contracts.get(addr).map(|c| c.contract.snapshot())
    }

    /// Canonical root hash of the entire state.
    pub fn state_root(&self) -> Digest {
        let mut enc = Encoder::new();
        enc.put_u64(self.accounts.len() as u64);
        for (addr, acct) in &self.accounts {
            addr.encode(&mut enc);
            acct.encode(&mut enc);
        }
        enc.put_digest(&self.erc20.state_digest());
        enc.put_digest(&self.erc721.state_digest());
        enc.put_u64(self.contracts.len() as u64);
        for (addr, inst) in &self.contracts {
            addr.encode(&mut enc);
            enc.put_str(&inst.code_id);
            enc.put_digest(&inst.contract.state_digest());
        }
        enc.put_u128(self.burned);
        sha256(&enc.finish())
    }

    /// Executes one signed transaction against the state.
    ///
    /// The caller (block producer / validator) must have verified the
    /// signature; this function re-checks it defensively and treats a bad
    /// signature or nonce as an invalid transaction (no state change, no
    /// receipt nonce bump).
    pub fn apply_transaction(
        &mut self,
        registry: &ContractRegistry,
        signed: &SignedTransaction,
        block_height: u64,
        tx_index: u32,
    ) -> TxReceipt {
        self.apply_transaction_traced(
            registry,
            signed,
            block_height,
            tx_index,
            pds2_obs::TraceCtx::NONE,
        )
    }

    /// [`WorldState::apply_transaction`] with an explicit causal context.
    ///
    /// The context flows into [`CallCtx::trace`] so contract code (and the
    /// marketplace state machine built on it) can attach its phase events
    /// to the workload's trace. Passing [`TraceCtx::NONE`] is exactly
    /// `apply_transaction`.
    ///
    /// [`TraceCtx::NONE`]: pds2_obs::TraceCtx::NONE
    pub fn apply_transaction_traced(
        &mut self,
        registry: &ContractRegistry,
        signed: &SignedTransaction,
        block_height: u64,
        tx_index: u32,
        trace: pds2_obs::TraceCtx,
    ) -> TxReceipt {
        self.apply_transaction_env(
            registry,
            signed,
            &BlockEnv::free(block_height),
            tx_index,
            trace,
        )
    }

    /// Executes one transaction under a block environment, charging
    /// EIP-1559 fees around the state transition:
    ///
    /// 1. the effective gas price at `env.base_fee` is computed (a fee
    ///    cap below the base fee fails the transaction without touching
    ///    state — producers never select such transactions, so hitting
    ///    this is a proposer fault);
    /// 2. `gas_limit × price` is escrowed from the sender up front (so
    ///    execution cannot spend money owed for gas);
    /// 3. after execution the unused portion is refunded, the base-fee
    ///    share of the consumed gas is burned (`burned` accumulator,
    ///    part of the state root) and the tip share is credited to
    ///    `env.coinbase`.
    ///
    /// A zero effective price (free/legacy transaction at zero base fee)
    /// skips the fee machinery entirely and is byte-identical to the
    /// historical execution path.
    pub fn apply_transaction_env(
        &mut self,
        registry: &ContractRegistry,
        signed: &SignedTransaction,
        env: &BlockEnv,
        tx_index: u32,
        trace: pds2_obs::TraceCtx,
    ) -> TxReceipt {
        let Some(price) = signed.tx.effective_gas_price(env.base_fee) else {
            return TxReceipt {
                tx_hash: signed.hash(),
                success: false,
                gas_used: 0,
                effective_gas_price: 0,
                output: Vec::new(),
                error: Some(format!(
                    "fee cap {} below base fee {}",
                    signed.tx.max_fee_per_gas, env.base_fee
                )),
                events: Vec::new(),
                deployed: None,
            };
        };
        if price == 0 {
            return self.apply_inner(registry, signed, env.height, tx_index, trace);
        }
        let sender = signed.tx.sender();
        // Let a bad signature or nonce produce its usual failure receipt
        // before any money moves.
        if !signed.verify_signature() || signed.tx.nonce != self.nonce(&sender) {
            return self.apply_inner(registry, signed, env.height, tx_index, trace);
        }
        let upfront = signed.tx.gas_limit as u128 * price as u128;
        if self.balance(&sender) < upfront {
            return TxReceipt {
                tx_hash: signed.hash(),
                success: false,
                gas_used: 0,
                effective_gas_price: price,
                output: Vec::new(),
                error: Some(format!(
                    "insufficient funds for gas: need {upfront}, have {}",
                    self.balance(&sender)
                )),
                events: Vec::new(),
                deployed: None,
            };
        }
        self.accounts.entry(sender).or_default().balance -= upfront;
        let mut receipt = self.apply_inner(registry, signed, env.height, tx_index, trace);
        let gas_cost = receipt.gas_used as u128 * price as u128;
        self.accounts.entry(sender).or_default().balance += upfront - gas_cost;
        let burn = receipt.gas_used as u128 * env.base_fee as u128;
        let tip = gas_cost - burn;
        self.burned += burn;
        if tip > 0 {
            self.accounts.entry(env.coinbase).or_default().balance += tip;
        }
        receipt.effective_gas_price = price;
        receipt
    }

    /// The fee-agnostic state transition (signature, nonce, gas metering,
    /// payload execution, receipt assembly).
    fn apply_inner(
        &mut self,
        registry: &ContractRegistry,
        signed: &SignedTransaction,
        block_height: u64,
        tx_index: u32,
        trace: pds2_obs::TraceCtx,
    ) -> TxReceipt {
        let tx_hash = signed.hash();
        let sender = signed.tx.sender();

        let fail = |error: String, gas_used: u64| TxReceipt {
            tx_hash,
            success: false,
            gas_used,
            effective_gas_price: 0,
            output: Vec::new(),
            error: Some(error),
            events: Vec::new(),
            deployed: None,
        };

        if !signed.verify_signature() {
            return fail("invalid signature".into(), 0);
        }
        let expected_nonce = self.nonce(&sender);
        if signed.tx.nonce != expected_nonce {
            return fail(
                format!(
                    "bad nonce: expected {expected_nonce}, got {}",
                    signed.tx.nonce
                ),
                0,
            );
        }

        // From here on the nonce is consumed, success or not.
        self.accounts.entry(sender).or_default().nonce += 1;
        let sender_nonce_used = signed.tx.nonce;

        let mut meter = GasMeter::new(signed.tx.gas_limit);
        let intrinsic =
            gas::TX_BASE.saturating_add(signed.tx.to_bytes().len() as u64 * gas::PER_BYTE);
        if meter.charge(intrinsic).is_err() {
            return fail("out of gas (intrinsic)".into(), meter.used());
        }

        let mut events = EventSink::new();
        let result: Result<(Vec<u8>, Option<Address>), String> = match &signed.tx.kind {
            TxKind::Transfer { to, amount } => {
                self.native_transfer(sender, *to, *amount).map(|_| {
                    events.emit(Event::new(
                        "native.transfer",
                        format!("from={sender} to={to} amount={amount}"),
                    ));
                    (Vec::new(), None)
                })
            }
            TxKind::Erc20(op) => match meter.charge(gas::ERC20_OP) {
                Err(_) => Err("out of gas".into()),
                Ok(()) => self
                    .erc20
                    .apply(sender, op, &mut events)
                    .map(|created| {
                        let out = created
                            .map(|id| id.0.to_le_bytes().to_vec())
                            .unwrap_or_default();
                        (out, None)
                    })
                    .map_err(|e| e.to_string()),
            },
            TxKind::Erc721(op) => match meter.charge(gas::ERC721_OP) {
                Err(_) => Err("out of gas".into()),
                Ok(()) => self
                    .erc721
                    .apply(sender, op, &mut events)
                    .map(|created| {
                        let out = created
                            .map(|id| id.0.to_le_bytes().to_vec())
                            .unwrap_or_default();
                        (out, None)
                    })
                    .map_err(|e| e.to_string()),
            },
            TxKind::Deploy { code_id, init } => match meter.charge(gas::DEPLOY) {
                Err(_) => Err("out of gas".into()),
                Ok(()) => {
                    let addr = Address::contract(&sender, sender_nonce_used);
                    if let std::collections::btree_map::Entry::Vacant(e) =
                        self.contracts.entry(addr)
                    {
                        match registry.instantiate(code_id, sender, init) {
                            Ok(contract) => {
                                e.insert(ContractInstance {
                                    code_id: code_id.clone(),
                                    contract,
                                });
                                self.accounts.entry(addr).or_default();
                                events.emit(Event::new(
                                    "contract.deploy",
                                    format!("code={code_id} addr={addr} by={sender}"),
                                ));
                                Ok((Vec::new(), Some(addr)))
                            }
                            Err(e) => Err(e.to_string()),
                        }
                    } else {
                        Err("contract address collision".into())
                    }
                }
            },
            TxKind::Call {
                contract,
                input,
                value,
            } => self
                .execute_call(
                    sender,
                    *contract,
                    input,
                    *value,
                    block_height,
                    trace,
                    &mut meter,
                    &mut events,
                )
                .map(|out| (out, None)),
        };

        match result {
            Ok((output, deployed)) => {
                let mut evs = events.into_events();
                for (i, e) in evs.iter_mut().enumerate() {
                    e.block_height = block_height;
                    e.tx_index = tx_index;
                    let _ = i;
                }
                TxReceipt {
                    tx_hash,
                    success: true,
                    gas_used: meter.used(),
                    effective_gas_price: 0,
                    output,
                    error: None,
                    events: evs,
                    deployed,
                }
            }
            Err(error) => fail(error, meter.used()),
        }
    }

    fn native_transfer(&mut self, from: Address, to: Address, amount: u128) -> Result<(), String> {
        let from_balance = self.balance(&from);
        if from_balance < amount {
            return Err(format!(
                "insufficient balance: have {from_balance}, need {amount}"
            ));
        }
        self.accounts.entry(from).or_default().balance -= amount;
        self.accounts.entry(to).or_default().balance += amount;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_call(
        &mut self,
        sender: Address,
        contract_addr: Address,
        input: &[u8],
        value: u128,
        block_height: u64,
        trace: pds2_obs::TraceCtx,
        meter: &mut GasMeter,
        events: &mut EventSink,
    ) -> Result<Vec<u8>, String> {
        meter.charge(gas::CALL_BASE).map_err(|e| e.to_string())?;
        if !self.contracts.contains_key(&contract_addr) {
            return Err(format!("no contract at {contract_addr}"));
        }
        // Escrow the attached value.
        if value > 0 {
            self.native_transfer(sender, contract_addr, value)?;
        }
        let snapshot = {
            let inst = self.contracts.get(&contract_addr).expect("checked above");
            inst.contract.snapshot()
        };
        // Split borrows: the contract is called mutably while the token
        // module is readable through the context.
        let (call_result, pending, pending_tokens) = {
            let contracts = &mut self.contracts;
            let erc20 = &self.erc20;
            let mut ctx = CallCtx {
                sender,
                contract: contract_addr,
                value,
                block_height,
                trace,
                gas: meter,
                events,
                pending_transfers: Vec::new(),
                pending_token_transfers: Vec::new(),
                erc20,
            };
            let inst = contracts.get_mut(&contract_addr).expect("checked above");
            let result = inst.contract.call(&mut ctx, input);
            (
                result,
                std::mem::take(&mut ctx.pending_transfers),
                std::mem::take(&mut ctx.pending_token_transfers),
            )
        };

        let rollback = |state: &mut WorldState, events: &mut EventSink| {
            let inst = state
                .contracts
                .get_mut(&contract_addr)
                .expect("checked above");
            inst.contract
                .restore(&snapshot)
                .expect("restoring own snapshot cannot fail");
            if value > 0 {
                state
                    .native_transfer(contract_addr, sender, value)
                    .expect("escrow refund cannot fail");
            }
            events.clear();
        };

        match call_result {
            Ok(output) => {
                // Apply scheduled payouts; overspend aborts the whole call.
                let total: u128 = pending
                    .iter()
                    .map(|(_, a)| *a)
                    .fold(0u128, |acc, a| acc.saturating_add(a));
                if total > self.balance(&contract_addr) {
                    rollback(self, events);
                    return Err(ContractError::InsufficientContractFunds.to_string());
                }
                // Token payouts: per-token totals must fit the contract's
                // ERC-20 balance before anything moves.
                let mut token_totals: std::collections::BTreeMap<crate::erc20::TokenId, u128> =
                    std::collections::BTreeMap::new();
                for (token, _, amount) in &pending_tokens {
                    let t = token_totals.entry(*token).or_default();
                    *t = t.saturating_add(*amount);
                }
                for (token, total) in &token_totals {
                    if *total > self.erc20.balance_of(*token, &contract_addr) {
                        rollback(self, events);
                        return Err(ContractError::InsufficientContractFunds.to_string());
                    }
                }
                for (to, amount) in pending {
                    self.native_transfer(contract_addr, to, amount)
                        .expect("total checked above");
                }
                for (token, to, amount) in pending_tokens {
                    self.erc20
                        .module_transfer(token, contract_addr, to, amount)
                        .expect("totals checked above");
                    events.emit(Event::new(
                        "erc20.contract_payout",
                        format!(
                            "token={} from={contract_addr} to={to} amount={amount}",
                            token.0
                        ),
                    ));
                }
                Ok(output)
            }
            Err(e) => {
                rollback(self, events);
                Err(e.to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::test_support::Counter;
    use crate::tx::Transaction;
    use pds2_crypto::KeyPair;

    fn registry() -> ContractRegistry {
        let mut reg = ContractRegistry::new();
        reg.register("counter", Counter::construct);
        reg
    }

    fn make_tx(kp: &KeyPair, nonce: u64, kind: TxKind) -> SignedTransaction {
        Transaction {
            from: kp.public.clone(),
            nonce,
            kind,
            gas_limit: 1_000_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(kp)
    }

    fn funded_state(kp: &KeyPair, amount: u128) -> WorldState {
        let mut st = WorldState::new();
        st.genesis_credit(Address::of(&kp.public), amount);
        st
    }

    #[test]
    fn native_transfer_moves_funds_and_bumps_nonce() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let tx = make_tx(
            &alice,
            0,
            TxKind::Transfer {
                to: bob,
                amount: 400,
            },
        );
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(r.success, "{:?}", r.error);
        assert_eq!(st.balance(&bob), 400);
        assert_eq!(st.balance(&Address::of(&alice.public)), 600);
        assert_eq!(st.nonce(&Address::of(&alice.public)), 1);
        assert_eq!(r.events.len(), 1);
        assert!(r.gas_used >= gas::TX_BASE);
    }

    #[test]
    fn overdraft_fails_but_consumes_nonce() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 100);
        let reg = registry();
        let tx = make_tx(
            &alice,
            0,
            TxKind::Transfer {
                to: bob,
                amount: 400,
            },
        );
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(!r.success);
        assert_eq!(st.balance(&bob), 0);
        assert_eq!(st.nonce(&Address::of(&alice.public)), 1, "nonce consumed");
    }

    #[test]
    fn bad_nonce_rejected_without_state_change() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let tx = make_tx(&alice, 5, TxKind::Transfer { to: bob, amount: 1 });
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("bad nonce"));
        assert_eq!(st.nonce(&Address::of(&alice.public)), 0, "nonce unchanged");
    }

    #[test]
    fn forged_signature_rejected() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let mut tx = make_tx(&alice, 0, TxKind::Transfer { to: bob, amount: 1 });
        if let TxKind::Transfer { amount, .. } = &mut tx.tx.kind {
            *amount = 999; // tamper after signing
        }
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(!r.success);
        assert_eq!(r.error.unwrap(), "invalid signature");
        assert_eq!(st.balance(&bob), 0);
    }

    #[test]
    fn deploy_and_call_contract() {
        let alice = KeyPair::from_seed(1);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let deploy = make_tx(
            &alice,
            0,
            TxKind::Deploy {
                code_id: "counter".into(),
                init: Vec::new(),
            },
        );
        let r = st.apply_transaction(&reg, &deploy, 1, 0);
        assert!(r.success, "{:?}", r.error);
        let addr = r.deployed.unwrap();
        assert!(st.has_contract(&addr));
        assert_eq!(st.contract_code_id(&addr), Some("counter"));

        let call = make_tx(
            &alice,
            1,
            TxKind::Call {
                contract: addr,
                input: vec![0], // increment
                value: 0,
            },
        );
        let r = st.apply_transaction(&reg, &call, 2, 0);
        assert!(r.success, "{:?}", r.error);
        assert_eq!(u64::from_le_bytes(r.output[..8].try_into().unwrap()), 1);
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].block_height, 2);
    }

    #[test]
    fn reverted_call_rolls_back_contract_state() {
        let alice = KeyPair::from_seed(1);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let deploy = make_tx(
            &alice,
            0,
            TxKind::Deploy {
                code_id: "counter".into(),
                init: Vec::new(),
            },
        );
        let addr = st.apply_transaction(&reg, &deploy, 1, 0).deployed.unwrap();
        let snap_before = st.contract_snapshot(&addr).unwrap();

        let call = make_tx(
            &alice,
            1,
            TxKind::Call {
                contract: addr,
                input: vec![1], // increment by 100 then revert
                value: 0,
            },
        );
        let r = st.apply_transaction(&reg, &call, 2, 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("deliberate"));
        assert_eq!(
            st.contract_snapshot(&addr).unwrap(),
            snap_before,
            "state rolled back"
        );
        assert!(r.events.is_empty(), "events dropped on revert");
    }

    #[test]
    fn value_escrow_and_payout() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let deploy = make_tx(
            &alice,
            0,
            TxKind::Deploy {
                code_id: "counter".into(),
                init: Vec::new(),
            },
        );
        let addr = st.apply_transaction(&reg, &deploy, 1, 0).deployed.unwrap();

        // Attach 100; contract pays back half.
        let call = make_tx(
            &alice,
            1,
            TxKind::Call {
                contract: addr,
                input: vec![2],
                value: 100,
            },
        );
        let r = st.apply_transaction(&reg, &call, 2, 0);
        assert!(r.success, "{:?}", r.error);
        assert_eq!(st.balance(&addr), 50);
        assert_eq!(st.balance(&alice_addr), 950);
        assert_eq!(st.total_native_supply(), 1000, "conservation");
    }

    #[test]
    fn overspending_contract_reverts_everything() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let deploy = make_tx(
            &alice,
            0,
            TxKind::Deploy {
                code_id: "counter".into(),
                init: Vec::new(),
            },
        );
        let addr = st.apply_transaction(&reg, &deploy, 1, 0).deployed.unwrap();
        let call = make_tx(
            &alice,
            1,
            TxKind::Call {
                contract: addr,
                input: vec![3], // schedules absurd payout
                value: 10,
            },
        );
        let r = st.apply_transaction(&reg, &call, 2, 0);
        assert!(!r.success);
        assert_eq!(st.balance(&alice_addr), 1000, "escrow refunded");
        assert_eq!(st.balance(&addr), 0);
    }

    #[test]
    fn call_to_missing_contract_fails() {
        let alice = KeyPair::from_seed(1);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let call = make_tx(
            &alice,
            0,
            TxKind::Call {
                contract: Address::contract(&Address::of(&alice.public), 99),
                input: vec![0],
                value: 0,
            },
        );
        let r = st.apply_transaction(&reg, &call, 1, 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("no contract"));
    }

    #[test]
    fn gas_limit_too_low_fails_intrinsic() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let tx = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer { to: bob, amount: 1 },
            gas_limit: 100, // far below TX_BASE
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        let r = st.apply_transaction(&reg, &tx, 1, 0);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("intrinsic"));
    }

    #[test]
    fn token_ops_via_transactions() {
        let alice = KeyPair::from_seed(1);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let create = make_tx(
            &alice,
            0,
            TxKind::Erc20(crate::erc20::Erc20Op::Create {
                symbol: "RWD".into(),
                initial_supply: 500,
            }),
        );
        let r = st.apply_transaction(&reg, &create, 1, 0);
        assert!(r.success);
        let token = crate::erc20::TokenId(u64::from_le_bytes(r.output[..8].try_into().unwrap()));
        assert_eq!(st.erc20.balance_of(token, &Address::of(&alice.public)), 500);
    }

    #[test]
    fn base_fee_burns_and_tips_the_proposer() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let coinbase = Address::of(&KeyPair::from_seed(3).public);
        let mut st = funded_state(&alice, 100_000_000);
        let reg = registry();
        let mut tx = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer { to: bob, amount: 7 },
            gas_limit: 1_000_000,
            max_fee_per_gas: 5,
            priority_fee_per_gas: 1,
        };
        let signed = tx.clone().sign(&alice);
        let env = BlockEnv {
            height: 1,
            base_fee: 2,
            coinbase,
        };
        let root_before = st.state_root();
        let r = st.apply_transaction_env(&reg, &signed, &env, 0, pds2_obs::TraceCtx::NONE);
        assert!(r.success, "{:?}", r.error);
        // price = min(max_fee, base + tip) = min(5, 3) = 3.
        assert_eq!(r.effective_gas_price, 3);
        let gas = r.gas_used as u128;
        assert_eq!(st.burned(), gas * 2, "base-fee share burned");
        assert_eq!(st.balance(&coinbase), gas, "1/gas tip to the proposer");
        assert_eq!(st.balance(&bob), 7);
        assert_eq!(st.balance(&alice_addr), 100_000_000 - 7 - gas * 3);
        // Conservation now includes the burn.
        assert_eq!(st.total_native_supply() + st.burned(), 100_000_000);
        assert_ne!(st.state_root(), root_before);

        // A fee cap below the base fee fails without touching state.
        tx.nonce = 1;
        tx.max_fee_per_gas = 1;
        let signed = tx.sign(&alice);
        let supply = st.total_native_supply();
        let r = st.apply_transaction_env(&reg, &signed, &env, 1, pds2_obs::TraceCtx::NONE);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("below base fee"));
        assert_eq!(st.nonce(&alice_addr), 1, "nonce NOT consumed");
        assert_eq!(st.total_native_supply(), supply);
    }

    #[test]
    fn failed_execution_still_pays_gas() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        // Fund enough for gas but not the transfer.
        let mut st = funded_state(&alice, 10_000_000);
        let reg = registry();
        let signed = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer {
                to: bob,
                amount: u128::MAX / 2,
            },
            gas_limit: 1_000_000,
            max_fee_per_gas: 2,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        let env = BlockEnv {
            height: 1,
            base_fee: 2,
            coinbase: Address(pds2_crypto::sha256(b"cb")),
        };
        let r = st.apply_transaction_env(&reg, &signed, &env, 0, pds2_obs::TraceCtx::NONE);
        assert!(!r.success);
        assert_eq!(r.effective_gas_price, 2);
        let gas = r.gas_used as u128;
        assert!(gas > 0);
        assert_eq!(st.balance(&alice_addr), 10_000_000 - gas * 2);
        assert_eq!(st.burned(), gas * 2, "whole fee burned (tip is zero)");
        assert_eq!(st.nonce(&alice_addr), 1, "nonce consumed");
    }

    #[test]
    fn insufficient_funds_for_gas_fails_cleanly() {
        let alice = KeyPair::from_seed(1);
        let alice_addr = Address::of(&alice.public);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 100); // can't escrow 1M gas at 2/gas
        let reg = registry();
        let signed = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer { to: bob, amount: 1 },
            gas_limit: 1_000_000,
            max_fee_per_gas: 2,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        let env = BlockEnv {
            height: 1,
            base_fee: 2,
            coinbase: Address(pds2_crypto::sha256(b"cb")),
        };
        let r = st.apply_transaction_env(&reg, &signed, &env, 0, pds2_obs::TraceCtx::NONE);
        assert!(!r.success);
        assert!(r.error.unwrap().contains("insufficient funds for gas"));
        assert_eq!(st.balance(&alice_addr), 100, "nothing charged");
        assert_eq!(st.nonce(&alice_addr), 0, "nonce untouched");
    }

    #[test]
    fn state_root_changes_with_every_mutation() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut st = funded_state(&alice, 1000);
        let reg = registry();
        let r0 = st.state_root();
        let tx = make_tx(&alice, 0, TxKind::Transfer { to: bob, amount: 1 });
        st.apply_transaction(&reg, &tx, 1, 0);
        let r1 = st.state_root();
        assert_ne!(r0, r1);
        // Deterministic: same state, same root.
        assert_eq!(st.state_root(), r1);
    }
}
