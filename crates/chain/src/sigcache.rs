//! Process-wide cache of already-verified signature digests.
//!
//! [`ChainReplica`](crate::sync::ChainReplica) re-validates whole chains
//! during catch-up and fork choice (`adopt_if_longer` replays every block
//! from genesis), and crash recovery re-applies blocks this process has
//! already accepted. Schnorr verification is the dominant cost of that
//! replay, yet the verdict for a given (message, key, signature) triple
//! never changes — so the chain layer remembers accepted triples by
//! digest and skips the exponentiations on re-encounter.
//!
//! Soundness: an entry is inserted only after a *successful* full
//! verification, and the key is the SHA-256 digest of the
//! domain-separated, length-prefixed triple. A lookup hit therefore
//! implies (up to SHA-256 collisions — the same assumption every hash
//! and Merkle commitment in the system already makes) that fresh
//! verification would return `true`. Failed verifications are never
//! cached, so malformed or tampered inputs always pay — and always fail —
//! the real check. Cache state can only convert "would verify" into
//! "verified cheaply": accept/reject decisions, and therefore chain
//! state, are identical with the cache empty, warm, or disabled, at any
//! `PDS2_THREADS` value.
//!
//! The cache is two-generation bounded: inserts go to the live
//! generation; when it fills, the previous generation is dropped and the
//! live one takes its place. Memory is thus capped at roughly
//! `2 × CAPACITY` digests while recent entries (the ones replay hits)
//! survive.

use parking_lot::Mutex;
use pds2_crypto::schnorr::{PublicKey, Signature};
use pds2_crypto::sha256::{Digest, Sha256};
use pds2_crypto::Encode;
use pds2_obs::Counter;
use std::collections::HashSet;
use std::sync::OnceLock;

/// Digests retained per generation (two generations live at once).
const CAPACITY: usize = 1 << 16;

struct Generations {
    live: HashSet<Digest>,
    prev: HashSet<Digest>,
}

static CACHE: OnceLock<Mutex<Generations>> = OnceLock::new();

/// Hit/miss totals live on the `pds2-obs` registry (names
/// `chain.sigcache_hits` / `chain.sigcache_misses`) so they appear in
/// the same [`pds2_obs::snapshot`] as every other metric; [`stats`]
/// and [`clear`] remain the crate-local view of the same counters.
fn hits() -> &'static Counter {
    pds2_obs::counter!("chain.sigcache_hits")
}

fn misses() -> &'static Counter {
    pds2_obs::counter!("chain.sigcache_misses")
}

fn cache() -> &'static Mutex<Generations> {
    CACHE.get_or_init(|| {
        Mutex::new(Generations {
            live: HashSet::new(),
            prev: HashSet::new(),
        })
    })
}

/// Collision-resistant digest of a (message, key, signature) triple.
///
/// Length-prefixed and domain-separated, so distinct triples can never
/// produce the same preimage bytes.
pub fn triple_digest(message: &[u8], key: &PublicKey, sig: &Signature) -> Digest {
    let key_bytes = key.to_bytes();
    let sig_bytes = Encode::to_bytes(sig);
    let mut h = Sha256::new();
    h.update(b"pds2-sigcache-v1");
    h.update(&(message.len() as u64).to_le_bytes());
    h.update(message);
    h.update(&(key_bytes.len() as u64).to_le_bytes());
    h.update(&key_bytes);
    h.update(&(sig_bytes.len() as u64).to_le_bytes());
    h.update(&sig_bytes);
    h.finalize()
}

/// Whether this triple digest has been verified before.
pub fn contains(digest: &Digest) -> bool {
    let guard = cache().lock();
    let hit = guard.live.contains(digest) || guard.prev.contains(digest);
    if hit {
        hits().inc();
    } else {
        misses().inc();
    }
    hit
}

/// Records a digest whose triple passed full verification.
pub fn insert(digest: Digest) {
    let mut guard = cache().lock();
    if guard.live.len() >= CAPACITY {
        guard.prev = std::mem::take(&mut guard.live);
    }
    guard.live.insert(digest);
}

/// Verifies `sig` over `message` with the cache in front of the real
/// check: a remembered accept short-circuits, everything else runs the
/// full verification and remembers a success.
pub fn verify_cached(message: &[u8], key: &PublicKey, sig: &Signature) -> bool {
    let digest = triple_digest(message, key, sig);
    if contains(&digest) {
        return true;
    }
    let ok = key.verify(message, sig);
    if ok {
        insert(digest);
    }
    ok
}

/// (hits, misses) since process start (or the last [`clear`]).
pub fn stats() -> (u64, u64) {
    (hits().get(), misses().get())
}

/// Drops all cached digests and resets counters (bench/test helper: cold
/// runs must not see a previous run's warm cache).
pub fn clear() {
    let mut guard = cache().lock();
    guard.live.clear();
    guard.prev.clear();
    hits().reset();
    misses().reset();
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_crypto::KeyPair;

    #[test]
    fn accepted_signature_is_remembered() {
        clear();
        let kp = KeyPair::from_seed(31);
        let sig = kp.sign(b"cache me");
        assert!(verify_cached(b"cache me", &kp.public, &sig));
        let (h0, _) = stats();
        assert!(verify_cached(b"cache me", &kp.public, &sig));
        let (h1, _) = stats();
        assert_eq!(h1, h0 + 1, "second verification must be a cache hit");
    }

    #[test]
    fn rejected_signature_is_never_cached() {
        clear();
        let kp = KeyPair::from_seed(32);
        let sig = kp.sign(b"good");
        assert!(!verify_cached(b"evil", &kp.public, &sig));
        assert!(!verify_cached(b"evil", &kp.public, &sig));
        let (hits, _) = stats();
        assert_eq!(
            hits, 0,
            "failures must keep paying (and failing) the real check"
        );
    }

    #[test]
    fn distinct_triples_have_distinct_digests() {
        let kp = KeyPair::from_seed(33);
        let other = KeyPair::from_seed(34);
        let sig = kp.sign(b"m");
        let d = triple_digest(b"m", &kp.public, &sig);
        assert_ne!(d, triple_digest(b"n", &kp.public, &sig));
        assert_ne!(d, triple_digest(b"m", &other.public, &sig));
        let sig2 = kp.sign(b"x");
        assert_ne!(d, triple_digest(b"m", &kp.public, &sig2));
    }
}
