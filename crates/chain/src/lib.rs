//! # pds2-chain
//!
//! The governance-layer substrate of PDS²: an account-based blockchain with
//! proof-of-authority block production, native smart contracts, gas
//! metering and ERC-20/ERC-721 token modules — the role §III-A of the paper
//! assigns to Ethereum (see DESIGN.md for the substitution argument).
//!
//! Modules:
//!
//! - [`address`] — accounts and address derivation;
//! - [`tx`] — signed transactions (transfers, token ops, deploy, call);
//! - [`gas`] — gas schedule and metering;
//! - [`erc20`] — fungible tokens (consumer rewards);
//! - [`erc721`] — NFTs committing to datasets and workload code;
//! - [`contract`] — the native-contract framework with atomic rollback;
//! - [`state`] — the world state and the transaction execution function;
//! - [`smt`] — the copy-on-write sparse Merkle tree authenticating the
//!   state, with (non-)inclusion proofs for light clients;
//! - [`backend`] — pluggable state-commitment backends: the incremental
//!   SMT and the full-rehash reference oracle (DESIGN.md §5g);
//! - [`block`] — blocks, headers, Merkle transaction roots;
//! - [`mempool`] — the fee-market transaction pool: per-account nonce
//!   chains, priority selection, bounded admission with eviction;
//! - [`chain`] — the ledger: mempool, PoA production, receipts, events;
//! - [`sync`] — block sync over `pds2-net`: catch-up, fork choice on
//!   rejoin, crash-stop recovery (the chaos-harness consumer);
//! - [`sigcache`] — bounded cache of verified-signature digests, so sync
//!   replay and fork choice never re-pay an exponentiation for a
//!   signature this process has already accepted (DESIGN.md §5d);
//! - [`event`] — the audit-trail event log.

pub mod address;
pub mod backend;
pub mod block;
pub mod chain;
pub mod contract;
pub mod erc20;
pub mod erc721;
pub mod event;
pub mod gas;
pub mod mempool;
pub mod sigcache;
pub mod smt;
pub mod state;
pub mod sync;
pub mod threshold;
pub mod tx;

pub use address::{Account, Address};
pub use backend::{BackendKind, LeafKey, StateBackend};
pub use block::{Block, BlockHeader};
pub use chain::{verify_account_proof, AccountProof, Blockchain, ChainConfig, ChainError};
pub use contract::{CallCtx, Contract, ContractError, ContractRegistry};
pub use erc20::{Erc20Module, Erc20Op, TokenError, TokenId};
pub use erc721::{AssetKind, Erc721Module, Erc721Op, NftError, NftId};
pub use event::{Event, EventSink};
pub use mempool::{Mempool, SubmitError};
pub use smt::{verify_proof, SmtProof, SmtTree};
pub use state::{BlockEnv, TxReceipt, WorldState};
pub use sync::{ChainReplica, GenesisFactory, SyncMsg};
pub use threshold::{committee_for, SigMode, ThresholdCtx};
pub use tx::{SignedTransaction, Transaction, TxKind};
