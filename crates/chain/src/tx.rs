//! Transactions: payload kinds, signing and verification.

use crate::address::Address;
use crate::erc20::Erc20Op;
use crate::erc721::Erc721Op;
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::schnorr::{KeyPair, PublicKey, Signature};
use pds2_crypto::sha256::Digest;
use std::sync::OnceLock;

/// What a transaction does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxKind {
    /// Native-token transfer.
    Transfer {
        /// Recipient.
        to: Address,
        /// Amount in smallest units.
        amount: u128,
    },
    /// Deploys an instance of a registered contract type.
    Deploy {
        /// Name of the registered contract type.
        code_id: String,
        /// Constructor input (contract-defined encoding).
        init: Vec<u8>,
    },
    /// Calls a deployed contract.
    Call {
        /// Contract instance address.
        contract: Address,
        /// Call input (contract-defined encoding).
        input: Vec<u8>,
        /// Native tokens attached to the call (escrowed to the contract).
        value: u128,
    },
    /// Fungible-token module operation (ERC-20 analogue).
    Erc20(Erc20Op),
    /// Non-fungible-token module operation (ERC-721 analogue).
    Erc721(Erc721Op),
}

const TAG_TRANSFER: u8 = 0;
const TAG_DEPLOY: u8 = 1;
const TAG_CALL: u8 = 2;
const TAG_ERC20: u8 = 3;
const TAG_ERC721: u8 = 4;

impl Encode for TxKind {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            TxKind::Transfer { to, amount } => {
                enc.put_u8(TAG_TRANSFER);
                to.encode(enc);
                enc.put_u128(*amount);
            }
            TxKind::Deploy { code_id, init } => {
                enc.put_u8(TAG_DEPLOY);
                enc.put_str(code_id);
                enc.put_bytes(init);
            }
            TxKind::Call {
                contract,
                input,
                value,
            } => {
                enc.put_u8(TAG_CALL);
                contract.encode(enc);
                enc.put_bytes(input);
                enc.put_u128(*value);
            }
            TxKind::Erc20(op) => {
                enc.put_u8(TAG_ERC20);
                op.encode(enc);
            }
            TxKind::Erc721(op) => {
                enc.put_u8(TAG_ERC721);
                op.encode(enc);
            }
        }
    }
}

impl Decode for TxKind {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            TAG_TRANSFER => Ok(TxKind::Transfer {
                to: Address::decode(dec)?,
                amount: dec.get_u128()?,
            }),
            TAG_DEPLOY => Ok(TxKind::Deploy {
                code_id: dec.get_str()?,
                init: dec.get_bytes()?,
            }),
            TAG_CALL => Ok(TxKind::Call {
                contract: Address::decode(dec)?,
                input: dec.get_bytes()?,
                value: dec.get_u128()?,
            }),
            TAG_ERC20 => Ok(TxKind::Erc20(Erc20Op::decode(dec)?)),
            TAG_ERC721 => Ok(TxKind::Erc721(Erc721Op::decode(dec)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// An unsigned transaction body.
///
/// Fees follow the EIP-1559 two-dimensional model: the sender commits to
/// an absolute ceiling (`max_fee_per_gas`) and a tip for the proposer
/// (`priority_fee_per_gas`). At a block base fee `b` the transaction is
/// includable iff `max_fee_per_gas >= b`, and then pays
/// `min(max_fee_per_gas, b + priority_fee_per_gas)` per unit of gas: the
/// `b` portion is burned, the remainder goes to the proposer. Both fields
/// zero reproduces the legacy free-transaction behaviour as long as the
/// base fee is zero (the default chain configuration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// Sender's public key (the address is derived from it).
    pub from: PublicKey,
    /// Sender's account nonce at submission.
    pub nonce: u64,
    /// The operation.
    pub kind: TxKind,
    /// Gas budget for execution.
    pub gas_limit: u64,
    /// Absolute ceiling on the per-gas price the sender will pay
    /// (base fee + tip combined).
    pub max_fee_per_gas: u64,
    /// Per-gas tip offered to the block proposer on top of the base fee.
    pub priority_fee_per_gas: u64,
}

impl Transaction {
    /// Sender address.
    pub fn sender(&self) -> Address {
        Address::of(&self.from)
    }

    /// The per-gas price this transaction pays at `base_fee`, or `None`
    /// if its fee ceiling is below the base fee (not includable).
    pub fn effective_gas_price(&self, base_fee: u64) -> Option<u64> {
        if self.max_fee_per_gas < base_fee {
            return None;
        }
        Some(
            self.max_fee_per_gas
                .min(base_fee.saturating_add(self.priority_fee_per_gas)),
        )
    }

    /// The per-gas proposer tip at `base_fee` (`None` if not includable).
    pub fn effective_tip(&self, base_fee: u64) -> Option<u64> {
        self.effective_gas_price(base_fee).map(|p| p - base_fee)
    }

    /// Canonical hash of the unsigned body (what gets signed).
    pub fn hash(&self) -> Digest {
        self.content_hash()
    }

    /// Signs with `keys` (whose public key must equal `self.from`).
    pub fn sign(self, keys: &KeyPair) -> SignedTransaction {
        assert_eq!(
            keys.public, self.from,
            "signing key does not match tx sender"
        );
        let sig = keys.sign(self.hash().as_bytes());
        SignedTransaction::new(self, sig)
    }
}

impl Encode for Transaction {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(b"pds2-tx-v2");
        self.from.encode(enc);
        enc.put_u64(self.nonce);
        self.kind.encode(enc);
        enc.put_u64(self.gas_limit);
        enc.put_u64(self.max_fee_per_gas);
        enc.put_u64(self.priority_fee_per_gas);
    }
}

impl Decode for Transaction {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let magic = dec.get_raw(10)?;
        if magic != b"pds2-tx-v2" {
            return Err(DecodeError::Invalid("bad tx magic"));
        }
        Ok(Transaction {
            from: PublicKey::decode(dec)?,
            nonce: dec.get_u64()?,
            kind: TxKind::decode(dec)?,
            gas_limit: dec.get_u64()?,
            max_fee_per_gas: dec.get_u64()?,
            priority_fee_per_gas: dec.get_u64()?,
        })
    }
}

/// A signed transaction ready for submission.
///
/// The body digest is computed lazily and cached: signature verification
/// and Merkle-root construction both need it, so a block's worth of
/// transactions hashes each body exactly once. The cache is write-once —
/// mutating `tx` after the digest has been observed (possible because the
/// fields are public) leaves a stale cache and is unsupported outside
/// tamper-style tests that mutate before the first `hash()` call.
#[derive(Clone, Debug)]
pub struct SignedTransaction {
    /// The signed body.
    pub tx: Transaction,
    /// Schnorr signature over the body hash.
    pub signature: Signature,
    /// Lazily-computed digest of `tx` (excluded from equality).
    cached_hash: OnceLock<Digest>,
}

impl PartialEq for SignedTransaction {
    fn eq(&self, other: &Self) -> bool {
        self.tx == other.tx && self.signature == other.signature
    }
}

impl Eq for SignedTransaction {}

impl SignedTransaction {
    /// Wraps a body and its signature (digest computed on first use).
    pub fn new(tx: Transaction, signature: Signature) -> SignedTransaction {
        SignedTransaction {
            tx,
            signature,
            cached_hash: OnceLock::new(),
        }
    }

    /// The transaction hash (identifier), cached after the first call.
    pub fn hash(&self) -> Digest {
        *self.cached_hash.get_or_init(|| self.tx.hash())
    }

    /// Verifies the signature against the embedded sender key.
    ///
    /// Routed through [`crate::sigcache`]: a triple this process already
    /// accepted (e.g. during sync replay or fork choice) short-circuits;
    /// everything else runs the full Schnorr check.
    pub fn verify_signature(&self) -> bool {
        crate::sigcache::verify_cached(self.hash().as_bytes(), &self.tx.from, &self.signature)
    }
}

impl Encode for SignedTransaction {
    fn encode(&self, enc: &mut Encoder) {
        self.tx.encode(enc);
        self.signature.encode(enc);
    }
}

impl Decode for SignedTransaction {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SignedTransaction::new(
            Transaction::decode(dec)?,
            Signature::decode(dec)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erc20::TokenId;

    fn sample_tx(seed: u64, nonce: u64) -> Transaction {
        let kp = KeyPair::from_seed(seed);
        Transaction {
            from: kp.public.clone(),
            nonce,
            kind: TxKind::Transfer {
                to: Address::of(&KeyPair::from_seed(99).public),
                amount: 1000,
            },
            gas_limit: 50_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(1);
        let signed = sample_tx(1, 0).sign(&kp);
        assert!(signed.verify_signature());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn signing_with_wrong_key_panics() {
        let other = KeyPair::from_seed(2);
        let _ = sample_tx(1, 0).sign(&other);
    }

    #[test]
    fn tampered_tx_fails_verification() {
        let kp = KeyPair::from_seed(1);
        let mut signed = sample_tx(1, 0).sign(&kp);
        signed.tx.nonce = 5;
        assert!(!signed.verify_signature());
    }

    #[test]
    fn tampered_amount_fails_verification() {
        let kp = KeyPair::from_seed(1);
        let mut signed = sample_tx(1, 0).sign(&kp);
        if let TxKind::Transfer { amount, .. } = &mut signed.tx.kind {
            *amount = u128::MAX;
        }
        assert!(!signed.verify_signature());
    }

    #[test]
    fn all_kinds_roundtrip_codec() {
        let kp = KeyPair::from_seed(3);
        let to = Address::of(&KeyPair::from_seed(4).public);
        let kinds = vec![
            TxKind::Transfer { to, amount: 5 },
            TxKind::Deploy {
                code_id: "workload".into(),
                init: vec![1, 2, 3],
            },
            TxKind::Call {
                contract: Address::contract(&to, 0),
                input: vec![9, 9],
                value: 77,
            },
            TxKind::Erc20(Erc20Op::Transfer {
                token: TokenId(7),
                to,
                amount: 3,
            }),
        ];
        for kind in kinds {
            let tx = Transaction {
                from: kp.public.clone(),
                nonce: 1,
                kind,
                gas_limit: 10,
                max_fee_per_gas: 7,
                priority_fee_per_gas: 2,
            };
            let signed = tx.clone().sign(&kp);
            let bytes = signed.to_bytes();
            let back = SignedTransaction::from_bytes(&bytes).unwrap();
            assert_eq!(back, signed);
            assert!(back.verify_signature());
        }
    }

    #[test]
    fn hash_distinguishes_transactions() {
        assert_ne!(sample_tx(1, 0).hash(), sample_tx(1, 1).hash());
        assert_ne!(sample_tx(1, 0).hash(), sample_tx(2, 0).hash());
        // Fee fields are part of the signed body.
        let mut bumped = sample_tx(1, 0);
        bumped.max_fee_per_gas = 9;
        assert_ne!(bumped.hash(), sample_tx(1, 0).hash());
    }

    #[test]
    fn effective_gas_price_follows_eip1559() {
        let mut tx = sample_tx(1, 0);
        tx.max_fee_per_gas = 100;
        tx.priority_fee_per_gas = 10;
        // Below the cap: base + tip.
        assert_eq!(tx.effective_gas_price(50), Some(60));
        assert_eq!(tx.effective_tip(50), Some(10));
        // Tip squeezed by the cap.
        assert_eq!(tx.effective_gas_price(95), Some(100));
        assert_eq!(tx.effective_tip(95), Some(5));
        // At the cap exactly: tip fully squeezed out.
        assert_eq!(tx.effective_gas_price(100), Some(100));
        assert_eq!(tx.effective_tip(100), Some(0));
        // Cap below the base fee: not includable.
        assert_eq!(tx.effective_gas_price(101), None);
        assert_eq!(tx.effective_tip(101), None);
        // Legacy zero-fee transaction at zero base fee stays free.
        let free = sample_tx(1, 0);
        assert_eq!(free.effective_gas_price(0), Some(0));
        assert_eq!(free.effective_gas_price(1), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let kp = KeyPair::from_seed(1);
        let signed = sample_tx(1, 0).sign(&kp);
        let mut bytes = signed.to_bytes();
        bytes[0] ^= 0xff;
        assert!(SignedTransaction::from_bytes(&bytes).is_err());
    }
}
