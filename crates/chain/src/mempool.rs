//! The production mempool: per-account nonce chains feeding a
//! fee-ordered priority index.
//!
//! The original pool was a FIFO `VecDeque` whose block-selection loop
//! rescanned every pending transaction per pass (O(pending²) with nonce
//! gaps); under heavy load it degraded by collapse. This module replaces
//! it with the structure production chains converge on (tari's
//! `unconfirmed_pool`/`reorg_pool` split, geth's per-sender lists + price
//! heap):
//!
//! * **Per-account nonce chains** — every sender's pending transactions
//!   live in a `BTreeMap<nonce, _>`; only the contiguous run starting at
//!   the account's state nonce is *ready*, later nonces wait for the gap
//!   to fill.
//! * **Fee-ordered selection** — block building seeds a binary heap with
//!   each account's ready head, ordered by effective tip per gas at the
//!   current base fee (ties broken by arrival sequence, so the order is
//!   deterministic and replayable). Popping a head pushes the account's
//!   next nonce, so selection costs O(selected · log accounts) after an
//!   O(accounts) seed instead of O(pending²).
//! * **Size-bounded admission** — when the pool is full, the cheapest
//!   *account tail* (highest nonce of its sender) is evicted to make
//!   room for a better-paying arrival. Evicting only tails means
//!   eviction can never orphan a cheaper transaction that later nonces
//!   depend on.
//! * **Replace-by-fee** — a transaction with the same (sender, nonce)
//!   replaces the pending one iff it bumps both fee fields by at least
//!   [`REPLACE_BUMP_PCT`] percent, so a stuck transaction can be
//!   repriced but cannot be churned for free.
//!
//! The mempool never talks to the network or the state directly: the
//! [`Blockchain`](crate::chain::Blockchain) passes account nonces in and
//! takes selected transactions out, keeping this module a pure,
//! deterministic data structure (the proptests in `tests/proptests.rs`
//! lean on that).

use crate::address::Address;
use crate::tx::SignedTransaction;
use pds2_crypto::sha256::Digest;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

/// Minimum percentage both fee fields must grow for replace-by-fee.
pub const REPLACE_BUMP_PCT: u64 = 10;

/// Why the mempool refused a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The transaction's gas limit exceeds the block gas limit, so no
    /// block could ever include it (rejecting at submission keeps
    /// `produce_until_empty` from spinning on it forever).
    GasLimitTooHigh {
        /// The transaction's gas limit.
        gas_limit: u64,
        /// The chain's per-block gas budget.
        block_gas_limit: u64,
    },
    /// The pool is full and the transaction does not pay enough to
    /// displace the cheapest evictable entry.
    Underpriced {
        /// Fee-per-gas ceiling that would have been required to enter.
        required_fee_per_gas: u64,
    },
    /// The pool is full and nothing can be evicted (every tail belongs
    /// to the submitting account's own chain).
    PoolFull {
        /// The configured capacity.
        capacity: usize,
    },
    /// A transaction with this (sender, nonce) is already pending and
    /// the replacement does not bump its fees by [`REPLACE_BUMP_PCT`]%.
    ReplacementUnderpriced {
        /// Minimum `max_fee_per_gas` a replacement must offer.
        required_max_fee: u64,
        /// Minimum `priority_fee_per_gas` a replacement must offer.
        required_priority_fee: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::GasLimitTooHigh {
                gas_limit,
                block_gas_limit,
            } => write!(
                f,
                "gas limit {gas_limit} exceeds block gas limit {block_gas_limit}"
            ),
            SubmitError::Underpriced {
                required_fee_per_gas,
            } => write!(
                f,
                "pool full: need more than {required_fee_per_gas} max fee per gas to displace"
            ),
            SubmitError::PoolFull { capacity } => {
                write!(f, "pool full at capacity {capacity}, nothing evictable")
            }
            SubmitError::ReplacementUnderpriced {
                required_max_fee,
                required_priority_fee,
            } => write!(
                f,
                "replacement underpriced: need max fee >= {required_max_fee} \
                 and priority fee >= {required_priority_fee}"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What [`Mempool::insert`] did with an accepted transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Appended as a new pending transaction.
    Inserted,
    /// Replaced a pending transaction with the same (sender, nonce);
    /// the replaced hash is returned so the caller can retire it.
    Replaced(Digest),
}

/// One pending transaction plus its admission metadata.
#[derive(Clone, Debug)]
struct PendingTx {
    tx: SignedTransaction,
    hash: Digest,
    /// Arrival sequence number — the deterministic tie-breaker for both
    /// selection (earlier wins) and eviction (newer goes first).
    seq: u64,
}

/// Key of the eviction index: cheapest fee first, newest arrival first
/// among equals. `seq` is unique, so the tuple is a total order.
type EvictKey = (u64, std::cmp::Reverse<u64>, Address);

/// Candidate in the per-block selection heap.
struct Candidate {
    tip: u64,
    seq: u64,
    sender: Address,
    nonce: u64,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: highest tip wins, earliest arrival breaks ties.
        self.tip
            .cmp(&other.tip)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Summary of one [`Mempool::select`] round (for metrics and benches).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SelectionStats {
    /// Transactions whose nonce fell below the account nonce and were
    /// dropped while seeding the heap.
    pub stale_dropped: usize,
    /// Accounts whose ready head was priced below the base fee.
    pub unaffordable_accounts: usize,
    /// Accounts skipped because their next transaction no longer fit
    /// the remaining block gas.
    pub gas_deferred: usize,
}

/// Fee-market mempool with per-account nonce chains. See the module
/// docs for the design.
pub struct Mempool {
    /// `BTreeMap` (not `HashMap`) so every full iteration — heap
    /// seeding, draining, invariant checks — visits accounts in one
    /// deterministic order.
    accounts: BTreeMap<Address, BTreeMap<u64, PendingTx>>,
    /// hash → (sender, nonce): O(1) removal when blocks include txs.
    by_hash: HashMap<Digest, (Address, u64)>,
    /// Each account's current tail, ordered cheapest-first.
    evictable: BTreeSet<EvictKey>,
    len: usize,
    next_seq: u64,
    capacity: usize,
    /// Cumulative evictions (monotone; mirrored onto the obs registry
    /// by the chain).
    pub evicted_total: u64,
}

impl Mempool {
    /// An empty pool bounded at `capacity` transactions.
    pub fn new(capacity: usize) -> Mempool {
        Mempool {
            accounts: BTreeMap::new(),
            by_hash: HashMap::new(),
            evictable: BTreeSet::new(),
            len: 0,
            next_seq: 0,
            capacity: capacity.max(1),
            evicted_total: 0,
        }
    }

    /// Number of pending transactions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool holds no transactions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `hash` is pending.
    pub fn contains(&self, hash: &Digest) -> bool {
        self.by_hash.contains_key(hash)
    }

    /// Every pending transaction, in deterministic (sender, nonce)
    /// order. Used by the reorg path to carry the pool across a fork
    /// switch, and by tests.
    pub fn all(&self) -> Vec<SignedTransaction> {
        self.accounts
            .values()
            .flat_map(|chain| chain.values().map(|p| p.tx.clone()))
            .collect()
    }

    fn evict_key(addr: Address, tail: &PendingTx) -> EvictKey {
        (
            tail.tx.tx.max_fee_per_gas,
            std::cmp::Reverse(tail.seq),
            addr,
        )
    }

    /// Re-registers `addr`'s tail in the eviction index after its chain
    /// changed. `old_tail` is the previously registered tail, if any.
    fn refresh_tail(&mut self, addr: Address, old_key: Option<EvictKey>) {
        if let Some(k) = old_key {
            self.evictable.remove(&k);
        }
        if let Some(tail) = self
            .accounts
            .get(&addr)
            .and_then(|c| c.values().next_back())
        {
            let key = Self::evict_key(addr, tail);
            self.evictable.insert(key);
        }
    }

    fn current_tail_key(&self, addr: &Address) -> Option<EvictKey> {
        self.accounts
            .get(addr)
            .and_then(|c| c.values().next_back())
            .map(|tail| Self::evict_key(*addr, tail))
    }

    /// Removes the cheapest evictable tail not owned by `protect`.
    /// Returns the evicted hash, or `None` if nothing qualifies.
    fn evict_cheapest(&mut self, protect: &Address) -> Option<Digest> {
        let victim = self
            .evictable
            .iter()
            .find(|(_, _, addr)| addr != protect)
            .copied()?;
        let (_, _, addr) = victim;
        let old_key = self.current_tail_key(&addr);
        let chain = self.accounts.get_mut(&addr)?;
        let (&nonce, _) = chain.iter().next_back()?;
        let removed = chain.remove(&nonce).expect("tail exists");
        if chain.is_empty() {
            self.accounts.remove(&addr);
        }
        self.by_hash.remove(&removed.hash);
        self.len -= 1;
        self.evicted_total += 1;
        self.refresh_tail(addr, old_key);
        Some(removed.hash)
    }

    /// Admits `tx` (whose signature and staleness the chain has already
    /// checked). `state_nonce` is the sender's current account nonce and
    /// `block_gas_limit` the chain's per-block budget. On success the
    /// returned outcome says whether a pending transaction was replaced;
    /// `evicted` (if any) collects hashes displaced to make room.
    pub fn insert(
        &mut self,
        tx: SignedTransaction,
        state_nonce: u64,
        block_gas_limit: u64,
        evicted: &mut Vec<Digest>,
    ) -> Result<InsertOutcome, SubmitError> {
        if tx.tx.gas_limit > block_gas_limit {
            return Err(SubmitError::GasLimitTooHigh {
                gas_limit: tx.tx.gas_limit,
                block_gas_limit,
            });
        }
        let sender = tx.tx.sender();
        let nonce = tx.tx.nonce;
        debug_assert!(nonce >= state_nonce, "chain admits stale nonces?");

        // Replace-by-fee for an occupied (sender, nonce) slot.
        if let Some(existing) = self.accounts.get(&sender).and_then(|c| c.get(&nonce)) {
            // +REPLACE_BUMP_PCT%, floored at +1 so tiny fees still cost
            // something to replace (u128 intermediate avoids overflow).
            let bump = |fee: u64| {
                let delta = (fee as u128 * REPLACE_BUMP_PCT as u128 / 100).max(1);
                fee.saturating_add(delta.min(u64::MAX as u128) as u64)
            };
            let need_max = bump(existing.tx.tx.max_fee_per_gas);
            let need_prio = bump(existing.tx.tx.priority_fee_per_gas);
            if tx.tx.max_fee_per_gas < need_max || tx.tx.priority_fee_per_gas < need_prio {
                return Err(SubmitError::ReplacementUnderpriced {
                    required_max_fee: need_max,
                    required_priority_fee: need_prio,
                });
            }
            let old_key = self.current_tail_key(&sender);
            let hash = tx.hash();
            let seq = self.next_seq;
            self.next_seq += 1;
            let chain = self.accounts.get_mut(&sender).expect("checked above");
            let old = chain
                .insert(nonce, PendingTx { tx, hash, seq })
                .expect("checked above");
            self.by_hash.remove(&old.hash);
            self.by_hash.insert(hash, (sender, nonce));
            self.refresh_tail(sender, old_key);
            return Ok(InsertOutcome::Replaced(old.hash));
        }

        // Size-bounded admission: displace cheaper tails, or refuse.
        while self.len >= self.capacity {
            let floor = self
                .evictable
                .iter()
                .find(|(_, _, addr)| addr != &sender)
                .map(|(fee, _, _)| *fee);
            match floor {
                None => {
                    return Err(SubmitError::PoolFull {
                        capacity: self.capacity,
                    })
                }
                Some(fee) if tx.tx.max_fee_per_gas <= fee => {
                    return Err(SubmitError::Underpriced {
                        required_fee_per_gas: fee,
                    })
                }
                Some(_) => {
                    let h = self.evict_cheapest(&sender).expect("floor found");
                    evicted.push(h);
                }
            }
        }

        let old_key = self.current_tail_key(&sender);
        let hash = tx.hash();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.accounts
            .entry(sender)
            .or_default()
            .insert(nonce, PendingTx { tx, hash, seq });
        self.by_hash.insert(hash, (sender, nonce));
        self.len += 1;
        self.refresh_tail(sender, old_key);
        Ok(InsertOutcome::Inserted)
    }

    /// Removes a pending transaction by hash (e.g. because an external
    /// block included it). Returns whether it was present.
    pub fn remove_by_hash(&mut self, hash: &Digest) -> bool {
        let Some((sender, nonce)) = self.by_hash.remove(hash) else {
            return false;
        };
        if let Some(chain) = self.accounts.get_mut(&sender) {
            let tail_nonce = chain.keys().next_back().copied();
            if let Some(removed) = chain.remove(&nonce) {
                self.len -= 1;
                if chain.is_empty() {
                    self.accounts.remove(&sender);
                }
                // The eviction index tracks only each account's tail, so
                // removing an interior/head nonce leaves it untouched.
                if tail_nonce == Some(nonce) {
                    self.evictable.remove(&Self::evict_key(sender, &removed));
                    if let Some(tail) = self
                        .accounts
                        .get(&sender)
                        .and_then(|c| c.values().next_back())
                    {
                        self.evictable.insert(Self::evict_key(sender, tail));
                    }
                }
            }
        }
        true
    }

    /// Drops every pending transaction of `sender` whose nonce is below
    /// `state_nonce` (consumed by a block this pool never saw). Returns
    /// how many were dropped.
    pub fn prune_stale(&mut self, sender: Address, state_nonce: u64) -> usize {
        let Some(chain) = self.accounts.get_mut(&sender) else {
            return 0;
        };
        let stale: Vec<u64> = chain.range(..state_nonce).map(|(n, _)| *n).collect();
        if stale.is_empty() {
            return 0;
        }
        let old_key = self.current_tail_key(&sender);
        let chain = self.accounts.get_mut(&sender).expect("checked above");
        let mut dropped = 0;
        for n in stale {
            if let Some(p) = chain.remove(&n) {
                self.by_hash.remove(&p.hash);
                self.len -= 1;
                dropped += 1;
            }
        }
        if chain.is_empty() {
            self.accounts.remove(&sender);
        }
        self.refresh_tail(sender, old_key);
        dropped
    }

    /// Selects up to `max_txs` transactions fitting `gas_limit` at
    /// `base_fee`, ordered by effective tip per gas (arrival order
    /// breaks ties), respecting per-account nonce chains. Selected
    /// transactions are removed from the pool; stale entries discovered
    /// along the way are dropped.
    ///
    /// `state_nonce` maps each sender to its current account nonce.
    ///
    /// Complexity: O(accounts) to seed the heap plus
    /// O(selected · log accounts) to drain it.
    pub fn select(
        &mut self,
        base_fee: u64,
        gas_limit: u64,
        max_txs: usize,
        state_nonce: impl Fn(&Address) -> u64,
        stats: &mut SelectionStats,
    ) -> Vec<SignedTransaction> {
        // Seed: one linear pass pushes each account's ready head. Accounts
        // holding stale nonces (rare — a block this pool never saw consumed
        // them) are set aside and seeded after pruning, which needs `&mut
        // self`. Heap order is independent of push order: `seq` is a unique
        // global arrival counter, so no two candidates compare equal.
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(self.accounts.len());
        let mut stale: Vec<(Address, u64)> = Vec::new();
        for (&sender, chain) in &self.accounts {
            let nonce = state_nonce(&sender);
            let Some((&first, head)) = chain.first_key_value() else {
                continue; // unreachable: empty chains are never retained
            };
            match first.cmp(&nonce) {
                std::cmp::Ordering::Less => {
                    stale.push((sender, nonce));
                    continue;
                }
                std::cmp::Ordering::Greater => continue, // nonce gap: nothing ready
                std::cmp::Ordering::Equal => {}
            }
            match head.tx.tx.effective_tip(base_fee) {
                Some(tip) => heap.push(Candidate {
                    tip,
                    seq: head.seq,
                    sender,
                    nonce,
                }),
                None => stats.unaffordable_accounts += 1,
            }
        }
        for (sender, nonce) in stale {
            stats.stale_dropped += self.prune_stale(sender, nonce);
            let Some(head) = self.accounts.get(&sender).and_then(|c| c.get(&nonce)) else {
                continue;
            };
            match head.tx.tx.effective_tip(base_fee) {
                Some(tip) => heap.push(Candidate {
                    tip,
                    seq: head.seq,
                    sender,
                    nonce,
                }),
                None => stats.unaffordable_accounts += 1,
            }
        }

        let mut selected = Vec::new();
        let mut gas_left = gas_limit;
        while selected.len() < max_txs {
            let Some(cand) = heap.pop() else { break };
            let chain = self.accounts.get(&cand.sender).expect("candidate exists");
            let head = chain.get(&cand.nonce).expect("candidate exists");
            if head.tx.tx.gas_limit > gas_left {
                // Doesn't fit this block; the whole account waits (a
                // later nonce must not jump its predecessor).
                stats.gas_deferred += 1;
                continue;
            }
            let chain = self.accounts.get_mut(&cand.sender).expect("checked");
            // Selection takes the head, so the tail only moves when the
            // chain holds a single entry (head == tail) — the common
            // multi-nonce case skips the eviction-index churn entirely.
            let was_tail = chain.keys().next_back() == Some(&cand.nonce);
            let taken = chain.remove(&cand.nonce).expect("checked");
            self.by_hash.remove(&taken.hash);
            self.len -= 1;
            gas_left -= taken.tx.tx.gas_limit;
            // Promote the account's next nonce, if contiguous + priced.
            if let Some(next) = chain.get(&(cand.nonce + 1)) {
                if let Some(tip) = next.tx.tx.effective_tip(base_fee) {
                    heap.push(Candidate {
                        tip,
                        seq: next.seq,
                        sender: cand.sender,
                        nonce: cand.nonce + 1,
                    });
                } else {
                    stats.unaffordable_accounts += 1;
                }
            }
            if chain.is_empty() {
                self.accounts.remove(&cand.sender);
            }
            if was_tail {
                self.evictable.remove(&Self::evict_key(cand.sender, &taken));
            }
            selected.push(taken.tx);
        }
        selected
    }

    /// Internal-consistency check used by the proptests: the secondary
    /// indexes mirror the account chains exactly, the size bound holds,
    /// and the eviction index points at real tails.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut count = 0;
        for (addr, chain) in &self.accounts {
            assert!(!chain.is_empty(), "empty chain retained for {addr}");
            for (nonce, p) in chain {
                assert_eq!(p.tx.tx.nonce, *nonce, "nonce key mismatch");
                assert_eq!(p.tx.tx.sender(), *addr, "sender key mismatch");
                assert_eq!(
                    self.by_hash.get(&p.hash),
                    Some(&(*addr, *nonce)),
                    "by_hash out of sync"
                );
                count += 1;
            }
            let tail = chain.values().next_back().expect("non-empty");
            assert!(
                self.evictable.contains(&Self::evict_key(*addr, tail)),
                "tail of {addr} missing from eviction index"
            );
        }
        assert_eq!(count, self.len, "len out of sync");
        assert_eq!(count, self.by_hash.len(), "by_hash size out of sync");
        assert_eq!(
            self.evictable.len(),
            self.accounts.len(),
            "one eviction entry per account"
        );
        assert!(self.len <= self.capacity, "capacity exceeded");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{Transaction, TxKind};
    use pds2_crypto::schnorr::KeyPair;

    const GAS: u64 = 100_000;
    const BLOCK_GAS: u64 = 1_000_000;

    fn tx(seed: u64, nonce: u64, max_fee: u64, prio: u64) -> SignedTransaction {
        let kp = KeyPair::from_seed(seed);
        Transaction {
            from: kp.public.clone(),
            nonce,
            kind: TxKind::Transfer {
                to: Address::of(&KeyPair::from_seed(999).public),
                amount: 1,
            },
            gas_limit: GAS,
            max_fee_per_gas: max_fee,
            priority_fee_per_gas: prio,
        }
        .sign(&kp)
    }

    fn insert_ok(pool: &mut Mempool, t: SignedTransaction) {
        let mut ev = Vec::new();
        pool.insert(t, 0, BLOCK_GAS, &mut ev).expect("insert");
        pool.check_invariants();
    }

    fn select_all(pool: &mut Mempool, base_fee: u64) -> Vec<SignedTransaction> {
        let mut stats = SelectionStats::default();
        let out = pool.select(base_fee, u64::MAX, usize::MAX, |_| 0, &mut stats);
        pool.check_invariants();
        out
    }

    #[test]
    fn selection_orders_by_tip_then_arrival() {
        let mut pool = Mempool::new(100);
        insert_ok(&mut pool, tx(1, 0, 50, 5));
        insert_ok(&mut pool, tx(2, 0, 50, 9));
        insert_ok(&mut pool, tx(3, 0, 50, 5)); // same tip as seed 1, later
        let sel = select_all(&mut pool, 0);
        let tips: Vec<u64> = sel.iter().map(|t| t.tx.effective_tip(0).unwrap()).collect();
        assert_eq!(tips, [9, 5, 5]);
        assert_eq!(sel[1].tx.from, KeyPair::from_seed(1).public, "FIFO tie");
        assert!(pool.is_empty());
    }

    #[test]
    fn nonce_chains_select_in_order_despite_fees() {
        // Account 1's nonce-1 tx pays a huge tip, but nonce 0 pays
        // nothing: chain order must still hold.
        let mut pool = Mempool::new(100);
        insert_ok(&mut pool, tx(1, 1, 100, 90));
        insert_ok(&mut pool, tx(1, 0, 100, 1));
        insert_ok(&mut pool, tx(2, 0, 100, 10));
        let sel = select_all(&mut pool, 0);
        let nonces: Vec<(u64, bool)> = sel
            .iter()
            .map(|t| (t.tx.nonce, t.tx.from == KeyPair::from_seed(1).public))
            .collect();
        // Seed-2's tip (10) beats seed-1's head (1); once seed-1's head
        // is in, its 90-tip successor follows.
        assert_eq!(nonces, [(0, false), (0, true), (1, true)]);
    }

    #[test]
    fn nonce_gap_blocks_selection_until_filled() {
        let mut pool = Mempool::new(100);
        insert_ok(&mut pool, tx(1, 1, 100, 50));
        assert!(select_all(&mut pool, 0).is_empty(), "gap: nothing ready");
        assert_eq!(pool.len(), 1);
        insert_ok(&mut pool, tx(1, 0, 100, 1));
        let sel = select_all(&mut pool, 0);
        assert_eq!(sel.len(), 2);
        assert_eq!((sel[0].tx.nonce, sel[1].tx.nonce), (0, 1));
    }

    #[test]
    fn base_fee_filters_unaffordable_heads() {
        let mut pool = Mempool::new(100);
        insert_ok(&mut pool, tx(1, 0, 5, 5)); // cap 5 < base fee 10
        insert_ok(&mut pool, tx(2, 0, 20, 5));
        let mut stats = SelectionStats::default();
        let sel = pool.select(10, u64::MAX, usize::MAX, |_| 0, &mut stats);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].tx.max_fee_per_gas, 20);
        assert_eq!(stats.unaffordable_accounts, 1);
        assert_eq!(pool.len(), 1, "unaffordable tx stays pending");
    }

    #[test]
    fn eviction_removes_cheapest_tail_only() {
        let mut pool = Mempool::new(3);
        insert_ok(&mut pool, tx(1, 0, 10, 1));
        insert_ok(&mut pool, tx(1, 1, 2, 1)); // cheapest tail
        insert_ok(&mut pool, tx(2, 0, 50, 1));
        let mut ev = Vec::new();
        let rich = tx(3, 0, 99, 9);
        pool.insert(rich.clone(), 0, BLOCK_GAS, &mut ev).unwrap();
        pool.check_invariants();
        assert_eq!(ev.len(), 1, "one eviction makes room");
        assert_eq!(
            ev[0],
            tx(1, 1, 2, 1).hash(),
            "tail (nonce 1), not the head its fee depends on"
        );
        assert_eq!(pool.len(), 3);
        assert!(pool.contains(&rich.hash()));
        assert!(pool.contains(&tx(1, 0, 10, 1).hash()), "head survives");
    }

    #[test]
    fn full_pool_rejects_underpriced() {
        let mut pool = Mempool::new(2);
        insert_ok(&mut pool, tx(1, 0, 10, 1));
        insert_ok(&mut pool, tx(2, 0, 20, 1));
        let mut ev = Vec::new();
        // Equal to the floor: refused (must strictly beat it).
        let err = pool.insert(tx(3, 0, 10, 1), 0, BLOCK_GAS, &mut ev);
        assert_eq!(
            err,
            Err(SubmitError::Underpriced {
                required_fee_per_gas: 10
            })
        );
        assert!(ev.is_empty());
        pool.check_invariants();
    }

    #[test]
    fn eviction_never_targets_the_submitter() {
        // Pool of 2 filled entirely by account 1; account 1 submits a
        // third with a higher fee — evicting its own tail to admit a
        // *later* nonce would orphan the new tx, so refuse instead.
        let mut pool = Mempool::new(2);
        insert_ok(&mut pool, tx(1, 0, 10, 1));
        insert_ok(&mut pool, tx(1, 1, 10, 1));
        let mut ev = Vec::new();
        let err = pool.insert(tx(1, 2, 99, 9), 0, BLOCK_GAS, &mut ev);
        assert_eq!(err, Err(SubmitError::PoolFull { capacity: 2 }));
        pool.check_invariants();
    }

    #[test]
    fn replacement_requires_fee_bump() {
        let mut pool = Mempool::new(10);
        insert_ok(&mut pool, tx(1, 0, 100, 10));
        let mut ev = Vec::new();
        // +9% on max fee: refused.
        let err = pool.insert(tx(1, 0, 109, 11), 0, BLOCK_GAS, &mut ev);
        assert_eq!(
            err,
            Err(SubmitError::ReplacementUnderpriced {
                required_max_fee: 110,
                required_priority_fee: 11,
            })
        );
        // +10% on both: accepted, old hash reported.
        let old_hash = tx(1, 0, 100, 10).hash();
        let got = pool
            .insert(tx(1, 0, 110, 11), 0, BLOCK_GAS, &mut ev)
            .unwrap();
        assert_eq!(got, InsertOutcome::Replaced(old_hash));
        pool.check_invariants();
        assert_eq!(pool.len(), 1);
        assert!(!pool.contains(&old_hash));
        assert!(pool.contains(&tx(1, 0, 110, 11).hash()));
    }

    #[test]
    fn unfittable_gas_rejected_up_front() {
        let mut pool = Mempool::new(10);
        let kp = KeyPair::from_seed(1);
        let big = Transaction {
            from: kp.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer {
                to: Address::of(&KeyPair::from_seed(999).public),
                amount: 1,
            },
            gas_limit: BLOCK_GAS + 1,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&kp);
        let mut ev = Vec::new();
        assert_eq!(
            pool.insert(big, 0, BLOCK_GAS, &mut ev),
            Err(SubmitError::GasLimitTooHigh {
                gas_limit: BLOCK_GAS + 1,
                block_gas_limit: BLOCK_GAS,
            })
        );
    }

    #[test]
    fn gas_exhaustion_defers_whole_account() {
        let mut pool = Mempool::new(10);
        insert_ok(&mut pool, tx(1, 0, 10, 5)); // best tip
        insert_ok(&mut pool, tx(1, 1, 10, 5));
        insert_ok(&mut pool, tx(2, 0, 10, 1));
        let mut stats = SelectionStats::default();
        // Gas budget fits exactly two transactions.
        let sel = pool.select(0, 2 * GAS, usize::MAX, |_| 0, &mut stats);
        assert_eq!(sel.len(), 2);
        assert_eq!(pool.len(), 1, "third tx deferred to the next block");
        pool.check_invariants();
    }

    #[test]
    fn prune_stale_drops_consumed_nonces() {
        let mut pool = Mempool::new(10);
        insert_ok(&mut pool, tx(1, 0, 10, 1));
        insert_ok(&mut pool, tx(1, 1, 10, 1));
        insert_ok(&mut pool, tx(1, 2, 10, 1));
        let sender = Address::of(&KeyPair::from_seed(1).public);
        assert_eq!(pool.prune_stale(sender, 2), 2);
        pool.check_invariants();
        assert_eq!(pool.len(), 1);
        assert!(pool.contains(&tx(1, 2, 10, 1).hash()));
    }

    #[test]
    fn remove_by_hash_unlinks_everywhere() {
        let mut pool = Mempool::new(10);
        let t = tx(1, 0, 10, 1);
        insert_ok(&mut pool, t.clone());
        assert!(pool.remove_by_hash(&t.hash()));
        assert!(!pool.remove_by_hash(&t.hash()), "second removal is a no-op");
        pool.check_invariants();
        assert!(pool.is_empty());
    }
}
