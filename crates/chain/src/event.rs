//! On-chain event logs.
//!
//! Events are the audit trail the governance layer exposes: every token
//! movement, contract state transition and workload lifecycle step emits
//! one, and experiment E1 counts them to show the full Fig. 2 interaction
//! sequence is observable on-chain.

use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};

/// A single emitted event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Dotted topic, e.g. `"erc20.transfer"` or `"workload.completed"`.
    pub topic: String,
    /// Human/machine-readable payload.
    pub data: String,
    /// Block height, filled in when the event is included in a block.
    pub block_height: u64,
    /// Index of the emitting transaction within its block.
    pub tx_index: u32,
}

impl Event {
    /// Creates an event pending block inclusion.
    pub fn new(topic: impl Into<String>, data: impl Into<String>) -> Event {
        Event {
            topic: topic.into(),
            data: data.into(),
            block_height: 0,
            tx_index: 0,
        }
    }

    /// Convenience constructor used by the token modules.
    pub fn token(topic: &str, data: String) -> Event {
        Event::new(topic, data)
    }
}

impl Encode for Event {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.topic);
        enc.put_str(&self.data);
        enc.put_u64(self.block_height);
        enc.put_u32(self.tx_index);
    }
}

impl Decode for Event {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Event {
            topic: dec.get_str()?,
            data: dec.get_str()?,
            block_height: dec.get_u64()?,
            tx_index: dec.get_u32()?,
        })
    }
}

/// Collects events emitted during one transaction's execution.
#[derive(Default, Debug)]
pub struct EventSink {
    events: Vec<Event>,
}

impl EventSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits an event.
    pub fn emit(&mut self, event: Event) {
        self.events.push(event);
    }

    /// Events collected so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the sink, returning its events.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Drops all collected events (used when a transaction reverts).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_collects_and_clears() {
        let mut sink = EventSink::new();
        sink.emit(Event::new("a.b", "x"));
        sink.emit(Event::new("c.d", "y"));
        assert_eq!(sink.events().len(), 2);
        sink.clear();
        assert!(sink.events().is_empty());
    }

    #[test]
    fn event_codec_roundtrip() {
        let e = Event {
            topic: "workload.completed".into(),
            data: "id=7".into(),
            block_height: 12,
            tx_index: 3,
        };
        assert_eq!(Event::from_bytes(&e.to_bytes()).unwrap(), e);
    }
}
