//! Threshold-federated block sealing (DESIGN.md §5i).
//!
//! In `single` mode (the default, and the differential oracle) each
//! block is signed by its round-robin proposer's own key. In
//! `threshold` mode — `PDS2_SIG_MODE=threshold`, or
//! [`SigMode::Threshold`] set programmatically in [`crate::ChainConfig`]
//! — the validator set runs a deterministic DKG (via [`pds2_gov`]) and
//! every block is sealed by a t-of-n quorum whose partial signatures
//! aggregate into **one ordinary Schnorr signature** under the
//! committee's group public key. A single compromised validator can no
//! longer forge history: forging now needs `t = ⌊n/2⌋ + 1` shares.
//!
//! Only the signature field changes between modes. The header still
//! names the round-robin proposer (so `WrongProposer` enforcement and
//! the coinbase — and therefore state roots — are bit-identical in both
//! modes), verification still routes through [`crate::sigcache`], and
//! the aggregate passes the unmodified `PublicKey::verify` fast path,
//! which is how the `BENCH_gov.json` criterion "aggregate verify within
//! 3× single verify" holds with margin (~1×).
//!
//! Committees are cached process-globally, keyed by a digest of the
//! validator set: replica sync rebuilds chains from their genesis
//! factory on every fork-choice candidate and crash recovery, and
//! re-running the DKG each time would be both slow and — because the
//! instrumented DKG emits spans — a cache-warmth leak into obs digests.
//! The cache path therefore uses the span-free `run_dkg_quiet`.

use crate::sigcache;
use parking_lot::Mutex;
use pds2_crypto::schnorr::{PublicKey, Signature};
use pds2_crypto::sha256::Sha256;
use pds2_gov::dkg::{run_dkg_quiet, Committee, ThresholdParams, ValidatorShare};
use pds2_gov::sign::sign_with_quorum;
use std::collections::HashMap;
use std::sync::Arc;

/// How block headers are signed and verified.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SigMode {
    /// Proposer's own key (PR 3 behaviour; the differential oracle).
    #[default]
    Single,
    /// t-of-n threshold signature under the committee group key.
    Threshold,
}

impl SigMode {
    /// Reads `PDS2_SIG_MODE` (`single` | `threshold`); anything else —
    /// including unset — is [`SigMode::Single`].
    pub fn from_env() -> SigMode {
        match std::env::var("PDS2_SIG_MODE").as_deref() {
            Ok("threshold") => SigMode::Threshold,
            _ => SigMode::Single,
        }
    }
}

/// The sealing context a threshold-mode chain holds: the public
/// committee plus — in this single-process simulation, where the chain
/// already holds every validator's `KeyPair` — all shares.
pub struct ThresholdCtx {
    committee: Committee,
    shares: Vec<ValidatorShare>,
}

impl ThresholdCtx {
    /// The group public key headers verify against.
    pub fn group_public(&self) -> &PublicKey {
        self.committee.group_public()
    }

    /// The committee shape.
    pub fn params(&self) -> ThresholdParams {
        self.committee.params
    }

    /// Seals `payload` with the canonical quorum (the `t` lowest
    /// validator indices) under a `gov/sign` span stamped with the block
    /// height. Deterministic: every replica holding the same validator
    /// set derives the same nonces and byte-identical signatures.
    pub fn seal(&self, height: u64, payload: &[u8]) -> Signature {
        let span = pds2_obs::span("gov", "sign", pds2_obs::Stamp::Block(height));
        let quorum: Vec<&ValidatorShare> = self.shares.iter().collect();
        let sig = sign_with_quorum(&self.committee, &quorum, payload)
            .expect("sealing with the full honest share set cannot fail");
        if pds2_obs::enabled() {
            span.finish(
                pds2_obs::Stamp::Block(height),
                vec![
                    ("t", pds2_obs::Value::from(self.committee.params.t)),
                    ("n", pds2_obs::Value::from(self.committee.params.n)),
                ],
            );
        }
        sig
    }

    /// Verifies a header payload/signature against the group key,
    /// routed through the [`crate::sigcache`] like single-key headers.
    pub fn verify(&self, payload: &[u8], sig: &Signature) -> bool {
        sigcache::verify_cached(payload, self.group_public(), sig)
    }
}

/// Digest of a validator set (order-sensitive, like proposer rotation).
fn validator_set_digest(validators: &[PublicKey]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"pds2-gov-committee-v1");
    for v in validators {
        h.update(&v.to_bytes());
    }
    *h.finalize().as_bytes()
}

fn cache() -> &'static Mutex<HashMap<[u8; 32], Arc<ThresholdCtx>>> {
    static CACHE: std::sync::OnceLock<Mutex<HashMap<[u8; 32], Arc<ThresholdCtx>>>> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The threshold context for a validator set, from the process-global
/// cache (see module docs for why replicas must not re-run the DKG).
///
/// The DKG seed is derived from the validator-set digest, so distinct
/// committees get distinct group keys while every replica of the same
/// committee derives the same one.
pub fn committee_for(validators: &[PublicKey]) -> Arc<ThresholdCtx> {
    // majority(0) would be t=1, n=0 — an invalid shape the DKG rejects.
    // Fail with a diagnosis instead of an opaque unwrap downstream.
    assert!(
        !validators.is_empty(),
        "threshold sealing requires a non-empty validator set"
    );
    let digest = validator_set_digest(validators);
    if let Some(ctx) = cache().lock().get(&digest) {
        return Arc::clone(ctx);
    }
    let seed = u64::from_le_bytes(digest[..8].try_into().expect("32 >= 8"));
    let params = ThresholdParams::majority(validators.len());
    let (committee, shares) = run_dkg_quiet(seed, params).expect("majority(n>=1) params are valid");
    let ctx = Arc::new(ThresholdCtx { committee, shares });
    cache()
        .lock()
        .entry(digest)
        .or_insert_with(|| Arc::clone(&ctx))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_crypto::schnorr::KeyPair;

    fn pubs(n: u64) -> Vec<PublicKey> {
        (0..n)
            .map(|i| KeyPair::from_seed(7_700 + i).public)
            .collect()
    }

    #[test]
    fn committee_cache_returns_same_ctx_per_set() {
        let set = pubs(4);
        let a = committee_for(&set);
        let b = committee_for(&set);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.params(), ThresholdParams::majority(4));
        // A different set gets a different group key.
        let other = committee_for(&pubs(3));
        assert_ne!(a.group_public(), other.group_public());
    }

    #[test]
    fn seal_verifies_under_group_key_only() {
        let ctx = committee_for(&pubs(4));
        let sig = ctx.seal(9, b"header payload");
        assert!(ctx.verify(b"header payload", &sig));
        assert!(!ctx.verify(b"other payload", &sig));
        // Sealing is deterministic (replicas must agree byte-for-byte).
        assert_eq!(ctx.seal(9, b"header payload"), sig);
    }

    #[test]
    #[should_panic(expected = "non-empty validator set")]
    fn empty_validator_set_is_a_clear_error() {
        committee_for(&[]);
    }

    #[test]
    fn sig_mode_from_env_defaults_to_single() {
        // Tests must not set the var process-wide; just check the parse
        // contract via the default.
        assert_eq!(SigMode::default(), SigMode::Single);
    }
}
