//! The blockchain: proof-of-authority production, mempool, receipts and
//! queries.
//!
//! PDS² selects a permissionless chain (Ethereum) in the paper; this
//! simulation runs a proof-of-authority committee instead (see DESIGN.md's
//! substitution table) — block *content* and contract semantics are what
//! the marketplace depends on, not the Sybil-resistance mechanism.
//! Validators take turns round-robin; every block is fully validated
//! (proposer turn, parent hash, header signature, tx root, tx signatures)
//! before being appended, so the tests can demonstrate tamper rejection.

use crate::address::Account;
use crate::backend::LeafKey;
use crate::block::{receipts_digest, Block, BlockHeader};
use crate::contract::ContractRegistry;
use crate::event::Event;
use crate::gas;
use crate::mempool::{InsertOutcome, Mempool, SelectionStats, SubmitError};
use crate::smt::SmtProof;
use crate::state::{BlockEnv, TxReceipt, WorldState};
use crate::threshold::{SigMode, ThresholdCtx};
use crate::tx::SignedTransaction;
use parking_lot::Mutex;
use pds2_crypto::codec::{Decode, Decoder, Encode, Encoder};
use pds2_crypto::schnorr::{KeyPair, PublicKey};
use pds2_crypto::sha256::Digest;
use pds2_obs::TraceCtx;
use pds2_storage::chainlog::{ChainLog, FRAME_BLOCK, FRAME_TX};
use std::collections::HashMap;
use std::sync::Arc;

/// First eight bytes of a digest as a trace-field-sized fingerprint.
fn digest_tag(d: &Digest) -> u64 {
    u64::from_le_bytes(d.as_bytes()[..8].try_into().expect("digest >= 8 bytes"))
}

/// Chain configuration.
#[derive(Clone, Debug)]
pub struct ChainConfig {
    /// Gas budget per block.
    pub block_gas_limit: u64,
    /// Logical seconds between blocks (drives header timestamps).
    pub block_interval_secs: u64,
    /// Maximum transactions per block regardless of gas.
    pub max_txs_per_block: usize,
    /// Maximum pending transactions held in the mempool; beyond it the
    /// cheapest account tail is evicted to admit better-paying traffic.
    pub mempool_capacity: usize,
    /// Base fee carried by the first block. Defaults to 0, which keeps
    /// legacy zero-fee transactions includable until congestion pushes
    /// the fee up (see [`gas::next_base_fee`]).
    pub initial_base_fee: u64,
    /// Header signing scheme (see [`crate::threshold`]). Defaults to
    /// [`SigMode::from_env`], so `PDS2_SIG_MODE=threshold` flips every
    /// default-configured chain — including replica genesis factories —
    /// to t-of-n committee sealing; tests override it programmatically.
    pub sig_mode: SigMode,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            block_gas_limit: 30_000_000,
            block_interval_secs: 12,
            max_txs_per_block: 1024,
            mempool_capacity: 1 << 20,
            initial_base_fee: 0,
            sig_mode: SigMode::from_env(),
        }
    }
}

/// Errors from block production/validation or submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Submitted transaction has an invalid signature.
    InvalidSignature,
    /// Submitted transaction nonce is already used.
    StaleNonce {
        /// Account's current nonce.
        expected: u64,
        /// Nonce carried by the transaction.
        got: u64,
    },
    /// Duplicate of a transaction already pending or included.
    Duplicate,
    /// Block validation failed.
    InvalidBlock(&'static str),
    /// The proposer is not the validator whose turn it is.
    WrongProposer,
    /// The mempool refused the transaction (unfittable gas limit, pool
    /// full, or an underpriced replacement).
    Submit(SubmitError),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::InvalidSignature => write!(f, "invalid transaction signature"),
            ChainError::StaleNonce { expected, got } => {
                write!(f, "stale nonce: account at {expected}, tx has {got}")
            }
            ChainError::Duplicate => write!(f, "duplicate transaction"),
            ChainError::InvalidBlock(why) => write!(f, "invalid block: {why}"),
            ChainError::WrongProposer => write!(f, "proposer out of turn"),
            ChainError::Submit(e) => write!(f, "mempool rejected transaction: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A light-client proof that a transaction was included in a block.
#[derive(Clone, Debug)]
pub struct InclusionProof {
    /// Height of the including block.
    pub block_height: u64,
    /// The proven transaction hash.
    pub tx_hash: Digest,
    /// Merkle path to the header's `tx_root`.
    pub proof: pds2_crypto::merkle::MerkleProof,
}

impl InclusionProof {
    /// Verifies the proof against a trusted block header.
    pub fn verify(&self, header: &crate::block::BlockHeader) -> bool {
        header.height == self.block_height
            && self.proof.verify(self.tx_hash.as_bytes(), &header.tx_root)
    }
}

/// The blockchain node (state machine + ledger + mempool).
pub struct Blockchain {
    /// Current world state.
    pub state: WorldState,
    registry: ContractRegistry,
    config: ChainConfig,
    validators: Vec<KeyPair>,
    blocks: Vec<Block>,
    receipts: HashMap<Digest, TxReceipt>,
    events: Vec<Event>,
    mempool: Mutex<Mempool>,
    /// Base fee the *next* produced block will carry, derived from the
    /// previous block's gas usage by [`gas::next_base_fee`].
    next_base_fee: u64,
    seen: std::collections::HashSet<Digest>,
    /// Ambient causal context: chain work not attributable to a specific
    /// transaction (block production/validation/apply spans) joins this
    /// trace. Replicas set it per network delivery; the marketplace sets
    /// it per workload call.
    trace_ctx: TraceCtx,
    /// Causal context and submission height of each pending traced
    /// transaction; consumed (and emitted as `tx.included`) when the tx
    /// enters a block. Populated only while a capture is active.
    tx_traces: HashMap<Digest, (TraceCtx, u64)>,
    /// Durable store: appended blocks (plus receipt digests) and
    /// journaled pending transactions, with periodic state snapshots.
    /// `None` (the default) runs fully in memory.
    store: Option<Arc<Mutex<ChainLog>>>,
    /// Snapshot cadence in blocks (0 = never snapshot).
    snapshot_every: u64,
    /// Threshold sealing context (`Some` iff `config.sig_mode` is
    /// [`SigMode::Threshold`]); shared process-globally per validator
    /// set via [`crate::threshold::committee_for`].
    threshold: Option<Arc<ThresholdCtx>>,
}

impl Blockchain {
    /// Creates a chain with a validator committee and genesis allocations.
    pub fn new(
        validators: Vec<KeyPair>,
        genesis_alloc: &[(crate::address::Address, u128)],
        registry: ContractRegistry,
        config: ChainConfig,
    ) -> Blockchain {
        assert!(!validators.is_empty(), "need at least one validator");
        let mut state = WorldState::new();
        for (addr, amount) in genesis_alloc {
            state.genesis_credit(*addr, *amount);
        }
        let threshold = match config.sig_mode {
            SigMode::Single => None,
            SigMode::Threshold => {
                let pubs: Vec<PublicKey> = validators.iter().map(|v| v.public.clone()).collect();
                Some(crate::threshold::committee_for(&pubs))
            }
        };
        Blockchain {
            state,
            registry,
            validators,
            blocks: Vec::new(),
            receipts: HashMap::new(),
            events: Vec::new(),
            mempool: Mutex::new(Mempool::new(config.mempool_capacity)),
            next_base_fee: config.initial_base_fee,
            config,
            seen: std::collections::HashSet::new(),
            trace_ctx: TraceCtx::NONE,
            tx_traces: HashMap::new(),
            store: None,
            snapshot_every: 0,
            threshold,
        }
    }

    /// Sets the ambient causal context (see the `trace_ctx` field).
    /// [`TraceCtx::NONE`] detaches the chain from any trace.
    pub fn set_trace_ctx(&mut self, ctx: TraceCtx) {
        self.trace_ctx = ctx;
    }

    /// The current ambient causal context.
    pub fn trace_ctx(&self) -> TraceCtx {
        self.trace_ctx
    }

    /// Convenience single-validator chain for tests and examples.
    pub fn single_validator(
        seed: u64,
        genesis_alloc: &[(crate::address::Address, u128)],
        registry: ContractRegistry,
    ) -> Blockchain {
        Blockchain::new(
            vec![KeyPair::from_seed(seed)],
            genesis_alloc,
            registry,
            ChainConfig::default(),
        )
    }

    /// The validator committee's public keys.
    pub fn validator_set(&self) -> Vec<PublicKey> {
        self.validators.iter().map(|v| v.public.clone()).collect()
    }

    /// Next block height.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Hash of the latest block (`Digest::ZERO` before genesis).
    pub fn head_hash(&self) -> Digest {
        self.blocks.last().map_or(Digest::ZERO, |b| b.header.hash())
    }

    /// Block by height.
    pub fn block(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Receipt by transaction hash.
    pub fn receipt(&self, tx_hash: &Digest) -> Option<&TxReceipt> {
        self.receipts.get(tx_hash)
    }

    /// All events ever emitted, in chain order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events whose topic starts with `prefix`.
    pub fn events_by_topic(&self, prefix: &str) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| e.topic.starts_with(prefix))
            .collect()
    }

    /// Number of pending mempool transactions.
    pub fn mempool_len(&self) -> usize {
        self.mempool.lock().len()
    }

    /// Base fee the next produced block will carry.
    pub fn base_fee(&self) -> u64 {
        self.next_base_fee
    }

    /// Every pending transaction in deterministic (sender, nonce) order.
    /// The reorg path uses this to carry a pool across a fork switch.
    pub fn mempool_txs(&self) -> Vec<SignedTransaction> {
        self.mempool.lock().all()
    }

    /// Publishes the `chain.mempool_size` gauge from a pool length read
    /// under the lock. Every site that mutates the pool reports through
    /// this helper with the length it observed inside its own lock
    /// acquisition, so the gauge never interleaves with a concurrent
    /// mutation (it previously mixed in-lock and re-lock reads).
    fn publish_mempool_gauge(len: usize) {
        pds2_obs::gauge!("chain.mempool_size").set(len as f64);
    }

    /// Submits a transaction to the mempool after stateless+stateful
    /// admission checks, under the ambient causal context.
    pub fn submit(&mut self, tx: SignedTransaction) -> Result<Digest, ChainError> {
        let ctx = self.trace_ctx;
        self.submit_traced(tx, ctx)
    }

    /// [`submit`](Self::submit) under an explicit causal context. With a
    /// live capture and `ctx == NONE`, submission *mints* a new trace
    /// (`chain/tx.submit` root) — a bare tx entering the system is a
    /// workload in its own right; a non-empty `ctx` (the marketplace's
    /// workload trace, a replica's delivery span) joins that trace
    /// instead. Inclusion later emits `chain/tx.included` on the same
    /// trace with the blocks-waited count.
    pub fn submit_traced(
        &mut self,
        tx: SignedTransaction,
        ctx: TraceCtx,
    ) -> Result<Digest, ChainError> {
        pds2_obs::counter!("chain.txs_submitted").inc();
        if !tx.verify_signature() {
            pds2_obs::counter!("chain.txs_rejected").inc();
            return Err(ChainError::InvalidSignature);
        }
        let hash = tx.hash();
        if self.seen.contains(&hash) {
            pds2_obs::counter!("chain.txs_rejected").inc();
            return Err(ChainError::Duplicate);
        }
        let account_nonce = self.state.nonce(&tx.tx.sender());
        if tx.tx.nonce < account_nonce {
            pds2_obs::counter!("chain.txs_rejected").inc();
            return Err(ChainError::StaleNonce {
                expected: account_nonce,
                got: tx.tx.nonce,
            });
        }
        // Admission into the fee-market pool; this can evict cheaper
        // pending transactions (pool at capacity) or replace a same-nonce
        // one (replace-by-fee).
        let tx_nonce = tx.tx.nonce;
        let tx_bytes = self.store.as_ref().map(|_| tx.to_bytes());
        let mut evicted = Vec::new();
        let (outcome, pool_len) = {
            let mut pool = self.mempool.lock();
            let outcome = pool.insert(tx, account_nonce, self.config.block_gas_limit, &mut evicted);
            (outcome, pool.len())
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                pds2_obs::counter!("chain.txs_rejected").inc();
                pds2_obs::counter!("chain.mempool.rejected").inc();
                return Err(ChainError::Submit(e));
            }
        };
        if let InsertOutcome::Replaced(old) = outcome {
            pds2_obs::counter!("chain.mempool.rbf_replaced").inc();
            self.seen.remove(&old);
            self.tx_traces.remove(&old);
        }
        if !evicted.is_empty() {
            pds2_obs::counter!("chain.mempool.evicted").add(evicted.len() as u64);
            for h in &evicted {
                // Evicted transactions were never included: forget them so
                // the sender can resubmit (e.g. with a higher fee).
                self.seen.remove(h);
                self.tx_traces.remove(h);
            }
        }
        if pds2_obs::enabled() {
            let height = self.height();
            let fields = vec![
                ("tx", pds2_obs::Value::from(digest_tag(&hash))),
                ("nonce", pds2_obs::Value::from(tx_nonce)),
            ];
            let tx_ctx = if ctx.is_none() {
                let root = pds2_obs::new_trace(
                    "chain",
                    "tx.submit",
                    pds2_obs::Stamp::Block(height),
                    fields,
                );
                let minted = root.ctx();
                root.finish(pds2_obs::Stamp::Block(height), Vec::new());
                minted
            } else {
                pds2_obs::emit_traced(
                    "chain",
                    "tx.submit",
                    pds2_obs::Stamp::Block(height),
                    ctx,
                    fields,
                );
                ctx
            };
            if !tx_ctx.is_none() {
                self.tx_traces.insert(hash, (tx_ctx, height));
            }
        }
        self.seen.insert(hash);
        // Journal the admitted transaction so a crashed node can
        // reinstate its pending pool on recovery.
        if let (Some(store), Some(bytes)) = (&self.store, tx_bytes) {
            store.lock().append(FRAME_TX, self.height(), &bytes);
        }
        Self::publish_mempool_gauge(pool_len);
        Ok(hash)
    }

    /// The validator whose turn it is at `height`.
    fn proposer_for(&self, height: u64) -> &KeyPair {
        &self.validators[(height as usize) % self.validators.len()]
    }

    /// Produces, validates and appends the next block from the mempool.
    ///
    /// Returns the new block. Transactions that no longer pass nonce
    /// ordering are retried later (kept in the pool) unless their nonce is
    /// stale, in which case they are dropped.
    pub fn produce_block(&mut self) -> Block {
        let height = self.height();
        let span = pds2_obs::span_traced(
            "chain",
            "produce_block",
            pds2_obs::Stamp::Block(height),
            self.trace_ctx,
            Vec::new(),
        );
        let parent = self.head_hash();
        let timestamp = height * self.config.block_interval_secs;
        let base_fee = self.next_base_fee;

        // Select transactions from the priority index: highest effective
        // tip first, per-account nonce chains kept contiguous, stale
        // entries pruned on the way. O(accounts + selected · log accounts)
        // instead of the old O(pending²) rescan.
        let mut sel_stats = SelectionStats::default();
        let (selected, pool_len) = {
            let state = &self.state;
            let mut pool = self.mempool.lock();
            let selected = pool.select(
                base_fee,
                self.config.block_gas_limit,
                self.config.max_txs_per_block,
                |addr| state.nonce(addr),
                &mut sel_stats,
            );
            (selected, pool.len())
        };
        if sel_stats.stale_dropped > 0 {
            pds2_obs::counter!("chain.mempool_stale_dropped").add(sel_stats.stale_dropped as u64);
        }

        // Execute. Each traced transaction executes under its own
        // submission-time context, so contract events it raises join the
        // workload's trace rather than the producer's ambient one.
        let produce_ctx = if span.id() != 0 {
            span.ctx()
        } else {
            self.trace_ctx
        };
        let proposer = self.proposer_for(height).clone();
        let env = BlockEnv {
            height,
            base_fee,
            coinbase: crate::address::Address::of(&proposer.public),
        };
        let mut receipts = Vec::with_capacity(selected.len());
        let mut included = Vec::with_capacity(selected.len());
        for (i, tx) in selected.iter().enumerate() {
            let hash = tx.hash();
            let trace = self
                .tx_traces
                .get(&hash)
                .map(|(ctx, _)| *ctx)
                .unwrap_or(produce_ctx);
            let receipt =
                self.state
                    .apply_transaction_env(&self.registry, tx, &env, i as u32, trace);
            receipts.push(receipt);
            if let Some((ctx, submitted_at)) = self.tx_traces.remove(&hash) {
                included.push((hash, ctx, submitted_at));
            }
        }
        for (hash, ctx, submitted_at) in included {
            pds2_obs::trace_event!(
                "chain",
                "tx.included",
                pds2_obs::Stamp::Block(height),
                ctx,
                "tx" => digest_tag(&hash),
                "blocks_waited" => height.saturating_sub(submitted_at),
            );
        }

        let gas_used: u64 = receipts.iter().map(|r| r.gas_used).sum();
        let tx_root = Block::compute_tx_root(&selected);
        let state_root = self.state.state_root();
        let header = match &self.threshold {
            None => BlockHeader::new_signed(
                &proposer, height, parent, state_root, tx_root, timestamp, base_fee, gas_used,
            ),
            Some(ctx) => {
                // Same header body and proposer as single mode — only the
                // signature differs, produced by the t-of-n committee.
                let payload = BlockHeader::signing_bytes(
                    height,
                    &parent,
                    &state_root,
                    &tx_root,
                    timestamp,
                    base_fee,
                    gas_used,
                    &proposer.public,
                );
                BlockHeader {
                    height,
                    parent,
                    state_root,
                    tx_root,
                    timestamp,
                    base_fee,
                    gas_used,
                    proposer: proposer.public.clone(),
                    signature: ctx.seal(height, &payload),
                }
            }
        };
        let block = Block {
            header,
            transactions: selected,
        };
        self.next_base_fee = gas::next_base_fee(base_fee, gas_used, self.config.block_gas_limit);

        // Record.
        for receipt in receipts {
            self.events.extend(receipt.events.iter().cloned());
            self.receipts.insert(receipt.tx_hash, receipt);
        }
        pds2_obs::counter!("chain.blocks_produced").inc();
        pds2_obs::counter!("chain.txs_included").add(block.transactions.len() as u64);
        pds2_obs::histogram!("chain.gas_per_block").observe(gas_used);
        pds2_obs::gauge!("chain.base_fee").set(self.next_base_fee as f64);
        Self::publish_mempool_gauge(pool_len);
        if pds2_obs::enabled() {
            span.finish(
                pds2_obs::Stamp::Block(height),
                vec![
                    ("txs", pds2_obs::Value::from(block.transactions.len())),
                    ("gas_used", pds2_obs::Value::from(gas_used)),
                ],
            );
        }
        self.blocks.push(block.clone());
        self.persist_block(&block);
        self.maybe_snapshot();
        block
    }

    /// Produces blocks until the mempool is drained (bounded by
    /// `max_blocks` as a safety stop). Returns the number produced.
    ///
    /// Stops early when a round makes no progress — the remaining
    /// transactions are waiting on something block production cannot
    /// provide (a nonce-gap fill, or a base fee above their fee cap) and
    /// spinning to `max_blocks` would only mint empty blocks.
    pub fn produce_until_empty(&mut self, max_blocks: usize) -> usize {
        let mut produced = 0;
        while produced < max_blocks {
            let before = self.mempool_len();
            if before == 0 {
                break;
            }
            self.produce_block();
            produced += 1;
            if self.mempool_len() >= before {
                break;
            }
        }
        produced
    }

    /// Validates a block received from elsewhere against the current head
    /// (used by tests to demonstrate tamper rejection). Does not execute.
    pub fn validate_external_block(&self, block: &Block) -> Result<(), ChainError> {
        let height = block.header.height;
        let span = pds2_obs::span_traced(
            "chain",
            "validate_block",
            pds2_obs::Stamp::Block(height),
            self.trace_ctx,
            Vec::new(),
        );
        let res = self.validate_external_block_uninstrumented(block);
        match res {
            Ok(()) => pds2_obs::counter!("chain.blocks_validated").inc(),
            Err(_) => pds2_obs::counter!("chain.blocks_rejected").inc(),
        }
        if pds2_obs::enabled() {
            span.finish(
                pds2_obs::Stamp::Block(height),
                vec![
                    ("txs", pds2_obs::Value::from(block.transactions.len())),
                    ("ok", pds2_obs::Value::from(res.is_ok() as u64)),
                ],
            );
        }
        res
    }

    /// [`validate_external_block`](Self::validate_external_block) minus
    /// the observability wrapper. Public so `bench_obs` can time the
    /// bare validation path as the baseline for its overhead
    /// measurement; everyone else should call the instrumented entry
    /// point.
    #[doc(hidden)]
    pub fn validate_external_block_uninstrumented(&self, block: &Block) -> Result<(), ChainError> {
        if block.header.height != self.height() {
            return Err(ChainError::InvalidBlock("wrong height"));
        }
        if block.header.parent != self.head_hash() {
            return Err(ChainError::InvalidBlock("wrong parent"));
        }
        if block.header.base_fee != self.next_base_fee {
            // The base fee is a pure function of the parent chain; a
            // mismatch means the proposer computed (or forged) it wrong.
            return Err(ChainError::InvalidBlock("wrong base fee"));
        }
        let expected_proposer = &self.proposer_for(block.header.height).public;
        if &block.header.proposer != expected_proposer {
            return Err(ChainError::WrongProposer);
        }
        let sig_ok = match &self.threshold {
            None => block.header.verify_signature(),
            Some(ctx) => block.header.verify_signature_with(ctx.group_public()),
        };
        if !sig_ok {
            return Err(ChainError::InvalidBlock("bad header signature"));
        }
        if !block.tx_root_matches() {
            return Err(ChainError::InvalidBlock("tx root mismatch"));
        }
        // Signature checks are independent per transaction, so they fan
        // out across the pds2-par worker pool; the verdict (all-true) is
        // order-insensitive, and each check also warms the transaction's
        // digest cache for later Merkle/receipt lookups.
        let verdicts =
            pds2_par::par_map_indexed(&block.transactions, |_, tx| tx.verify_signature());
        if !verdicts.into_iter().all(|ok| ok) {
            return Err(ChainError::InvalidBlock("bad tx signature"));
        }
        Ok(())
    }

    /// Access to the contract registry (e.g. to check registered types).
    pub fn registry(&self) -> &ContractRegistry {
        &self.registry
    }

    /// Produces a light-client inclusion proof for a transaction: the
    /// block height plus a Merkle path from the transaction hash to the
    /// block header's `tx_root`. Providers use this to prove to third
    /// parties (e.g. in a §IV-A reward dispute) that their participation
    /// was recorded, holding only block headers.
    pub fn prove_inclusion(&self, tx_hash: &Digest) -> Option<InclusionProof> {
        for block in &self.blocks {
            if let Some(index) = block.transactions.iter().position(|t| &t.hash() == tx_hash) {
                // Same leaf construction as `Block::compute_tx_root`, so
                // the path verifies against the header's tx_root; digests
                // are already cached from validation.
                let leaf_hashes = pds2_par::par_map_indexed(&block.transactions, |_, t| {
                    pds2_crypto::merkle::leaf_hash(t.hash().as_bytes())
                });
                let tree = pds2_crypto::merkle::MerkleTree::from_leaf_hashes(leaf_hashes);
                return Some(InclusionProof {
                    block_height: block.header.height,
                    tx_hash: *tx_hash,
                    proof: tree.prove(index)?,
                });
            }
        }
        None
    }

    /// Applies a block produced by another node: validates it against the
    /// local head, executes its transactions and appends it.
    ///
    /// Execution is deterministic, so after a valid block the local state
    /// root must equal the header's. A [`ChainError::InvalidBlock`]
    /// `"state root mismatch"` therefore means the proposer lied about its
    /// post-state; like a real validator, the caller must halt this
    /// replica (the local state has already executed the block's
    /// transactions and is no longer canonical).
    pub fn apply_external_block(&mut self, block: &Block) -> Result<(), ChainError> {
        self.validate_external_block(block)?;
        let height = block.header.height;
        let env = BlockEnv {
            height,
            base_fee: block.header.base_fee,
            coinbase: crate::address::Address::of(&block.header.proposer),
        };
        let mut receipts = Vec::with_capacity(block.transactions.len());
        for (i, tx) in block.transactions.iter().enumerate() {
            let hash = tx.hash();
            let trace = self
                .tx_traces
                .get(&hash)
                .map(|(ctx, _)| *ctx)
                .unwrap_or(self.trace_ctx);
            receipts.push(self.state.apply_transaction_env(
                &self.registry,
                tx,
                &env,
                i as u32,
                trace,
            ));
        }
        let gas_used: u64 = receipts.iter().map(|r| r.gas_used).sum();
        if gas_used != block.header.gas_used {
            return Err(ChainError::InvalidBlock("gas used mismatch"));
        }
        if self.state.state_root() != block.header.state_root {
            return Err(ChainError::InvalidBlock("state root mismatch"));
        }
        self.next_base_fee =
            gas::next_base_fee(block.header.base_fee, gas_used, self.config.block_gas_limit);
        pds2_obs::gauge!("chain.base_fee").set(self.next_base_fee as f64);
        for receipt in receipts {
            self.events.extend(receipt.events.iter().cloned());
            self.seen.insert(receipt.tx_hash);
            self.receipts.insert(receipt.tx_hash, receipt);
        }
        // Drop any mempool copies of the included transactions, and close
        // out their pending trace records (submit-to-inclusion hops).
        let pool_len = {
            let mut pool = self.mempool.lock();
            for tx in &block.transactions {
                pool.remove_by_hash(&tx.hash());
            }
            pool.len()
        };
        Self::publish_mempool_gauge(pool_len);
        for tx in &block.transactions {
            let hash = tx.hash();
            if let Some((ctx, submitted_at)) = self.tx_traces.remove(&hash) {
                pds2_obs::trace_event!(
                    "chain",
                    "tx.included",
                    pds2_obs::Stamp::Block(height),
                    ctx,
                    "tx" => digest_tag(&hash),
                    "blocks_waited" => height.saturating_sub(submitted_at),
                );
            }
        }
        self.blocks.push(block.clone());
        self.persist_block(block);
        self.maybe_snapshot();
        pds2_obs::counter!("chain.blocks_applied").inc();
        pds2_obs::trace_event!(
            "chain",
            "apply_block",
            pds2_obs::Stamp::Block(height),
            self.trace_ctx,
            "txs" => block.transactions.len(),
        );
        Ok(())
    }

    /// Applies a run of external blocks, pipelining signature
    /// verification against state application: while block `i` executes,
    /// a helper thread pre-verifies block `i+1`'s header and transaction
    /// signatures, warming [`crate::sigcache`] so `i+1`'s validation pass
    /// hits the cache instead of re-paying the exponentiations.
    ///
    /// Verification is a pure function of the block bytes and the cache
    /// only short-circuits signatures that full verification would also
    /// accept, so the chain state after this call is bit-identical to
    /// applying the blocks serially — at any `PDS2_THREADS` setting. With
    /// one worker thread (or a single block) it *is* the serial loop.
    ///
    /// Returns the number of blocks applied; stops at the first error.
    pub fn apply_external_blocks_pipelined(
        &mut self,
        blocks: &[Block],
    ) -> Result<usize, (usize, ChainError)> {
        if pds2_par::current_threads() <= 1 || blocks.len() <= 1 {
            for (i, b) in blocks.iter().enumerate() {
                self.apply_external_block(b).map_err(|e| (i, e))?;
            }
            return Ok(blocks.len());
        }
        let group_key = self.threshold.as_ref().map(|c| c.group_public().clone());
        std::thread::scope(|scope| {
            let mut warm: Option<std::thread::ScopedJoinHandle<'_, ()>> = None;
            for (i, b) in blocks.iter().enumerate() {
                if let Some(next) = blocks.get(i + 1) {
                    let group_key = group_key.as_ref();
                    warm = Some(scope.spawn(move || {
                        // Results are irrelevant here: either outcome
                        // leaves the sigcache warmed for the real check
                        // (against whichever key this mode verifies).
                        let _ = match group_key {
                            Some(k) => next.header.verify_signature_with(k),
                            None => next.header.verify_signature(),
                        };
                        for tx in &next.transactions {
                            let _ = tx.verify_signature();
                        }
                    }));
                }
                let res = self.apply_external_block(b);
                if let Some(h) = warm.take() {
                    let _ = h.join();
                }
                res.map_err(|e| (i, e))?;
            }
            Ok(blocks.len())
        })
    }

    /// Feeds transactions from orphaned blocks (or a pre-fork mempool)
    /// back through submission after a reorg. Transactions the new chain
    /// already includes, whose nonces it already consumed, or that fail
    /// any other admission check are silently skipped — they are either
    /// redundant or unusable on this fork. Returns how many re-entered
    /// the pool.
    pub fn reinstate_transactions(
        &mut self,
        txs: impl IntoIterator<Item = SignedTransaction>,
    ) -> usize {
        let mut reinstated = 0;
        for tx in txs {
            if self.submit(tx).is_ok() {
                reinstated += 1;
            }
        }
        if reinstated > 0 {
            pds2_obs::counter!("chain.txs_reinstated").add(reinstated as u64);
        }
        reinstated
    }

    // ------------------------------------------------------------------
    // Durable store: journaling, snapshots and crash recovery
    // ------------------------------------------------------------------

    /// Attaches a durable store. Blocks the log does not yet hold are
    /// backfilled, then every produced/applied block (and admitted
    /// transaction) is appended as it happens, with a full state
    /// snapshot every `snapshot_every` blocks.
    pub fn attach_store(&mut self, store: Arc<Mutex<ChainLog>>, snapshot_every: u64) {
        {
            let mut log = store.lock();
            let persisted = log
                .scan()
                .frames
                .iter()
                .filter(|f| f.kind == FRAME_BLOCK)
                .count();
            for block in self.blocks.iter().skip(persisted) {
                let digest = Self::stored_receipts_digest(&self.receipts, block);
                log.append(
                    FRAME_BLOCK,
                    block.header.height,
                    &Self::block_frame(block, &digest),
                );
            }
        }
        self.store = Some(store);
        self.snapshot_every = snapshot_every;
        self.maybe_snapshot();
    }

    /// Whether a durable store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Block-frame payload: block bytes + receipts digest.
    fn block_frame(block: &Block, receipts: &Digest) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_bytes(&block.to_bytes());
        enc.put_digest(receipts);
        enc.finish()
    }

    fn decode_block_frame(payload: &[u8]) -> Option<(Block, Digest)> {
        let mut dec = Decoder::new(payload);
        let block = Block::from_bytes(&dec.get_bytes().ok()?).ok()?;
        let digest = dec.get_digest().ok()?;
        dec.expect_end().ok()?;
        Some((block, digest))
    }

    /// Receipts digest of a block from the chain's receipt map.
    fn stored_receipts_digest(receipts: &HashMap<Digest, TxReceipt>, block: &Block) -> Digest {
        receipts_digest(
            block
                .transactions
                .iter()
                .filter_map(|tx| receipts.get(&tx.hash())),
        )
    }

    fn persist_block(&self, block: &Block) {
        let Some(store) = &self.store else { return };
        let digest = Self::stored_receipts_digest(&self.receipts, block);
        store.lock().append(
            FRAME_BLOCK,
            block.header.height,
            &Self::block_frame(block, &digest),
        );
    }

    fn maybe_snapshot(&mut self) {
        if self.snapshot_every == 0
            || self.height() == 0
            || !self.height().is_multiple_of(self.snapshot_every)
        {
            return;
        }
        let Some(store) = &self.store else { return };
        let height = self.height();
        let bytes = self.snapshot_bytes();
        store.lock().write_snapshot(height, bytes);
        pds2_obs::counter!("chain.snapshots_written").inc();
    }

    /// Serializes the chain tip for a recovery snapshot: height, fee
    /// state and the complete world state.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(self.height());
        enc.put_u64(self.next_base_fee);
        self.state.encode_snapshot(&mut enc);
        enc.finish()
    }

    /// Restores the tip state (fee + world state) from snapshot bytes.
    /// Blocks, receipts and events are NOT in the snapshot — the caller
    /// loads the block prefix from the log.
    fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<u64, String> {
        let mut dec = Decoder::new(bytes);
        let height = dec.get_u64().map_err(|e| format!("snapshot: {e:?}"))?;
        let next_base_fee = dec.get_u64().map_err(|e| format!("snapshot: {e:?}"))?;
        let state = WorldState::decode_snapshot(&mut dec, &self.registry)?;
        dec.expect_end().map_err(|e| format!("snapshot: {e:?}"))?;
        self.state = state;
        self.next_base_fee = next_base_fee;
        Ok(height)
    }

    /// Rebuilds a crashed node from its durable store: restore the
    /// latest snapshot (falling back to genesis replay if it is missing
    /// or corrupt), replay the block log from there — re-validating
    /// every block and checking each frame's receipts digest against the
    /// re-derived receipts — then reinstate journaled transactions the
    /// chain does not already include. The log's torn tail, if any, is
    /// truncated first.
    ///
    /// `genesis` must be the same construction the crashed node started
    /// from (validators, allocations, registry, config);
    /// `snapshot_every` re-arms the snapshot cadence going forward.
    pub fn recover_from_store(
        genesis: Blockchain,
        store: Arc<Mutex<ChainLog>>,
        snapshot_every: u64,
    ) -> Blockchain {
        let mut chain = genesis;
        chain.store = None; // no re-journaling while replaying
        let (snapshot, frames) = {
            let mut log = store.lock();
            let scan = log.repair();
            (log.snapshot().map(|(h, b)| (h, b.to_vec())), scan.frames)
        };
        // Snapshot fast path: restore the tip state and load the block
        // prefix raw (no re-execution; pre-snapshot receipts and events
        // are not retained).
        let mut replay_from = 0u64;
        if let Some((_, bytes)) = snapshot {
            match chain.restore_snapshot(&bytes) {
                Ok(height) => {
                    replay_from = height;
                    for frame in &frames {
                        if frame.kind != FRAME_BLOCK || frame.height >= height {
                            continue;
                        }
                        let Some((block, _)) = Self::decode_block_frame(&frame.payload) else {
                            continue;
                        };
                        for tx in &block.transactions {
                            chain.seen.insert(tx.hash());
                        }
                        chain.blocks.push(block);
                    }
                }
                Err(_) => {
                    pds2_obs::counter!("chain.snapshot_restore_failed").inc();
                    replay_from = 0;
                }
            }
        }
        // Replay the tail through full validation + execution.
        for frame in &frames {
            if frame.kind != FRAME_BLOCK || frame.height < replay_from {
                continue;
            }
            let Some((block, expected_receipts)) = Self::decode_block_frame(&frame.payload) else {
                break;
            };
            if chain.apply_external_block(&block).is_err() {
                break;
            }
            if Self::stored_receipts_digest(&chain.receipts, &block) != expected_receipts {
                // Replay diverged from the pre-crash execution — the log
                // is not trustworthy past this point.
                break;
            }
        }
        // Reinstate journaled transactions; `submit` dedups everything
        // the replayed chain already included (via `seen`).
        let mut reinstated = 0usize;
        for frame in &frames {
            if frame.kind != FRAME_TX {
                continue;
            }
            let Ok(tx) = SignedTransaction::from_bytes(&frame.payload) else {
                continue;
            };
            if chain.submit(tx).is_ok() {
                reinstated += 1;
            }
        }
        if reinstated > 0 {
            pds2_obs::counter!("chain.txs_reinstated").add(reinstated as u64);
        }
        pds2_obs::counter!("chain.recoveries").inc();
        // Only now re-arm persistence (attaching earlier would duplicate
        // every replayed frame).
        chain.attach_store(store, snapshot_every);
        chain
    }

    // ------------------------------------------------------------------
    // Authenticated light-client reads
    // ------------------------------------------------------------------

    /// Produces an authenticated account read: the account (if any) plus
    /// a Merkle (non-)inclusion proof against the current state root.
    /// Light clients verify with [`verify_account_proof`] holding only a
    /// validated block header.
    pub fn prove_account(&self, addr: &crate::address::Address) -> AccountProof {
        let (value, proof) = self.state.prove_leaf(&LeafKey::Account(*addr));
        let account = value.map(|b| Account::from_bytes(&b).expect("canonical account encoding"));
        AccountProof { account, proof }
    }

    /// Produces an authenticated NFT read (ownership of datasets and
    /// workload code, §III-A): metadata plus (non-)inclusion proof.
    pub fn prove_nft(
        &self,
        id: crate::erc721::NftId,
    ) -> (Option<crate::erc721::NftInfo>, SmtProof) {
        let (value, proof) = self.state.prove_leaf(&LeafKey::Erc721Token(id));
        let info =
            value.map(|b| crate::erc721::NftInfo::from_bytes(&b).expect("canonical NFT encoding"));
        (info, proof)
    }
}

/// An authenticated account read (see [`Blockchain::prove_account`]).
#[derive(Clone, Debug)]
pub struct AccountProof {
    /// The account, or `None` with a proof of absence.
    pub account: Option<Account>,
    /// Merkle (non-)inclusion proof against the state root.
    pub proof: SmtProof,
}

/// Verifies an [`AccountProof`] against a trusted state root (from a
/// validated block header). Checks inclusion of the account's canonical
/// encoding, or absence when the proof carries no account.
pub fn verify_account_proof(
    state_root: &Digest,
    addr: &crate::address::Address,
    proof: &AccountProof,
) -> bool {
    let key = LeafKey::Account(*addr).digest();
    match &proof.account {
        Some(acct) => {
            crate::smt::verify_proof(state_root, &key, Some(&acct.to_bytes()), &proof.proof)
        }
        None => crate::smt::verify_proof(state_root, &key, None, &proof.proof),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::tx::{Transaction, TxKind};

    fn signed_transfer(kp: &KeyPair, nonce: u64, to: Address, amount: u128) -> SignedTransaction {
        fee_transfer(kp, nonce, to, amount, 0, 0)
    }

    fn fee_transfer(
        kp: &KeyPair,
        nonce: u64,
        to: Address,
        amount: u128,
        max_fee: u64,
        prio: u64,
    ) -> SignedTransaction {
        Transaction {
            from: kp.public.clone(),
            nonce,
            kind: TxKind::Transfer { to, amount },
            gas_limit: 100_000,
            max_fee_per_gas: max_fee,
            priority_fee_per_gas: prio,
        }
        .sign(kp)
    }

    fn test_chain(alice: &KeyPair) -> Blockchain {
        Blockchain::single_validator(
            1000,
            &[(Address::of(&alice.public), 1_000_000)],
            ContractRegistry::new(),
        )
    }

    #[test]
    fn produce_empty_block() {
        let alice = KeyPair::from_seed(1);
        let mut chain = test_chain(&alice);
        let b = chain.produce_block();
        assert_eq!(b.header.height, 0);
        assert_eq!(b.header.parent, Digest::ZERO);
        assert!(b.transactions.is_empty());
        assert_eq!(chain.height(), 1);
    }

    #[test]
    fn submit_and_include() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let tx = signed_transfer(&alice, 0, bob, 500);
        let hash = chain.submit(tx).unwrap();
        assert_eq!(chain.mempool_len(), 1);
        let b = chain.produce_block();
        assert_eq!(b.transactions.len(), 1);
        assert_eq!(chain.mempool_len(), 0);
        let receipt = chain.receipt(&hash).unwrap();
        assert!(receipt.success);
        assert_eq!(chain.state.balance(&bob), 500);
    }

    #[test]
    fn duplicate_submission_rejected() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let tx = signed_transfer(&alice, 0, bob, 1);
        chain.submit(tx.clone()).unwrap();
        assert_eq!(chain.submit(tx), Err(ChainError::Duplicate));
    }

    #[test]
    fn invalid_signature_rejected_at_submission() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let mut tx = signed_transfer(&alice, 0, bob, 1);
        tx.tx.nonce = 1; // tamper
        assert_eq!(chain.submit(tx), Err(ChainError::InvalidSignature));
    }

    #[test]
    fn stale_nonce_rejected_at_submission() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        chain.submit(signed_transfer(&alice, 0, bob, 1)).unwrap();
        chain.produce_block();
        let stale = signed_transfer(&alice, 0, bob, 2);
        assert!(matches!(
            chain.submit(stale),
            Err(ChainError::StaleNonce {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn future_nonce_waits_for_gap_fill() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        // Submit nonce 1 before nonce 0.
        chain.submit(signed_transfer(&alice, 1, bob, 10)).unwrap();
        let b = chain.produce_block();
        assert!(b.transactions.is_empty(), "gap: nothing included");
        assert_eq!(chain.mempool_len(), 1, "future tx retained");
        chain.submit(signed_transfer(&alice, 0, bob, 5)).unwrap();
        let b = chain.produce_block();
        assert_eq!(b.transactions.len(), 2, "both included in order");
        assert_eq!(chain.state.balance(&bob), 15);
    }

    #[test]
    fn round_robin_proposers() {
        let alice = KeyPair::from_seed(1);
        let validators: Vec<KeyPair> = (0..3).map(|i| KeyPair::from_seed(2000 + i)).collect();
        let pubs: Vec<PublicKey> = validators.iter().map(|v| v.public.clone()).collect();
        let mut chain = Blockchain::new(
            validators,
            &[(Address::of(&alice.public), 1000)],
            ContractRegistry::new(),
            ChainConfig::default(),
        );
        for expected in [0usize, 1, 2, 0, 1] {
            let b = chain.produce_block();
            assert_eq!(b.header.proposer, pubs[expected]);
        }
    }

    fn mode_chain(sig_mode: SigMode, alice: &KeyPair) -> Blockchain {
        let validators: Vec<KeyPair> = (0..4).map(|i| KeyPair::from_seed(2100 + i)).collect();
        Blockchain::new(
            validators,
            &[(Address::of(&alice.public), 1_000_000)],
            ContractRegistry::new(),
            ChainConfig {
                sig_mode,
                ..ChainConfig::default()
            },
        )
    }

    #[test]
    fn threshold_mode_agrees_with_single_mode_block_for_block() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut single = mode_chain(SigMode::Single, &alice);
        let mut threshold = mode_chain(SigMode::Threshold, &alice);
        for h in 0..5u64 {
            for c in [&mut single, &mut threshold] {
                c.submit(signed_transfer(&alice, h, bob, 10 + h as u128))
                    .unwrap();
            }
            let bs = single.produce_block();
            let bt = threshold.produce_block();
            // The differential oracle: everything but the signature is
            // bit-identical — proposer (and thus coinbase), roots, fees.
            assert_eq!(bs.header.state_root, bt.header.state_root, "h={h}");
            assert_eq!(bs.header.tx_root, bt.header.tx_root);
            assert_eq!(bs.header.proposer, bt.header.proposer);
            assert_eq!(bs.header.base_fee, bt.header.base_fee);
            assert_ne!(bs.header.signature, bt.header.signature);
            // The threshold seal verifies only against the group key.
            assert!(!bt.header.verify_signature(), "not the proposer's sig");
            let ctx = crate::threshold::committee_for(&threshold.validator_set());
            assert!(bt.header.verify_signature_with(ctx.group_public()));
        }
        assert_eq!(single.state.state_root(), threshold.state.state_root());
    }

    #[test]
    fn threshold_validator_rejects_single_key_seal() {
        let alice = KeyPair::from_seed(1);
        let mut threshold = mode_chain(SigMode::Threshold, &alice);
        // A proposer gone rogue seals with its own key instead of
        // gathering a quorum: every honest threshold validator rejects.
        let single = mode_chain(SigMode::Single, &alice);
        let mut shadow = mode_chain(SigMode::Single, &alice);
        let forged = shadow.produce_block();
        drop(single);
        assert_eq!(
            threshold.validate_external_block(&forged),
            Err(ChainError::InvalidBlock("bad header signature"))
        );
        // And the genuine threshold seal is accepted.
        let mut shadow_t = mode_chain(SigMode::Threshold, &alice);
        let good = shadow_t.produce_block();
        threshold.validate_external_block(&good).unwrap();
        threshold.apply_external_block(&good).unwrap();
    }

    #[test]
    fn chain_links_parents() {
        let alice = KeyPair::from_seed(1);
        let mut chain = test_chain(&alice);
        let b0 = chain.produce_block();
        let b1 = chain.produce_block();
        assert_eq!(b1.header.parent, b0.header.hash());
        assert_eq!(b1.header.timestamp, 12);
    }

    #[test]
    fn external_block_validation_rejects_tampering() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        chain.submit(signed_transfer(&alice, 0, bob, 5)).unwrap();

        // Build a *valid* candidate block on a clone of the chain.
        let mut shadow = test_chain(&alice);
        shadow.submit(signed_transfer(&alice, 0, bob, 5)).unwrap();
        let good = shadow.produce_block();
        chain.validate_external_block(&good).unwrap();

        // Tamper with the body.
        let mut bad = good.clone();
        bad.transactions.clear();
        assert_eq!(
            chain.validate_external_block(&bad),
            Err(ChainError::InvalidBlock("tx root mismatch"))
        );

        // Wrong proposer.
        let rogue = KeyPair::from_seed(666);
        let mut forged = good.clone();
        forged.header = BlockHeader::new_signed(
            &rogue,
            forged.header.height,
            forged.header.parent,
            forged.header.state_root,
            forged.header.tx_root,
            forged.header.timestamp,
            forged.header.base_fee,
            forged.header.gas_used,
        );
        assert_eq!(
            chain.validate_external_block(&forged),
            Err(ChainError::WrongProposer)
        );

        // Wrong height.
        let mut wrong_height = good.clone();
        wrong_height.header.height = 7;
        assert!(chain.validate_external_block(&wrong_height).is_err());
    }

    #[test]
    fn block_gas_limit_defers_transactions() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = Blockchain::new(
            vec![KeyPair::from_seed(1000)],
            &[(Address::of(&alice.public), 1_000_000)],
            ContractRegistry::new(),
            ChainConfig {
                block_gas_limit: 150_000, // fits one 100k-gas tx only
                ..Default::default()
            },
        );
        chain.submit(signed_transfer(&alice, 0, bob, 1)).unwrap();
        chain.submit(signed_transfer(&alice, 1, bob, 1)).unwrap();
        let b = chain.produce_block();
        assert_eq!(b.transactions.len(), 1);
        assert_eq!(chain.mempool_len(), 1);
        let b = chain.produce_block();
        assert_eq!(b.transactions.len(), 1);
    }

    #[test]
    fn produce_until_empty_drains_pool() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        for nonce in 0..5 {
            chain
                .submit(signed_transfer(&alice, nonce, bob, 1))
                .unwrap();
        }
        let produced = chain.produce_until_empty(100);
        assert!(produced >= 1);
        assert_eq!(chain.mempool_len(), 0);
        assert_eq!(chain.state.balance(&bob), 5);
    }

    #[test]
    fn events_are_indexed() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        chain.submit(signed_transfer(&alice, 0, bob, 5)).unwrap();
        chain.produce_block();
        assert_eq!(chain.events_by_topic("native.").len(), 1);
        assert!(chain.events_by_topic("erc20.").is_empty());
    }

    #[test]
    fn inclusion_proofs_verify_against_headers() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let mut hashes = Vec::new();
        for nonce in 0..5 {
            hashes.push(
                chain
                    .submit(signed_transfer(&alice, nonce, bob, 1))
                    .unwrap(),
            );
        }
        chain.produce_block();
        let header = &chain.block(0).unwrap().header.clone();
        for h in &hashes {
            let proof = chain.prove_inclusion(h).expect("included");
            assert!(proof.verify(header), "proof for {h}");
            assert_eq!(proof.block_height, 0);
        }
        // Unknown tx: no proof.
        assert!(chain
            .prove_inclusion(&pds2_crypto::sha256(b"ghost"))
            .is_none());
        // A proof does not verify against the wrong header.
        chain.submit(signed_transfer(&alice, 5, bob, 1)).unwrap();
        chain.produce_block();
        let other_header = &chain.block(1).unwrap().header;
        let proof = chain.prove_inclusion(&hashes[0]).unwrap();
        assert!(!proof.verify(other_header));
    }

    #[test]
    fn inclusion_proof_rejects_forged_tx_hash() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let h = chain.submit(signed_transfer(&alice, 0, bob, 1)).unwrap();
        chain.produce_block();
        let header = chain.block(0).unwrap().header.clone();
        let mut proof = chain.prove_inclusion(&h).unwrap();
        proof.tx_hash = pds2_crypto::sha256(b"forged");
        assert!(!proof.verify(&header));
    }

    #[test]
    fn unfittable_gas_limit_rejected_at_submit() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let tx = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer { to: bob, amount: 1 },
            gas_limit: 30_000_001, // above the 30M block gas limit
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        let err = chain.submit(tx.clone()).unwrap_err();
        assert!(matches!(
            err,
            ChainError::Submit(crate::mempool::SubmitError::GasLimitTooHigh { .. })
        ));
        assert_eq!(chain.mempool_len(), 0);
        // The rejected hash is not burned into `seen`: a corrected
        // resubmission is not a Duplicate.
        let ok = signed_transfer(&alice, 0, bob, 1);
        chain.submit(ok).unwrap();
        // And the old unfittable tx still fails for its own reason.
        assert!(matches!(chain.submit(tx), Err(ChainError::Submit(_))));
    }

    #[test]
    fn produce_until_empty_breaks_on_stuck_pool() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        // Nonce 1 with no nonce 0: can never be included.
        chain.submit(signed_transfer(&alice, 1, bob, 1)).unwrap();
        let produced = chain.produce_until_empty(100);
        assert_eq!(produced, 1, "one no-progress round, then stop");
        assert_eq!(chain.mempool_len(), 1, "gapped tx stays pending");
    }

    #[test]
    fn blocks_order_by_effective_tip() {
        let keys: Vec<KeyPair> = (1..=3).map(KeyPair::from_seed).collect();
        let bob = Address::of(&KeyPair::from_seed(99).public);
        let alloc: Vec<(Address, u128)> = keys
            .iter()
            .map(|k| (Address::of(&k.public), 1_000_000_000))
            .collect();
        let mut chain = Blockchain::new(
            vec![KeyPair::from_seed(1000)],
            &alloc,
            ContractRegistry::new(),
            ChainConfig::default(),
        );
        chain
            .submit(fee_transfer(&keys[0], 0, bob, 1, 10, 2))
            .unwrap();
        chain
            .submit(fee_transfer(&keys[1], 0, bob, 1, 10, 9))
            .unwrap();
        chain
            .submit(fee_transfer(&keys[2], 0, bob, 1, 10, 5))
            .unwrap();
        let b = chain.produce_block();
        let tips: Vec<u64> = b
            .transactions
            .iter()
            .map(|t| t.tx.priority_fee_per_gas)
            .collect();
        assert_eq!(tips, [9, 5, 2], "highest tip first at base fee 0");
    }

    #[test]
    fn base_fee_rises_under_load_and_decays_when_idle() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = Blockchain::new(
            vec![KeyPair::from_seed(1000)],
            &[(Address::of(&alice.public), u128::MAX / 2)],
            ContractRegistry::new(),
            ChainConfig {
                // Target is 20k gas; one ~23k-gas transfer per block keeps
                // every block above target, driving the fee up.
                block_gas_limit: 40_000,
                initial_base_fee: 1_000,
                ..Default::default()
            },
        );
        for nonce in 0..3 {
            let tx = Transaction {
                from: alice.public.clone(),
                nonce,
                kind: TxKind::Transfer { to: bob, amount: 1 },
                gas_limit: 30_000,
                max_fee_per_gas: 1_000_000,
                priority_fee_per_gas: 1,
            }
            .sign(&alice);
            chain.submit(tx).unwrap();
        }
        assert_eq!(chain.base_fee(), 1_000);
        let mut fees = Vec::new();
        for _ in 0..3 {
            let b = chain.produce_block();
            assert_eq!(b.transactions.len(), 1);
            fees.push(chain.base_fee());
        }
        assert!(
            fees.windows(2).all(|w| w[1] > w[0]),
            "congested blocks push the fee up: {fees:?}"
        );
        let congested = chain.base_fee();
        chain.produce_block(); // empty
        assert!(chain.base_fee() < congested, "idle block decays the fee");
        // Burned supply is positive and conservation holds with it.
        assert!(chain.state.burned() > 0);
    }

    #[test]
    fn fee_market_conserves_supply_plus_burn() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = Blockchain::new(
            vec![KeyPair::from_seed(1000)],
            &[(Address::of(&alice.public), 1_000_000_000_000)],
            ContractRegistry::new(),
            ChainConfig {
                initial_base_fee: 5,
                ..Default::default()
            },
        );
        for nonce in 0..10 {
            chain
                .submit(fee_transfer(&alice, nonce, bob, 100, 50, 3))
                .unwrap();
        }
        chain.produce_until_empty(10);
        assert!(chain.state.burned() > 0, "base fee burned something");
        assert_eq!(
            chain.state.total_native_supply() + chain.state.burned(),
            1_000_000_000_000,
            "supply + burned is invariant"
        );
        // The proposer collected tips.
        let coinbase = Address::of(&KeyPair::from_seed(1000).public);
        assert!(chain.state.balance(&coinbase) > 0);
    }

    #[test]
    fn mempool_eviction_frees_room_for_better_fees() {
        let keys: Vec<KeyPair> = (1..=3).map(KeyPair::from_seed).collect();
        let bob = Address::of(&KeyPair::from_seed(99).public);
        let alloc: Vec<(Address, u128)> = keys
            .iter()
            .map(|k| (Address::of(&k.public), 1_000_000_000))
            .collect();
        let mut chain = Blockchain::new(
            vec![KeyPair::from_seed(1000)],
            &alloc,
            ContractRegistry::new(),
            ChainConfig {
                mempool_capacity: 2,
                ..Default::default()
            },
        );
        let cheap = fee_transfer(&keys[0], 0, bob, 1, 1, 0);
        let cheap_hash = cheap.hash();
        chain.submit(cheap).unwrap();
        chain
            .submit(fee_transfer(&keys[1], 0, bob, 1, 50, 1))
            .unwrap();
        // Pool full; a better-paying arrival displaces the cheapest.
        chain
            .submit(fee_transfer(&keys[2], 0, bob, 1, 80, 2))
            .unwrap();
        assert_eq!(chain.mempool_len(), 2);
        // The evicted tx can be resubmitted (repriced) — not a Duplicate.
        let repriced = fee_transfer(&keys[0], 0, bob, 1, 90, 3);
        assert_ne!(repriced.hash(), cheap_hash);
        chain.submit(repriced).unwrap();
    }

    #[test]
    fn pipelined_apply_matches_serial() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        // Produce a small chain on one node...
        let mut producer = test_chain(&alice);
        let mut blocks = Vec::new();
        for nonce in 0..6u64 {
            producer
                .submit(signed_transfer(&alice, nonce, bob, 10))
                .unwrap();
            blocks.push(producer.produce_block());
        }
        // ...and replay it onto two fresh replicas, serially and pipelined.
        let mut serial = test_chain(&alice);
        for b in &blocks {
            serial.apply_external_block(b).unwrap();
        }
        crate::sigcache::clear();
        let mut pipelined = test_chain(&alice);
        let n = pipelined.apply_external_blocks_pipelined(&blocks).unwrap();
        assert_eq!(n, blocks.len());
        assert_eq!(pipelined.height(), serial.height());
        assert_eq!(pipelined.head_hash(), serial.head_hash());
        assert_eq!(
            pipelined.state.state_root(),
            serial.state.state_root(),
            "bit-identical state after pipelined apply"
        );
        assert_eq!(pipelined.base_fee(), serial.base_fee());
    }

    #[test]
    fn reinstate_skips_included_and_readmits_the_rest() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let t0 = signed_transfer(&alice, 0, bob, 1);
        let t1 = signed_transfer(&alice, 1, bob, 1);
        chain.submit(t0.clone()).unwrap();
        chain.produce_block(); // includes t0
        let reinstated = chain.reinstate_transactions(vec![t0, t1]);
        assert_eq!(reinstated, 1, "t0 already included, t1 re-enters");
        assert_eq!(chain.mempool_len(), 1);
    }

    #[test]
    fn native_supply_is_conserved() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        for nonce in 0..10 {
            chain
                .submit(signed_transfer(&alice, nonce, bob, 100))
                .unwrap();
        }
        chain.produce_until_empty(10);
        assert_eq!(chain.state.total_native_supply(), 1_000_000);
    }
}
