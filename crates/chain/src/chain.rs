//! The blockchain: proof-of-authority production, mempool, receipts and
//! queries.
//!
//! PDS² selects a permissionless chain (Ethereum) in the paper; this
//! simulation runs a proof-of-authority committee instead (see DESIGN.md's
//! substitution table) — block *content* and contract semantics are what
//! the marketplace depends on, not the Sybil-resistance mechanism.
//! Validators take turns round-robin; every block is fully validated
//! (proposer turn, parent hash, header signature, tx root, tx signatures)
//! before being appended, so the tests can demonstrate tamper rejection.

use crate::block::{Block, BlockHeader};
use crate::contract::ContractRegistry;
use crate::event::Event;
use crate::state::{TxReceipt, WorldState};
use crate::tx::SignedTransaction;
use parking_lot::Mutex;
use pds2_crypto::schnorr::{KeyPair, PublicKey};
use pds2_crypto::sha256::Digest;
use pds2_obs::TraceCtx;
use std::collections::{HashMap, VecDeque};

/// First eight bytes of a digest as a trace-field-sized fingerprint.
fn digest_tag(d: &Digest) -> u64 {
    u64::from_le_bytes(d.as_bytes()[..8].try_into().expect("digest >= 8 bytes"))
}

/// Chain configuration.
#[derive(Clone, Debug)]
pub struct ChainConfig {
    /// Gas budget per block.
    pub block_gas_limit: u64,
    /// Logical seconds between blocks (drives header timestamps).
    pub block_interval_secs: u64,
    /// Maximum transactions per block regardless of gas.
    pub max_txs_per_block: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            block_gas_limit: 30_000_000,
            block_interval_secs: 12,
            max_txs_per_block: 1024,
        }
    }
}

/// Errors from block production/validation or submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Submitted transaction has an invalid signature.
    InvalidSignature,
    /// Submitted transaction nonce is already used.
    StaleNonce {
        /// Account's current nonce.
        expected: u64,
        /// Nonce carried by the transaction.
        got: u64,
    },
    /// Duplicate of a transaction already pending or included.
    Duplicate,
    /// Block validation failed.
    InvalidBlock(&'static str),
    /// The proposer is not the validator whose turn it is.
    WrongProposer,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::InvalidSignature => write!(f, "invalid transaction signature"),
            ChainError::StaleNonce { expected, got } => {
                write!(f, "stale nonce: account at {expected}, tx has {got}")
            }
            ChainError::Duplicate => write!(f, "duplicate transaction"),
            ChainError::InvalidBlock(why) => write!(f, "invalid block: {why}"),
            ChainError::WrongProposer => write!(f, "proposer out of turn"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A light-client proof that a transaction was included in a block.
#[derive(Clone, Debug)]
pub struct InclusionProof {
    /// Height of the including block.
    pub block_height: u64,
    /// The proven transaction hash.
    pub tx_hash: Digest,
    /// Merkle path to the header's `tx_root`.
    pub proof: pds2_crypto::merkle::MerkleProof,
}

impl InclusionProof {
    /// Verifies the proof against a trusted block header.
    pub fn verify(&self, header: &crate::block::BlockHeader) -> bool {
        header.height == self.block_height
            && self.proof.verify(self.tx_hash.as_bytes(), &header.tx_root)
    }
}

/// The blockchain node (state machine + ledger + mempool).
pub struct Blockchain {
    /// Current world state.
    pub state: WorldState,
    registry: ContractRegistry,
    config: ChainConfig,
    validators: Vec<KeyPair>,
    blocks: Vec<Block>,
    receipts: HashMap<Digest, TxReceipt>,
    events: Vec<Event>,
    mempool: Mutex<VecDeque<SignedTransaction>>,
    seen: std::collections::HashSet<Digest>,
    /// Ambient causal context: chain work not attributable to a specific
    /// transaction (block production/validation/apply spans) joins this
    /// trace. Replicas set it per network delivery; the marketplace sets
    /// it per workload call.
    trace_ctx: TraceCtx,
    /// Causal context and submission height of each pending traced
    /// transaction; consumed (and emitted as `tx.included`) when the tx
    /// enters a block. Populated only while a capture is active.
    tx_traces: HashMap<Digest, (TraceCtx, u64)>,
}

impl Blockchain {
    /// Creates a chain with a validator committee and genesis allocations.
    pub fn new(
        validators: Vec<KeyPair>,
        genesis_alloc: &[(crate::address::Address, u128)],
        registry: ContractRegistry,
        config: ChainConfig,
    ) -> Blockchain {
        assert!(!validators.is_empty(), "need at least one validator");
        let mut state = WorldState::new();
        for (addr, amount) in genesis_alloc {
            state.genesis_credit(*addr, *amount);
        }
        Blockchain {
            state,
            registry,
            config,
            validators,
            blocks: Vec::new(),
            receipts: HashMap::new(),
            events: Vec::new(),
            mempool: Mutex::new(VecDeque::new()),
            seen: std::collections::HashSet::new(),
            trace_ctx: TraceCtx::NONE,
            tx_traces: HashMap::new(),
        }
    }

    /// Sets the ambient causal context (see the `trace_ctx` field).
    /// [`TraceCtx::NONE`] detaches the chain from any trace.
    pub fn set_trace_ctx(&mut self, ctx: TraceCtx) {
        self.trace_ctx = ctx;
    }

    /// The current ambient causal context.
    pub fn trace_ctx(&self) -> TraceCtx {
        self.trace_ctx
    }

    /// Convenience single-validator chain for tests and examples.
    pub fn single_validator(
        seed: u64,
        genesis_alloc: &[(crate::address::Address, u128)],
        registry: ContractRegistry,
    ) -> Blockchain {
        Blockchain::new(
            vec![KeyPair::from_seed(seed)],
            genesis_alloc,
            registry,
            ChainConfig::default(),
        )
    }

    /// The validator committee's public keys.
    pub fn validator_set(&self) -> Vec<PublicKey> {
        self.validators.iter().map(|v| v.public.clone()).collect()
    }

    /// Next block height.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Hash of the latest block (`Digest::ZERO` before genesis).
    pub fn head_hash(&self) -> Digest {
        self.blocks.last().map_or(Digest::ZERO, |b| b.header.hash())
    }

    /// Block by height.
    pub fn block(&self, height: u64) -> Option<&Block> {
        self.blocks.get(height as usize)
    }

    /// All blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Receipt by transaction hash.
    pub fn receipt(&self, tx_hash: &Digest) -> Option<&TxReceipt> {
        self.receipts.get(tx_hash)
    }

    /// All events ever emitted, in chain order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Events whose topic starts with `prefix`.
    pub fn events_by_topic(&self, prefix: &str) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| e.topic.starts_with(prefix))
            .collect()
    }

    /// Number of pending mempool transactions.
    pub fn mempool_len(&self) -> usize {
        self.mempool.lock().len()
    }

    /// Submits a transaction to the mempool after stateless+stateful
    /// admission checks, under the ambient causal context.
    pub fn submit(&mut self, tx: SignedTransaction) -> Result<Digest, ChainError> {
        let ctx = self.trace_ctx;
        self.submit_traced(tx, ctx)
    }

    /// [`submit`](Self::submit) under an explicit causal context. With a
    /// live capture and `ctx == NONE`, submission *mints* a new trace
    /// (`chain/tx.submit` root) — a bare tx entering the system is a
    /// workload in its own right; a non-empty `ctx` (the marketplace's
    /// workload trace, a replica's delivery span) joins that trace
    /// instead. Inclusion later emits `chain/tx.included` on the same
    /// trace with the blocks-waited count.
    pub fn submit_traced(
        &mut self,
        tx: SignedTransaction,
        ctx: TraceCtx,
    ) -> Result<Digest, ChainError> {
        pds2_obs::counter!("chain.txs_submitted").inc();
        if !tx.verify_signature() {
            pds2_obs::counter!("chain.txs_rejected").inc();
            return Err(ChainError::InvalidSignature);
        }
        let hash = tx.hash();
        if self.seen.contains(&hash) {
            pds2_obs::counter!("chain.txs_rejected").inc();
            return Err(ChainError::Duplicate);
        }
        let account_nonce = self.state.nonce(&tx.tx.sender());
        if tx.tx.nonce < account_nonce {
            pds2_obs::counter!("chain.txs_rejected").inc();
            return Err(ChainError::StaleNonce {
                expected: account_nonce,
                got: tx.tx.nonce,
            });
        }
        if pds2_obs::enabled() {
            let height = self.height();
            let fields = vec![
                ("tx", pds2_obs::Value::from(digest_tag(&hash))),
                ("nonce", pds2_obs::Value::from(tx.tx.nonce)),
            ];
            let tx_ctx = if ctx.is_none() {
                let root = pds2_obs::new_trace(
                    "chain",
                    "tx.submit",
                    pds2_obs::Stamp::Block(height),
                    fields,
                );
                let minted = root.ctx();
                root.finish(pds2_obs::Stamp::Block(height), Vec::new());
                minted
            } else {
                pds2_obs::emit_traced(
                    "chain",
                    "tx.submit",
                    pds2_obs::Stamp::Block(height),
                    ctx,
                    fields,
                );
                ctx
            };
            if !tx_ctx.is_none() {
                self.tx_traces.insert(hash, (tx_ctx, height));
            }
        }
        self.seen.insert(hash);
        let pool_len = {
            let mut pool = self.mempool.lock();
            pool.push_back(tx);
            pool.len()
        };
        pds2_obs::gauge!("chain.mempool_size").set(pool_len as f64);
        Ok(hash)
    }

    /// The validator whose turn it is at `height`.
    fn proposer_for(&self, height: u64) -> &KeyPair {
        &self.validators[(height as usize) % self.validators.len()]
    }

    /// Produces, validates and appends the next block from the mempool.
    ///
    /// Returns the new block. Transactions that no longer pass nonce
    /// ordering are retried later (kept in the pool) unless their nonce is
    /// stale, in which case they are dropped.
    pub fn produce_block(&mut self) -> Block {
        let height = self.height();
        let span = pds2_obs::span_traced(
            "chain",
            "produce_block",
            pds2_obs::Stamp::Block(height),
            self.trace_ctx,
            Vec::new(),
        );
        let parent = self.head_hash();
        let timestamp = height * self.config.block_interval_secs;

        // Select transactions: respect per-sender nonce order and block gas.
        // Passes repeat until no progress, so a nonce gap filled later in
        // the pool still lets the earlier-submitted future tx in.
        let mut selected: Vec<SignedTransaction> = Vec::new();
        let mut gas_budget = self.config.block_gas_limit;
        let mut expected_nonces: HashMap<crate::address::Address, u64> = HashMap::new();
        {
            let mut pool = self.mempool.lock();
            let mut pending: VecDeque<SignedTransaction> = std::mem::take(&mut *pool);
            loop {
                let mut progressed = false;
                let mut deferred: VecDeque<SignedTransaction> =
                    VecDeque::with_capacity(pending.len());
                while let Some(tx) = pending.pop_front() {
                    if selected.len() >= self.config.max_txs_per_block {
                        deferred.push_back(tx);
                        continue;
                    }
                    let sender = tx.tx.sender();
                    let expected = *expected_nonces
                        .entry(sender)
                        .or_insert_with(|| self.state.nonce(&sender));
                    match tx.tx.nonce.cmp(&expected) {
                        std::cmp::Ordering::Less => {
                            // Stale: drop permanently.
                            progressed = true;
                            continue;
                        }
                        std::cmp::Ordering::Greater => {
                            // Future nonce: retry after a potential gap fill.
                            deferred.push_back(tx);
                            continue;
                        }
                        std::cmp::Ordering::Equal => {}
                    }
                    if tx.tx.gas_limit > gas_budget {
                        deferred.push_back(tx);
                        continue;
                    }
                    gas_budget -= tx.tx.gas_limit;
                    expected_nonces.insert(sender, expected + 1);
                    selected.push(tx);
                    progressed = true;
                }
                pending = deferred;
                if !progressed || pending.is_empty() {
                    break;
                }
            }
            *pool = pending;
        }

        // Execute. Each traced transaction executes under its own
        // submission-time context, so contract events it raises join the
        // workload's trace rather than the producer's ambient one.
        let produce_ctx = if span.id() != 0 {
            span.ctx()
        } else {
            self.trace_ctx
        };
        let mut receipts = Vec::with_capacity(selected.len());
        let mut included = Vec::with_capacity(selected.len());
        for (i, tx) in selected.iter().enumerate() {
            let hash = tx.hash();
            let trace = self
                .tx_traces
                .get(&hash)
                .map(|(ctx, _)| *ctx)
                .unwrap_or(produce_ctx);
            let receipt =
                self.state
                    .apply_transaction_traced(&self.registry, tx, height, i as u32, trace);
            receipts.push(receipt);
            if let Some((ctx, submitted_at)) = self.tx_traces.remove(&hash) {
                included.push((hash, ctx, submitted_at));
            }
        }
        for (hash, ctx, submitted_at) in included {
            pds2_obs::trace_event!(
                "chain",
                "tx.included",
                pds2_obs::Stamp::Block(height),
                ctx,
                "tx" => digest_tag(&hash),
                "blocks_waited" => height.saturating_sub(submitted_at),
            );
        }

        let tx_root = Block::compute_tx_root(&selected);
        let state_root = self.state.state_root();
        let proposer = self.proposer_for(height).clone();
        let header =
            BlockHeader::new_signed(&proposer, height, parent, state_root, tx_root, timestamp);
        let block = Block {
            header,
            transactions: selected,
        };

        // Record.
        let mut gas_used: u64 = 0;
        for receipt in receipts {
            gas_used += receipt.gas_used;
            self.events.extend(receipt.events.iter().cloned());
            self.receipts.insert(receipt.tx_hash, receipt);
        }
        pds2_obs::counter!("chain.blocks_produced").inc();
        pds2_obs::counter!("chain.txs_included").add(block.transactions.len() as u64);
        pds2_obs::histogram!("chain.gas_per_block").observe(gas_used);
        pds2_obs::gauge!("chain.mempool_size").set(self.mempool_len() as f64);
        if pds2_obs::enabled() {
            span.finish(
                pds2_obs::Stamp::Block(height),
                vec![
                    ("txs", pds2_obs::Value::from(block.transactions.len())),
                    ("gas_used", pds2_obs::Value::from(gas_used)),
                ],
            );
        }
        self.blocks.push(block.clone());
        block
    }

    /// Produces blocks until the mempool is drained (bounded by
    /// `max_blocks` as a safety stop). Returns the number produced.
    pub fn produce_until_empty(&mut self, max_blocks: usize) -> usize {
        let mut produced = 0;
        while self.mempool_len() > 0 && produced < max_blocks {
            self.produce_block();
            produced += 1;
        }
        produced
    }

    /// Validates a block received from elsewhere against the current head
    /// (used by tests to demonstrate tamper rejection). Does not execute.
    pub fn validate_external_block(&self, block: &Block) -> Result<(), ChainError> {
        let height = block.header.height;
        let span = pds2_obs::span_traced(
            "chain",
            "validate_block",
            pds2_obs::Stamp::Block(height),
            self.trace_ctx,
            Vec::new(),
        );
        let res = self.validate_external_block_uninstrumented(block);
        match res {
            Ok(()) => pds2_obs::counter!("chain.blocks_validated").inc(),
            Err(_) => pds2_obs::counter!("chain.blocks_rejected").inc(),
        }
        if pds2_obs::enabled() {
            span.finish(
                pds2_obs::Stamp::Block(height),
                vec![
                    ("txs", pds2_obs::Value::from(block.transactions.len())),
                    ("ok", pds2_obs::Value::from(res.is_ok() as u64)),
                ],
            );
        }
        res
    }

    /// [`validate_external_block`](Self::validate_external_block) minus
    /// the observability wrapper. Public so `bench_obs` can time the
    /// bare validation path as the baseline for its overhead
    /// measurement; everyone else should call the instrumented entry
    /// point.
    #[doc(hidden)]
    pub fn validate_external_block_uninstrumented(&self, block: &Block) -> Result<(), ChainError> {
        if block.header.height != self.height() {
            return Err(ChainError::InvalidBlock("wrong height"));
        }
        if block.header.parent != self.head_hash() {
            return Err(ChainError::InvalidBlock("wrong parent"));
        }
        let expected_proposer = &self.proposer_for(block.header.height).public;
        if &block.header.proposer != expected_proposer {
            return Err(ChainError::WrongProposer);
        }
        if !block.header.verify_signature() {
            return Err(ChainError::InvalidBlock("bad header signature"));
        }
        if !block.tx_root_matches() {
            return Err(ChainError::InvalidBlock("tx root mismatch"));
        }
        // Signature checks are independent per transaction, so they fan
        // out across the pds2-par worker pool; the verdict (all-true) is
        // order-insensitive, and each check also warms the transaction's
        // digest cache for later Merkle/receipt lookups.
        let verdicts =
            pds2_par::par_map_indexed(&block.transactions, |_, tx| tx.verify_signature());
        if !verdicts.into_iter().all(|ok| ok) {
            return Err(ChainError::InvalidBlock("bad tx signature"));
        }
        Ok(())
    }

    /// Access to the contract registry (e.g. to check registered types).
    pub fn registry(&self) -> &ContractRegistry {
        &self.registry
    }

    /// Produces a light-client inclusion proof for a transaction: the
    /// block height plus a Merkle path from the transaction hash to the
    /// block header's `tx_root`. Providers use this to prove to third
    /// parties (e.g. in a §IV-A reward dispute) that their participation
    /// was recorded, holding only block headers.
    pub fn prove_inclusion(&self, tx_hash: &Digest) -> Option<InclusionProof> {
        for block in &self.blocks {
            if let Some(index) = block.transactions.iter().position(|t| &t.hash() == tx_hash) {
                // Same leaf construction as `Block::compute_tx_root`, so
                // the path verifies against the header's tx_root; digests
                // are already cached from validation.
                let leaf_hashes = pds2_par::par_map_indexed(&block.transactions, |_, t| {
                    pds2_crypto::merkle::leaf_hash(t.hash().as_bytes())
                });
                let tree = pds2_crypto::merkle::MerkleTree::from_leaf_hashes(leaf_hashes);
                return Some(InclusionProof {
                    block_height: block.header.height,
                    tx_hash: *tx_hash,
                    proof: tree.prove(index)?,
                });
            }
        }
        None
    }

    /// Applies a block produced by another node: validates it against the
    /// local head, executes its transactions and appends it.
    ///
    /// Execution is deterministic, so after a valid block the local state
    /// root must equal the header's. A [`ChainError::InvalidBlock`]
    /// `"state root mismatch"` therefore means the proposer lied about its
    /// post-state; like a real validator, the caller must halt this
    /// replica (the local state has already executed the block's
    /// transactions and is no longer canonical).
    pub fn apply_external_block(&mut self, block: &Block) -> Result<(), ChainError> {
        self.validate_external_block(block)?;
        let height = block.header.height;
        let mut receipts = Vec::with_capacity(block.transactions.len());
        for (i, tx) in block.transactions.iter().enumerate() {
            let hash = tx.hash();
            let trace = self
                .tx_traces
                .get(&hash)
                .map(|(ctx, _)| *ctx)
                .unwrap_or(self.trace_ctx);
            receipts.push(self.state.apply_transaction_traced(
                &self.registry,
                tx,
                height,
                i as u32,
                trace,
            ));
        }
        if self.state.state_root() != block.header.state_root {
            return Err(ChainError::InvalidBlock("state root mismatch"));
        }
        for receipt in receipts {
            self.events.extend(receipt.events.iter().cloned());
            self.seen.insert(receipt.tx_hash);
            self.receipts.insert(receipt.tx_hash, receipt);
        }
        // Drop any mempool copies of the included transactions, and close
        // out their pending trace records (submit-to-inclusion hops).
        let included: std::collections::HashSet<Digest> =
            block.transactions.iter().map(|t| t.hash()).collect();
        self.mempool
            .lock()
            .retain(|t| !included.contains(&t.hash()));
        for tx in &block.transactions {
            let hash = tx.hash();
            if let Some((ctx, submitted_at)) = self.tx_traces.remove(&hash) {
                pds2_obs::trace_event!(
                    "chain",
                    "tx.included",
                    pds2_obs::Stamp::Block(height),
                    ctx,
                    "tx" => digest_tag(&hash),
                    "blocks_waited" => height.saturating_sub(submitted_at),
                );
            }
        }
        self.blocks.push(block.clone());
        pds2_obs::counter!("chain.blocks_applied").inc();
        pds2_obs::trace_event!(
            "chain",
            "apply_block",
            pds2_obs::Stamp::Block(height),
            self.trace_ctx,
            "txs" => block.transactions.len(),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::tx::{Transaction, TxKind};

    fn signed_transfer(kp: &KeyPair, nonce: u64, to: Address, amount: u128) -> SignedTransaction {
        Transaction {
            from: kp.public.clone(),
            nonce,
            kind: TxKind::Transfer { to, amount },
            gas_limit: 100_000,
        }
        .sign(kp)
    }

    fn test_chain(alice: &KeyPair) -> Blockchain {
        Blockchain::single_validator(
            1000,
            &[(Address::of(&alice.public), 1_000_000)],
            ContractRegistry::new(),
        )
    }

    #[test]
    fn produce_empty_block() {
        let alice = KeyPair::from_seed(1);
        let mut chain = test_chain(&alice);
        let b = chain.produce_block();
        assert_eq!(b.header.height, 0);
        assert_eq!(b.header.parent, Digest::ZERO);
        assert!(b.transactions.is_empty());
        assert_eq!(chain.height(), 1);
    }

    #[test]
    fn submit_and_include() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let tx = signed_transfer(&alice, 0, bob, 500);
        let hash = chain.submit(tx).unwrap();
        assert_eq!(chain.mempool_len(), 1);
        let b = chain.produce_block();
        assert_eq!(b.transactions.len(), 1);
        assert_eq!(chain.mempool_len(), 0);
        let receipt = chain.receipt(&hash).unwrap();
        assert!(receipt.success);
        assert_eq!(chain.state.balance(&bob), 500);
    }

    #[test]
    fn duplicate_submission_rejected() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let tx = signed_transfer(&alice, 0, bob, 1);
        chain.submit(tx.clone()).unwrap();
        assert_eq!(chain.submit(tx), Err(ChainError::Duplicate));
    }

    #[test]
    fn invalid_signature_rejected_at_submission() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let mut tx = signed_transfer(&alice, 0, bob, 1);
        tx.tx.nonce = 1; // tamper
        assert_eq!(chain.submit(tx), Err(ChainError::InvalidSignature));
    }

    #[test]
    fn stale_nonce_rejected_at_submission() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        chain.submit(signed_transfer(&alice, 0, bob, 1)).unwrap();
        chain.produce_block();
        let stale = signed_transfer(&alice, 0, bob, 2);
        assert!(matches!(
            chain.submit(stale),
            Err(ChainError::StaleNonce {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn future_nonce_waits_for_gap_fill() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        // Submit nonce 1 before nonce 0.
        chain.submit(signed_transfer(&alice, 1, bob, 10)).unwrap();
        let b = chain.produce_block();
        assert!(b.transactions.is_empty(), "gap: nothing included");
        assert_eq!(chain.mempool_len(), 1, "future tx retained");
        chain.submit(signed_transfer(&alice, 0, bob, 5)).unwrap();
        let b = chain.produce_block();
        assert_eq!(b.transactions.len(), 2, "both included in order");
        assert_eq!(chain.state.balance(&bob), 15);
    }

    #[test]
    fn round_robin_proposers() {
        let alice = KeyPair::from_seed(1);
        let validators: Vec<KeyPair> = (0..3).map(|i| KeyPair::from_seed(2000 + i)).collect();
        let pubs: Vec<PublicKey> = validators.iter().map(|v| v.public.clone()).collect();
        let mut chain = Blockchain::new(
            validators,
            &[(Address::of(&alice.public), 1000)],
            ContractRegistry::new(),
            ChainConfig::default(),
        );
        for expected in [0usize, 1, 2, 0, 1] {
            let b = chain.produce_block();
            assert_eq!(b.header.proposer, pubs[expected]);
        }
    }

    #[test]
    fn chain_links_parents() {
        let alice = KeyPair::from_seed(1);
        let mut chain = test_chain(&alice);
        let b0 = chain.produce_block();
        let b1 = chain.produce_block();
        assert_eq!(b1.header.parent, b0.header.hash());
        assert_eq!(b1.header.timestamp, 12);
    }

    #[test]
    fn external_block_validation_rejects_tampering() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        chain.submit(signed_transfer(&alice, 0, bob, 5)).unwrap();

        // Build a *valid* candidate block on a clone of the chain.
        let mut shadow = test_chain(&alice);
        shadow.submit(signed_transfer(&alice, 0, bob, 5)).unwrap();
        let good = shadow.produce_block();
        chain.validate_external_block(&good).unwrap();

        // Tamper with the body.
        let mut bad = good.clone();
        bad.transactions.clear();
        assert_eq!(
            chain.validate_external_block(&bad),
            Err(ChainError::InvalidBlock("tx root mismatch"))
        );

        // Wrong proposer.
        let rogue = KeyPair::from_seed(666);
        let mut forged = good.clone();
        forged.header = BlockHeader::new_signed(
            &rogue,
            forged.header.height,
            forged.header.parent,
            forged.header.state_root,
            forged.header.tx_root,
            forged.header.timestamp,
        );
        assert_eq!(
            chain.validate_external_block(&forged),
            Err(ChainError::WrongProposer)
        );

        // Wrong height.
        let mut wrong_height = good.clone();
        wrong_height.header.height = 7;
        assert!(chain.validate_external_block(&wrong_height).is_err());
    }

    #[test]
    fn block_gas_limit_defers_transactions() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = Blockchain::new(
            vec![KeyPair::from_seed(1000)],
            &[(Address::of(&alice.public), 1_000_000)],
            ContractRegistry::new(),
            ChainConfig {
                block_gas_limit: 150_000, // fits one 100k-gas tx only
                ..Default::default()
            },
        );
        chain.submit(signed_transfer(&alice, 0, bob, 1)).unwrap();
        chain.submit(signed_transfer(&alice, 1, bob, 1)).unwrap();
        let b = chain.produce_block();
        assert_eq!(b.transactions.len(), 1);
        assert_eq!(chain.mempool_len(), 1);
        let b = chain.produce_block();
        assert_eq!(b.transactions.len(), 1);
    }

    #[test]
    fn produce_until_empty_drains_pool() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        for nonce in 0..5 {
            chain
                .submit(signed_transfer(&alice, nonce, bob, 1))
                .unwrap();
        }
        let produced = chain.produce_until_empty(100);
        assert!(produced >= 1);
        assert_eq!(chain.mempool_len(), 0);
        assert_eq!(chain.state.balance(&bob), 5);
    }

    #[test]
    fn events_are_indexed() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        chain.submit(signed_transfer(&alice, 0, bob, 5)).unwrap();
        chain.produce_block();
        assert_eq!(chain.events_by_topic("native.").len(), 1);
        assert!(chain.events_by_topic("erc20.").is_empty());
    }

    #[test]
    fn inclusion_proofs_verify_against_headers() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let mut hashes = Vec::new();
        for nonce in 0..5 {
            hashes.push(
                chain
                    .submit(signed_transfer(&alice, nonce, bob, 1))
                    .unwrap(),
            );
        }
        chain.produce_block();
        let header = &chain.block(0).unwrap().header.clone();
        for h in &hashes {
            let proof = chain.prove_inclusion(h).expect("included");
            assert!(proof.verify(header), "proof for {h}");
            assert_eq!(proof.block_height, 0);
        }
        // Unknown tx: no proof.
        assert!(chain
            .prove_inclusion(&pds2_crypto::sha256(b"ghost"))
            .is_none());
        // A proof does not verify against the wrong header.
        chain.submit(signed_transfer(&alice, 5, bob, 1)).unwrap();
        chain.produce_block();
        let other_header = &chain.block(1).unwrap().header;
        let proof = chain.prove_inclusion(&hashes[0]).unwrap();
        assert!(!proof.verify(other_header));
    }

    #[test]
    fn inclusion_proof_rejects_forged_tx_hash() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        let h = chain.submit(signed_transfer(&alice, 0, bob, 1)).unwrap();
        chain.produce_block();
        let header = chain.block(0).unwrap().header.clone();
        let mut proof = chain.prove_inclusion(&h).unwrap();
        proof.tx_hash = pds2_crypto::sha256(b"forged");
        assert!(!proof.verify(&header));
    }

    #[test]
    fn native_supply_is_conserved() {
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let mut chain = test_chain(&alice);
        for nonce in 0..10 {
            chain
                .submit(signed_transfer(&alice, nonce, bob, 100))
                .unwrap();
        }
        chain.produce_until_empty(10);
        assert_eq!(chain.state.total_native_supply(), 1_000_000);
    }
}
