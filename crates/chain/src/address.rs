//! Chain addresses and account primitives.
//!
//! An address is the SHA-256 digest of a Schnorr public key, mirroring
//! Ethereum's keccak(pubkey) derivation. Contract instances get synthetic
//! addresses derived from (deployer, nonce).

use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::schnorr::PublicKey;
use pds2_crypto::sha256::{sha256, Digest, Sha256};

/// A chain address (hash of a public key, or synthetic for contracts).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Address(pub Digest);

impl Address {
    /// Derives the address of an externally-owned account.
    pub fn of(pk: &PublicKey) -> Address {
        Address(sha256(&pk.to_bytes()))
    }

    /// Derives a contract address from its deployer and the deployer's
    /// transaction nonce.
    pub fn contract(deployer: &Address, nonce: u64) -> Address {
        let mut h = Sha256::new();
        h.update(b"pds2-contract-address");
        h.update(deployer.0.as_bytes());
        h.update(&nonce.to_le_bytes());
        Address(h.finalize())
    }

    /// Short display form.
    pub fn short(&self) -> String {
        format!("0x{}", self.0.short())
    }
}

impl std::fmt::Debug for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Address({})", self.short())
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.short())
    }
}

impl Encode for Address {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_digest(&self.0);
    }
}

impl Decode for Address {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Address(dec.get_digest()?))
    }
}

/// The balance/nonce state of one account.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Account {
    /// Native-token balance (smallest unit).
    pub balance: u128,
    /// Number of transactions sent from this account.
    pub nonce: u64,
}

impl Encode for Account {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u128(self.balance);
        enc.put_u64(self.nonce);
    }
}

impl Decode for Account {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Account {
            balance: dec.get_u128()?,
            nonce: dec.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_crypto::KeyPair;

    #[test]
    fn address_is_deterministic() {
        let kp = KeyPair::from_seed(1);
        assert_eq!(Address::of(&kp.public), Address::of(&kp.public));
    }

    #[test]
    fn distinct_keys_distinct_addresses() {
        let a = Address::of(&KeyPair::from_seed(1).public);
        let b = Address::of(&KeyPair::from_seed(2).public);
        assert_ne!(a, b);
    }

    #[test]
    fn contract_addresses_depend_on_deployer_and_nonce() {
        let deployer = Address::of(&KeyPair::from_seed(1).public);
        let other = Address::of(&KeyPair::from_seed(2).public);
        assert_ne!(
            Address::contract(&deployer, 0),
            Address::contract(&deployer, 1)
        );
        assert_ne!(
            Address::contract(&deployer, 0),
            Address::contract(&other, 0)
        );
    }

    #[test]
    fn codec_roundtrip() {
        let a = Address::of(&KeyPair::from_seed(3).public);
        assert_eq!(Address::from_bytes(&a.to_bytes()).unwrap(), a);
        let acct = Account {
            balance: 12345,
            nonce: 7,
        };
        assert_eq!(Account::from_bytes(&acct.to_bytes()).unwrap(), acct);
    }
}
