//! Copy-on-write sparse Merkle tree over 256-bit keys.
//!
//! The tree authenticates the key → value-digest map that
//! [`crate::state::WorldState`] flattens its accounts, token ledgers and
//! contracts into (see [`crate::backend`]). Structure is *canonical*: it
//! is a pure function of the key set, so any two nodes holding the same
//! logical state produce bit-identical roots regardless of insertion
//! order, thread count or which backend maintained the tree.
//!
//! Shape. Keys are traversed MSB-first. A subtree holding no keys is
//! empty (hash [`Digest::ZERO`]); a subtree holding exactly one key is a
//! leaf wherever that happens, so single-key paths collapse; a subtree
//! holding two or more keys is an internal node splitting on the next
//! bit. With `sha256` keys the expected depth is ~log₂(n) and the node
//! count is O(n).
//!
//! Hashing is domain-separated from the transaction Merkle tree
//! ([`pds2_crypto::merkle`] uses prefixes `0x00`/`0x01`):
//!
//! - leaf: `sha256(0x02 ‖ key ‖ value_digest)`
//! - internal: `sha256(0x03 ‖ left_hash ‖ right_hash)` with
//!   `Digest::ZERO` standing in for an empty child.
//!
//! Internal nodes exist at every consecutive depth along a multi-key
//! path (no skip compression), so a proof is simply the sibling hash per
//! level and the verifier re-derives each direction from the key's bits —
//! there is no prover-controlled index a forged non-inclusion proof
//! could lie about.
//!
//! Nodes are reference-counted ([`Arc`]); an update clones the touched
//! path and shares everything else, so a commit costs
//! O(touched keys · depth) hashes and old roots stay valid snapshots.

use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::sha256::{Digest, Sha256};
use std::sync::Arc;

/// Domain prefix for leaf hashes.
const LEAF_PREFIX: u8 = 0x02;
/// Domain prefix for internal-node hashes.
const NODE_PREFIX: u8 = 0x03;

/// Proofs cannot be deeper than the key width (256-bit sha256 keys).
pub const MAX_DEPTH: usize = 256;

/// Updates per commit above which node hashing fans out across the
/// `pds2-par` worker pool.
const PAR_COMMIT_MIN: usize = 1024;

/// Depth of the parallel frontier: the tree is split into
/// `2^PAR_DEPTH` independent subtrees, one work item each.
const PAR_DEPTH: usize = 4;

/// Bit `d` (MSB-first across the digest bytes) of a key.
#[inline]
fn bit(key: &Digest, d: usize) -> bool {
    (key.as_bytes()[d >> 3] >> (7 - (d & 7))) & 1 == 1
}

/// `sha256(0x02 ‖ key ‖ value_digest)`.
pub fn leaf_hash(key: &Digest, value: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(key.as_bytes());
    h.update(value.as_bytes());
    h.finalize()
}

/// `sha256(0x03 ‖ left ‖ right)`.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

enum Node {
    Leaf {
        key: Digest,
        value: Digest,
        hash: Digest,
    },
    Internal {
        left: Option<Arc<Node>>,
        right: Option<Arc<Node>>,
        hash: Digest,
    },
}

impl Node {
    fn hash(&self) -> Digest {
        match self {
            Node::Leaf { hash, .. } | Node::Internal { hash, .. } => *hash,
        }
    }
}

fn opt_hash(node: &Option<Arc<Node>>) -> Digest {
    node.as_ref().map_or(Digest::ZERO, |n| n.hash())
}

fn make_leaf(key: Digest, value: Digest, hashed: &mut u64) -> Arc<Node> {
    *hashed += 1;
    Arc::new(Node::Leaf {
        key,
        value,
        hash: leaf_hash(&key, &value),
    })
}

/// Canonical parent of two child subtrees: empty + empty is empty, a
/// lone leaf floats up (a one-key subtree *is* a leaf), anything else
/// is an internal node.
fn combine(
    left: Option<Arc<Node>>,
    right: Option<Arc<Node>>,
    hashed: &mut u64,
) -> Option<Arc<Node>> {
    match (&left, &right) {
        (None, None) => None,
        (Some(n), None) if matches!(**n, Node::Leaf { .. }) => left,
        (None, Some(n)) if matches!(**n, Node::Leaf { .. }) => right,
        _ => {
            *hashed += 1;
            let hash = node_hash(&opt_hash(&left), &opt_hash(&right));
            Some(Arc::new(Node::Internal { left, right, hash }))
        }
    }
}

/// Builds a canonical subtree from sorted, distinct `(key, value)` pairs
/// whose keys all share bits `0..depth`.
fn build_leaves(depth: usize, items: &[(Digest, Digest)], hashed: &mut u64) -> Option<Arc<Node>> {
    match items {
        [] => None,
        [(k, v)] => Some(make_leaf(*k, *v, hashed)),
        _ => {
            debug_assert!(depth < MAX_DEPTH, "distinct sha256 keys must diverge");
            let split = items.partition_point(|(k, _)| !bit(k, depth));
            let left = build_leaves(depth + 1, &items[..split], hashed);
            let right = build_leaves(depth + 1, &items[split..], hashed);
            combine(left, right, hashed)
        }
    }
}

/// Applies sorted, distinct updates (`None` = delete) to a subtree.
fn apply_updates(
    node: Option<&Arc<Node>>,
    depth: usize,
    ups: &[(Digest, Option<Digest>)],
    hashed: &mut u64,
) -> Option<Arc<Node>> {
    if ups.is_empty() {
        return node.cloned();
    }
    let inserts = |ups: &[(Digest, Option<Digest>)]| -> Vec<(Digest, Digest)> {
        ups.iter().filter_map(|(k, v)| v.map(|v| (*k, v))).collect()
    };
    match node.map(|n| &**n) {
        None => build_leaves(depth, &inserts(ups), hashed),
        Some(Node::Leaf { key, value, .. }) => {
            // Merge the existing leaf into the update set unless an
            // update overrides (or deletes) it.
            let mut items = inserts(ups);
            if !ups.iter().any(|(k, _)| k == key) {
                let pos = items.partition_point(|(k, _)| k < key);
                items.insert(pos, (*key, *value));
            }
            build_leaves(depth, &items, hashed)
        }
        Some(Node::Internal { left, right, .. }) => {
            debug_assert!(depth < MAX_DEPTH, "distinct sha256 keys must diverge");
            let split = ups.partition_point(|(k, _)| !bit(k, depth));
            let new_left = apply_updates(left.as_ref(), depth + 1, &ups[..split], hashed);
            let new_right = apply_updates(right.as_ref(), depth + 1, &ups[split..], hashed);
            let unchanged = |a: &Option<Arc<Node>>, b: &Option<Arc<Node>>| match (a, b) {
                (Some(x), Some(y)) => Arc::ptr_eq(x, y),
                (None, None) => true,
                _ => false,
            };
            if unchanged(&new_left, left) && unchanged(&new_right, right) {
                return node.cloned();
            }
            combine(new_left, new_right, hashed)
        }
    }
}

/// Collects the `2^(PAR_DEPTH - depth)` subtree roots at the parallel
/// frontier, placing shallow leaves into the slot their key selects.
fn split_frontier(node: Option<Arc<Node>>, depth: usize, out: &mut Vec<Option<Arc<Node>>>) {
    let slots = 1 << (PAR_DEPTH - depth);
    match node.as_deref() {
        _ if depth == PAR_DEPTH => out.push(node),
        None => out.extend(std::iter::repeat_with(|| None).take(slots)),
        Some(Node::Leaf { key, .. }) => {
            let mut idx = 0;
            for d in depth..PAR_DEPTH {
                idx = (idx << 1) | bit(key, d) as usize;
            }
            out.extend((0..slots).map(|i| if i == idx { node.clone() } else { None }));
        }
        Some(Node::Internal { left, right, .. }) => {
            split_frontier(left.clone(), depth + 1, out);
            split_frontier(right.clone(), depth + 1, out);
        }
    }
}

/// Rebuilds the tree top from the updated frontier slots.
fn join_frontier(
    slots: &mut std::vec::IntoIter<Option<Arc<Node>>>,
    depth: usize,
    hashed: &mut u64,
) -> Option<Arc<Node>> {
    if depth == PAR_DEPTH {
        return slots.next().expect("frontier slot count is exact");
    }
    let left = join_frontier(slots, depth + 1, hashed);
    let right = join_frontier(slots, depth + 1, hashed);
    combine(left, right, hashed)
}

/// A copy-on-write sparse Merkle tree (see the module docs for the
/// canonical shape and hashing rules).
#[derive(Clone, Default)]
pub struct SmtTree {
    root: Option<Arc<Node>>,
    leaves: usize,
}

impl SmtTree {
    /// An empty tree (root [`Digest::ZERO`]).
    pub fn new() -> SmtTree {
        SmtTree::default()
    }

    /// Builds a tree from an arbitrary-order list of distinct leaves.
    /// Returns the tree and the number of node hashes computed.
    pub fn from_leaves(mut leaves: Vec<(Digest, Digest)>) -> (SmtTree, u64) {
        leaves.sort_unstable_by_key(|a| a.0);
        leaves.dedup_by(|a, b| a.0 == b.0);
        let updates: Vec<(Digest, Option<Digest>)> =
            leaves.into_iter().map(|(k, v)| (k, Some(v))).collect();
        let mut tree = SmtTree::new();
        let hashed = tree.commit(updates);
        (tree, hashed)
    }

    /// Root hash ([`Digest::ZERO`] when empty).
    pub fn root_hash(&self) -> Digest {
        opt_hash(&self.root)
    }

    /// Number of leaves present.
    pub fn len(&self) -> usize {
        self.leaves
    }

    /// Whether the tree holds no leaves.
    pub fn is_empty(&self) -> bool {
        self.leaves == 0
    }

    /// Value digest stored under `key`, if present.
    pub fn get(&self, key: &Digest) -> Option<Digest> {
        let mut cur = self.root.as_ref();
        let mut depth = 0;
        while let Some(node) = cur {
            match &**node {
                Node::Leaf { key: k, value, .. } => {
                    return (k == key).then_some(*value);
                }
                Node::Internal { left, right, .. } => {
                    cur = if bit(key, depth) {
                        right.as_ref()
                    } else {
                        left.as_ref()
                    };
                    depth += 1;
                }
            }
        }
        None
    }

    /// Applies a batch of updates (`Some` upsert, `None` delete; later
    /// entries for the same key win) and returns the number of node
    /// hashes computed. Large batches fan out over `pds2-par`; the
    /// result is bit-identical at every thread count because each
    /// frontier subtree is an independent pure function of its inputs.
    pub fn commit(&mut self, mut updates: Vec<(Digest, Option<Digest>)>) -> u64 {
        if updates.is_empty() {
            return 0;
        }
        // Stable sort + keep-last dedup: the final write per key wins.
        updates.sort_by_key(|a| a.0);
        updates.reverse();
        updates.dedup_by(|a, b| a.0 == b.0);
        updates.reverse();
        // Net leaf-count delta, from what each key held before.
        for (k, v) in &updates {
            match (self.get(k).is_some(), v.is_some()) {
                (false, true) => self.leaves += 1,
                (true, false) => self.leaves -= 1,
                _ => {}
            }
        }
        let mut hashed = 0u64;
        // Gate on batch size ONLY (never on thread count): the frontier
        // split changes which top-level nodes get rebuilt, so tying it
        // to `current_threads()` would make the hash count — an obs
        // counter — vary across `PDS2_THREADS`.
        if updates.len() >= PAR_COMMIT_MIN {
            let mut slots = Vec::with_capacity(1 << PAR_DEPTH);
            split_frontier(self.root.clone(), 0, &mut slots);
            // Partition the sorted updates into the same 2^PAR_DEPTH
            // key-prefix groups the frontier slots cover.
            let mut groups: Vec<&[(Digest, Option<Digest>)]> = Vec::with_capacity(slots.len());
            let mut rest: &[(Digest, Option<Digest>)] = &updates;
            for i in 0..slots.len() {
                let end = if i + 1 == slots.len() {
                    rest.len()
                } else {
                    rest.partition_point(|(k, _)| {
                        let mut idx = 0;
                        for d in 0..PAR_DEPTH {
                            idx = (idx << 1) | bit(k, d) as usize;
                        }
                        idx <= i
                    })
                };
                let (group, tail) = rest.split_at(end);
                groups.push(group);
                rest = tail;
            }
            type Slot<'a> = (Option<Arc<Node>>, &'a [(Digest, Option<Digest>)]);
            let work: Vec<Slot<'_>> = slots.into_iter().zip(groups).collect();
            let results = pds2_par::par_map_indexed(&work, |_, (node, ups)| {
                let mut h = 0u64;
                let sub = apply_updates(node.as_ref(), PAR_DEPTH, ups, &mut h);
                (sub, h)
            });
            let mut new_slots = Vec::with_capacity(results.len());
            for (sub, h) in results {
                new_slots.push(sub);
                hashed += h;
            }
            self.root = join_frontier(&mut new_slots.into_iter(), 0, &mut hashed);
        } else {
            self.root = apply_updates(self.root.as_ref(), 0, &updates, &mut hashed);
        }
        hashed
    }

    /// Produces a proof for `key`: the sibling hash per level down the
    /// key's path plus the leaf the path terminates in (if any). The
    /// same proof serves inclusion (the leaf is `key`) and
    /// non-inclusion (empty path end, or a different leaf occupying
    /// `key`'s path).
    pub fn prove(&self, key: &Digest) -> SmtProof {
        let mut siblings = Vec::new();
        let mut cur = self.root.as_ref();
        let mut depth = 0;
        loop {
            match cur.map(|n| &**n) {
                None => {
                    return SmtProof {
                        siblings,
                        found: None,
                    }
                }
                Some(Node::Leaf { key: k, value, .. }) => {
                    return SmtProof {
                        siblings,
                        found: Some((*k, *value)),
                    }
                }
                Some(Node::Internal { left, right, .. }) => {
                    if bit(key, depth) {
                        siblings.push(opt_hash(left));
                        cur = right.as_ref();
                    } else {
                        siblings.push(opt_hash(right));
                        cur = left.as_ref();
                    }
                    depth += 1;
                }
            }
        }
    }
}

/// A Merkle (non-)inclusion proof for one key (see [`SmtTree::prove`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmtProof {
    /// Sibling hash per level, root-first; [`Digest::ZERO`] where the
    /// sibling subtree is empty.
    pub siblings: Vec<Digest>,
    /// The leaf found at the end of the key's path: `Some((key, value
    /// digest))`, or `None` when the path ends in an empty subtree.
    pub found: Option<(Digest, Digest)>,
}

impl SmtProof {
    /// Folds `acc` up the path using `key`'s bits for direction.
    fn fold(&self, key: &Digest, acc: Digest) -> Digest {
        let mut acc = acc;
        for (d, sib) in self.siblings.iter().enumerate().rev() {
            acc = if bit(key, d) {
                node_hash(sib, &acc)
            } else {
                node_hash(&acc, sib)
            };
        }
        acc
    }

    /// Verifies that `key` maps to `value_digest` under `root`.
    pub fn verify_inclusion(&self, root: &Digest, key: &Digest, value_digest: &Digest) -> bool {
        self.found == Some((*key, *value_digest))
            && self.fold(key, leaf_hash(key, value_digest)) == *root
    }

    /// Verifies that `key` is absent under `root`: the key's path ends
    /// empty, or a *different* leaf occupies it (the canonical tree
    /// stores at most one leaf per path prefix, so a mismatched
    /// witness leaf rules the key out).
    pub fn verify_absence(&self, root: &Digest, key: &Digest) -> bool {
        match &self.found {
            None => self.fold(key, Digest::ZERO) == *root,
            Some((k, v)) => k != key && self.fold(key, leaf_hash(k, v)) == *root,
        }
    }
}

/// Verifies a proof against a trusted root: `value = Some(bytes)`
/// checks inclusion of `sha256(bytes)`, `None` checks absence. This is
/// the light-client entry point — no tree, no state, just the root
/// from a validated block header.
pub fn verify_proof(root: &Digest, key: &Digest, value: Option<&[u8]>, proof: &SmtProof) -> bool {
    match value {
        Some(bytes) => proof.verify_inclusion(root, key, &pds2_crypto::sha256(bytes)),
        None => proof.verify_absence(root, key),
    }
}

impl Encode for SmtProof {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.siblings.len() as u64);
        for s in &self.siblings {
            enc.put_digest(s);
        }
        match &self.found {
            None => enc.put_u8(0),
            Some((k, v)) => {
                enc.put_u8(1);
                enc.put_digest(k);
                enc.put_digest(v);
            }
        }
    }
}

impl Decode for SmtProof {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = dec.get_u64()? as usize;
        if len > MAX_DEPTH {
            return Err(DecodeError::Invalid("proof deeper than key width"));
        }
        let mut siblings = Vec::with_capacity(len);
        for _ in 0..len {
            siblings.push(dec.get_digest()?);
        }
        let found = match dec.get_u8()? {
            0 => None,
            1 => Some((dec.get_digest()?, dec.get_digest()?)),
            t => return Err(DecodeError::InvalidTag(t)),
        };
        Ok(SmtProof { siblings, found })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pds2_crypto::sha256;
    use std::collections::BTreeMap;

    fn key(i: u64) -> Digest {
        sha256(&i.to_le_bytes())
    }

    fn val(i: u64) -> Digest {
        sha256(format!("value-{i}").as_bytes())
    }

    /// Reference root: rebuild from scratch from a plain map.
    fn reference_root(map: &BTreeMap<Digest, Digest>) -> Digest {
        let (tree, _) = SmtTree::from_leaves(map.iter().map(|(k, v)| (*k, *v)).collect());
        tree.root_hash()
    }

    #[test]
    fn empty_tree_root_is_zero() {
        assert_eq!(SmtTree::new().root_hash(), Digest::ZERO);
    }

    #[test]
    fn incremental_commits_match_scratch_rebuild() {
        let mut tree = SmtTree::new();
        let mut map = BTreeMap::new();
        // Interleave inserts, overwrites and deletes across commits.
        for round in 0..10u64 {
            let mut ups = Vec::new();
            for i in 0..20u64 {
                let k = key(round * 7 + i);
                if (round + i) % 5 == 0 && map.contains_key(&k) {
                    map.remove(&k);
                    ups.push((k, None));
                } else {
                    map.insert(k, val(round * 100 + i));
                    ups.push((k, Some(val(round * 100 + i))));
                }
            }
            tree.commit(ups);
            assert_eq!(tree.root_hash(), reference_root(&map), "round {round}");
            assert_eq!(tree.len(), map.len());
        }
    }

    #[test]
    fn insertion_order_is_irrelevant() {
        let leaves: Vec<(Digest, Digest)> = (0..50).map(|i| (key(i), val(i))).collect();
        let (forward, _) = SmtTree::from_leaves(leaves.clone());
        let mut reversed = SmtTree::new();
        for (k, v) in leaves.iter().rev() {
            reversed.commit(vec![(*k, Some(*v))]);
        }
        assert_eq!(forward.root_hash(), reversed.root_hash());
    }

    #[test]
    fn delete_restores_prior_root() {
        let (base, _) = SmtTree::from_leaves((0..30).map(|i| (key(i), val(i))).collect());
        let mut tree = base.clone();
        tree.commit(vec![(key(99), Some(val(99)))]);
        assert_ne!(tree.root_hash(), base.root_hash());
        tree.commit(vec![(key(99), None)]);
        assert_eq!(tree.root_hash(), base.root_hash());
        assert_eq!(tree.len(), 30);
        // Deleting an absent key is a no-op.
        tree.commit(vec![(key(777), None)]);
        assert_eq!(tree.root_hash(), base.root_hash());
    }

    #[test]
    fn last_write_wins_within_a_batch() {
        let mut a = SmtTree::new();
        a.commit(vec![
            (key(1), Some(val(1))),
            (key(1), Some(val(2))),
            (key(2), Some(val(3))),
            (key(2), None),
        ]);
        let mut b = SmtTree::new();
        b.commit(vec![(key(1), Some(val(2)))]);
        assert_eq!(a.root_hash(), b.root_hash());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn parallel_commit_is_thread_invariant() {
        let leaves: Vec<(Digest, Digest)> = (0..3000).map(|i| (key(i), val(i))).collect();
        let roots: Vec<Digest> = [1usize, 4, 8]
            .iter()
            .map(|&threads| {
                pds2_par::with_threads(threads, || {
                    let (tree, _) = SmtTree::from_leaves(leaves.clone());
                    tree.root_hash()
                })
            })
            .collect();
        assert_eq!(roots[0], roots[1]);
        assert_eq!(roots[0], roots[2]);
        // And a large incremental batch over an existing tree.
        let roots2: Vec<Digest> = [1usize, 4, 8]
            .iter()
            .map(|&threads| {
                pds2_par::with_threads(threads, || {
                    let (mut tree, _) = SmtTree::from_leaves(leaves.clone());
                    tree.commit((3000..6000).map(|i| (key(i), Some(val(i)))).collect());
                    tree.root_hash()
                })
            })
            .collect();
        assert_eq!(roots2[0], roots2[1]);
        assert_eq!(roots2[0], roots2[2]);
    }

    #[test]
    fn get_reads_back_committed_values() {
        let (tree, _) = SmtTree::from_leaves((0..40).map(|i| (key(i), val(i))).collect());
        for i in 0..40 {
            assert_eq!(tree.get(&key(i)), Some(val(i)));
        }
        assert_eq!(tree.get(&key(41)), None);
    }

    #[test]
    fn inclusion_proofs_verify_and_bind() {
        let (tree, _) = SmtTree::from_leaves((0..64).map(|i| (key(i), val(i))).collect());
        let root = tree.root_hash();
        for i in [0u64, 7, 31, 63] {
            let proof = tree.prove(&key(i));
            assert!(proof.verify_inclusion(&root, &key(i), &val(i)));
            // Wrong value, wrong key, wrong root: all rejected.
            assert!(!proof.verify_inclusion(&root, &key(i), &val(i + 1)));
            assert!(!proof.verify_inclusion(&root, &key(i + 1), &val(i)));
            assert!(!proof.verify_inclusion(&Digest::ZERO, &key(i), &val(i)));
            // An inclusion proof is not an absence proof.
            assert!(!proof.verify_absence(&root, &key(i)));
        }
    }

    #[test]
    fn absence_proofs_verify_for_missing_keys() {
        let (tree, _) = SmtTree::from_leaves((0..64).map(|i| (key(i), val(i))).collect());
        let root = tree.root_hash();
        for i in 64..96u64 {
            let proof = tree.prove(&key(i));
            assert!(proof.verify_absence(&root, &key(i)), "key {i}");
            assert!(!proof.verify_inclusion(&root, &key(i), &val(i)));
        }
        // Empty tree: everything is absent.
        let empty = SmtTree::new();
        let proof = empty.prove(&key(1));
        assert!(proof.verify_absence(&empty.root_hash(), &key(1)));
    }

    #[test]
    fn verify_proof_entry_point_hashes_value_bytes() {
        let mut tree = SmtTree::new();
        let k = key(5);
        let bytes = b"account-encoding".to_vec();
        tree.commit(vec![(k, Some(sha256(&bytes)))]);
        let root = tree.root_hash();
        let proof = tree.prove(&k);
        assert!(verify_proof(&root, &k, Some(&bytes), &proof));
        assert!(!verify_proof(&root, &k, Some(b"other"), &proof));
        assert!(!verify_proof(&root, &k, None, &proof));
        let missing = key(6);
        let proof = tree.prove(&missing);
        assert!(verify_proof(&root, &missing, None, &proof));
    }

    #[test]
    fn proof_codec_roundtrip() {
        let (tree, _) = SmtTree::from_leaves((0..64).map(|i| (key(i), val(i))).collect());
        for i in [3u64, 80] {
            let proof = tree.prove(&key(i));
            let back = SmtProof::from_bytes(&proof.to_bytes()).unwrap();
            assert_eq!(back, proof);
        }
        // Absurd depth prefix is rejected before allocation.
        let mut enc = Encoder::new();
        enc.put_u64(100_000);
        assert!(SmtProof::from_bytes(&enc.finish()).is_err());
    }
}
