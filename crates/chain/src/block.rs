//! Blocks and headers.

use crate::tx::SignedTransaction;
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::merkle::{self, MerkleTree};
use pds2_crypto::schnorr::{KeyPair, PublicKey, Signature};
use pds2_crypto::sha256::Digest;

/// A block header, signed by the proposing validator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockHeader {
    /// Height (genesis = 0).
    pub height: u64,
    /// Hash of the parent header (`Digest::ZERO` for genesis).
    pub parent: Digest,
    /// State root *after* applying this block.
    pub state_root: Digest,
    /// Merkle root over the included transactions.
    pub tx_root: Digest,
    /// Logical timestamp (height × block interval).
    pub timestamp: u64,
    /// Base fee per gas for this block (EIP-1559 style; every included
    /// transaction burns this much per unit of gas). Consensus-critical:
    /// validators recompute it from the parent and reject mismatches.
    pub base_fee: u64,
    /// Total gas consumed by this block's transactions (drives the next
    /// block's base fee).
    pub gas_used: u64,
    /// Proposing validator.
    pub proposer: PublicKey,
    /// Proposer's signature over the header body.
    pub signature: Signature,
}

impl BlockHeader {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn signing_bytes(
        height: u64,
        parent: &Digest,
        state_root: &Digest,
        tx_root: &Digest,
        timestamp: u64,
        base_fee: u64,
        gas_used: u64,
        proposer: &PublicKey,
    ) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_raw(b"pds2-block-v2");
        enc.put_u64(height);
        enc.put_digest(parent);
        enc.put_digest(state_root);
        enc.put_digest(tx_root);
        enc.put_u64(timestamp);
        enc.put_u64(base_fee);
        enc.put_u64(gas_used);
        proposer.encode(&mut enc);
        enc.finish()
    }

    /// Builds and signs a header.
    #[allow(clippy::too_many_arguments)]
    pub fn new_signed(
        keys: &KeyPair,
        height: u64,
        parent: Digest,
        state_root: Digest,
        tx_root: Digest,
        timestamp: u64,
        base_fee: u64,
        gas_used: u64,
    ) -> BlockHeader {
        let payload = Self::signing_bytes(
            height,
            &parent,
            &state_root,
            &tx_root,
            timestamp,
            base_fee,
            gas_used,
            &keys.public,
        );
        BlockHeader {
            height,
            parent,
            state_root,
            tx_root,
            timestamp,
            base_fee,
            gas_used,
            proposer: keys.public.clone(),
            signature: keys.sign(&payload),
        }
    }

    /// Verifies the proposer signature.
    ///
    /// Routed through [`crate::sigcache`]: during sync replay and fork
    /// choice the same headers are re-validated repeatedly, and an
    /// already-accepted header costs one hash instead of an
    /// exponentiation.
    pub fn verify_signature(&self) -> bool {
        let payload = Self::signing_bytes(
            self.height,
            &self.parent,
            &self.state_root,
            &self.tx_root,
            self.timestamp,
            self.base_fee,
            self.gas_used,
            &self.proposer,
        );
        crate::sigcache::verify_cached(&payload, &self.proposer, &self.signature)
    }

    /// Verifies the header signature against an explicit key instead of
    /// the embedded proposer — threshold mode checks the committee's
    /// group key while the header keeps naming its round-robin proposer
    /// (which still drives the coinbase and `WrongProposer` checks).
    pub fn verify_signature_with(&self, key: &PublicKey) -> bool {
        let payload = Self::signing_bytes(
            self.height,
            &self.parent,
            &self.state_root,
            &self.tx_root,
            self.timestamp,
            self.base_fee,
            self.gas_used,
            &self.proposer,
        );
        crate::sigcache::verify_cached(&payload, key, &self.signature)
    }

    /// The header hash (block identifier).
    pub fn hash(&self) -> Digest {
        self.content_hash()
    }
}

impl Encode for BlockHeader {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.height);
        enc.put_digest(&self.parent);
        enc.put_digest(&self.state_root);
        enc.put_digest(&self.tx_root);
        enc.put_u64(self.timestamp);
        enc.put_u64(self.base_fee);
        enc.put_u64(self.gas_used);
        self.proposer.encode(enc);
        self.signature.encode(enc);
    }
}

impl Decode for BlockHeader {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            height: dec.get_u64()?,
            parent: dec.get_digest()?,
            state_root: dec.get_digest()?,
            tx_root: dec.get_digest()?,
            timestamp: dec.get_u64()?,
            base_fee: dec.get_u64()?,
            gas_used: dec.get_u64()?,
            proposer: PublicKey::decode(dec)?,
            signature: Signature::decode(dec)?,
        })
    }
}

/// A full block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Signed header.
    pub header: BlockHeader,
    /// Included transactions, in execution order.
    pub transactions: Vec<SignedTransaction>,
}

impl Block {
    /// Computes the Merkle root over a transaction list.
    ///
    /// Leaves are the domain-separated hashes of the (cached) transaction
    /// digests, computed in parallel in index order — the same tree
    /// `MerkleTree::from_leaves` would build over the digest bytes.
    pub fn compute_tx_root(txs: &[SignedTransaction]) -> Digest {
        let leaf_hashes =
            pds2_par::par_map_indexed(txs, |_, t| merkle::leaf_hash(t.hash().as_bytes()));
        MerkleTree::from_leaf_hashes(leaf_hashes).root()
    }

    /// Checks that the header's tx root matches the body.
    pub fn tx_root_matches(&self) -> bool {
        Self::compute_tx_root(&self.transactions) == self.header.tx_root
    }
}

/// Canonical digest over a block's receipts (outcome, gas and price per
/// transaction). Stored in each persisted block frame so crash recovery
/// can verify that replaying the log reproduced the pre-crash execution
/// outcomes, not just the state root.
pub fn receipts_digest<'a>(
    receipts: impl IntoIterator<Item = &'a crate::state::TxReceipt>,
) -> Digest {
    let mut enc = Encoder::new();
    for r in receipts {
        enc.put_digest(&r.tx_hash);
        enc.put_u8(r.success as u8);
        enc.put_u64(r.gas_used);
        enc.put_u64(r.effective_gas_price);
    }
    pds2_crypto::sha256(&enc.finish())
}

impl Encode for Block {
    fn encode(&self, enc: &mut Encoder) {
        self.header.encode(enc);
        enc.put_seq(&self.transactions);
    }
}

impl Decode for Block {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(Block {
            header: BlockHeader::decode(dec)?,
            transactions: dec.get_seq()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::tx::{Transaction, TxKind};

    fn sample_block(n_txs: usize) -> Block {
        let validator = KeyPair::from_seed(10);
        let sender = KeyPair::from_seed(1);
        let txs: Vec<SignedTransaction> = (0..n_txs as u64)
            .map(|nonce| {
                Transaction {
                    from: sender.public.clone(),
                    nonce,
                    kind: TxKind::Transfer {
                        to: Address::of(&KeyPair::from_seed(2).public),
                        amount: 1,
                    },
                    gas_limit: 30_000,
                    max_fee_per_gas: 0,
                    priority_fee_per_gas: 0,
                }
                .sign(&sender)
            })
            .collect();
        let tx_root = Block::compute_tx_root(&txs);
        let header = BlockHeader::new_signed(
            &validator,
            1,
            Digest::ZERO,
            pds2_crypto::sha256(b"state"),
            tx_root,
            10,
            3,
            21_000,
        );
        Block {
            header,
            transactions: txs,
        }
    }

    #[test]
    fn header_signature_verifies() {
        let b = sample_block(3);
        assert!(b.header.verify_signature());
        assert!(b.tx_root_matches());
    }

    #[test]
    fn tampered_header_fails() {
        let mut b = sample_block(1);
        b.header.height = 99;
        assert!(!b.header.verify_signature());
    }

    #[test]
    fn tampered_fee_fields_fail() {
        // base_fee and gas_used are consensus fields: both are covered by
        // the proposer signature.
        let mut b = sample_block(1);
        b.header.base_fee += 1;
        assert!(!b.header.verify_signature());
        let mut b = sample_block(1);
        b.header.gas_used ^= 1;
        assert!(!b.header.verify_signature());
    }

    #[test]
    fn tampered_body_breaks_tx_root() {
        let mut b = sample_block(3);
        b.transactions.pop();
        assert!(!b.tx_root_matches());
        assert!(b.header.verify_signature(), "header itself untouched");
    }

    #[test]
    fn empty_block_root_is_zero_sentinel() {
        assert_eq!(Block::compute_tx_root(&[]), Digest::ZERO);
    }

    #[test]
    fn header_codec_roundtrip() {
        let b = sample_block(2);
        let bytes = b.header.to_bytes();
        let back = BlockHeader::from_bytes(&bytes).unwrap();
        assert_eq!(back, b.header);
        assert!(back.verify_signature());
    }

    #[test]
    fn block_codec_roundtrip() {
        let b = sample_block(3);
        let back = Block::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(back, b);
        assert!(back.tx_root_matches());
    }

    #[test]
    fn block_hash_changes_with_contents() {
        let b1 = sample_block(1);
        let b2 = sample_block(2);
        assert_ne!(b1.header.hash(), b2.header.hash());
    }
}
