//! Block synchronisation over the simulated network.
//!
//! [`ChainReplica`] wraps a [`Blockchain`] in a [`pds2_net::Node`] so a
//! committee of replicas keeps converging under the fault plans of
//! `pds2-net`: missed-block catch-up after partitions, fork choice on
//! rejoin (rebuild from genesis, adopt the longest *valid* chain), and
//! crash-stop recovery (volatile state is wiped, the replica resyncs
//! from its peers).
//!
//! The protocol is deliberately simple — this is PoA with round-robin
//! proposers, so at most one honest node produces a given height and
//! honest forks cannot occur. What the chaos tests exercise is the
//! *repair* machinery:
//!
//! * a proposer whose turn arrives broadcasts [`SyncMsg::NewBlock`];
//! * every replica periodically broadcasts [`SyncMsg::Announce`] with
//!   its height; a peer that is behind answers with a
//!   [`SyncMsg::Request`], and the head replies with the missing suffix
//!   in a [`SyncMsg::Blocks`] batch;
//! * corrupted blocks (byzantine links flip bits in flight) fail
//!   validation and are counted in [`ChainReplica::blocks_rejected`],
//!   never applied;
//! * a crashed replica loses everything but its keys and config
//!   ([`crate::chain::Blockchain`] is rebuilt from the genesis factory)
//!   and resynchronises on recovery before it is allowed to propose
//!   again — unless it was built with [`ChainReplica::new_persistent`],
//!   in which case it first restores snapshot + log from its durable
//!   [`ChainLog`] and only fetches the missing suffix from peers.

use crate::block::Block;
use crate::chain::{Blockchain, ChainError};
use parking_lot::Mutex;
use pds2_crypto::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use pds2_crypto::sha256::Digest;
use pds2_net::{Ctx, Node, NodeId};
use pds2_storage::chainlog::ChainLog;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Messages exchanged by chain replicas.
#[derive(Clone, Debug)]
pub enum SyncMsg {
    /// A freshly produced block, broadcast by its proposer.
    NewBlock(Block),
    /// "Send me your blocks from this height on."
    Request {
        /// First height the requester is missing.
        from_height: u64,
    },
    /// A batch of consecutive blocks answering a [`SyncMsg::Request`].
    Blocks(Vec<Block>),
    /// Periodic head gossip driving catch-up.
    Announce {
        /// The announcer's chain height.
        height: u64,
    },
}

/// Message-kind tags (used for targeted drops and the trace).
pub mod kind {
    /// [`super::SyncMsg::NewBlock`].
    pub const NEW_BLOCK: u8 = 1;
    /// [`super::SyncMsg::Request`].
    pub const REQUEST: u8 = 2;
    /// [`super::SyncMsg::Blocks`].
    pub const BLOCKS: u8 = 3;
    /// [`super::SyncMsg::Announce`].
    pub const ANNOUNCE: u8 = 4;
}

impl Encode for SyncMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            SyncMsg::NewBlock(b) => {
                enc.put_u8(kind::NEW_BLOCK);
                b.encode(enc);
            }
            SyncMsg::Request { from_height } => {
                enc.put_u8(kind::REQUEST);
                enc.put_u64(*from_height);
            }
            SyncMsg::Blocks(blocks) => {
                enc.put_u8(kind::BLOCKS);
                enc.put_seq(blocks);
            }
            SyncMsg::Announce { height } => {
                enc.put_u8(kind::ANNOUNCE);
                enc.put_u64(*height);
            }
        }
    }
}

impl Decode for SyncMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.get_u8()? {
            kind::NEW_BLOCK => Ok(SyncMsg::NewBlock(Block::decode(dec)?)),
            kind::REQUEST => Ok(SyncMsg::Request {
                from_height: dec.get_u64()?,
            }),
            kind::BLOCKS => Ok(SyncMsg::Blocks(dec.get_seq()?)),
            kind::ANNOUNCE => Ok(SyncMsg::Announce {
                height: dec.get_u64()?,
            }),
            tag => Err(DecodeError::InvalidTag(tag)),
        }
    }
}

/// Factory rebuilding the genesis [`Blockchain`] (same committee, same
/// allocations, same registry) — a crashed replica's durable config.
pub type GenesisFactory = Arc<dyn Fn() -> Blockchain + Send + Sync>;

const TIMER_PRODUCE: u64 = 1;
const TIMER_ANNOUNCE: u64 = 2;

/// One PoA validator (or observer) participating in block sync.
pub struct ChainReplica {
    chain: Blockchain,
    genesis: GenesisFactory,
    /// This replica's slot in the round-robin committee (`None` for a
    /// non-producing observer).
    validator_index: Option<usize>,
    n_validators: usize,
    /// Virtual µs between production attempts.
    produce_interval_us: u64,
    /// Virtual µs between head announcements.
    announce_interval_us: u64,
    /// While `true` the replica is catching up and must not propose
    /// (a stale proposer would re-sign an already-decided height).
    syncing: bool,
    /// Durable store surviving crash-stop faults (`None` = volatile
    /// replica that rebuilds from genesis on crash, the pre-§5g
    /// behaviour).
    store: Option<Arc<Mutex<ChainLog>>>,
    /// Snapshot cadence handed to the chain alongside the store.
    snapshot_every: u64,
    /// Blocks produced by this replica.
    pub blocks_produced: u64,
    /// External blocks applied (NewBlock + catch-up batches).
    pub blocks_applied: u64,
    /// External blocks that failed validation (corruption, stale, forged).
    pub blocks_rejected: u64,
    /// Catch-up requests sent.
    pub catchup_requests: u64,
    /// Times the fork-choice rule replaced the local chain wholesale.
    pub forks_adopted: u64,
    /// Transactions from orphaned fork blocks (or the pre-fork mempool)
    /// readmitted into the pool after a fork switch.
    pub txs_reinstated: u64,
    /// One `(height, block hash)` digest checkpoint per block this
    /// replica currently holds. Block hashes commit to their parents,
    /// so the list is a chained-digest sequence: equal entries at
    /// height `h` certify identical chains through `h`, and two
    /// replicas' lists bisect to the exact forking height
    /// ([`pds2_obs::diff::first_divergent_height`]) without comparing
    /// block bodies.
    block_checkpoints: Vec<(u64, Digest)>,
}

impl ChainReplica {
    /// Creates a replica from its durable configuration. The chain starts
    /// at the genesis state produced by `genesis`.
    pub fn new(
        genesis: GenesisFactory,
        validator_index: Option<usize>,
        produce_interval_us: u64,
        announce_interval_us: u64,
    ) -> ChainReplica {
        let chain = genesis();
        let n_validators = chain.validator_set().len();
        ChainReplica {
            chain,
            genesis,
            validator_index,
            n_validators,
            produce_interval_us,
            announce_interval_us,
            syncing: false,
            store: None,
            snapshot_every: 0,
            blocks_produced: 0,
            blocks_applied: 0,
            blocks_rejected: 0,
            catchup_requests: 0,
            forks_adopted: 0,
            txs_reinstated: 0,
            block_checkpoints: Vec::new(),
        }
    }

    /// Creates a replica whose chain journals blocks and admitted
    /// transactions into `store` (snapshotting every `snapshot_every`
    /// blocks). A crash-stop fault then recovers from snapshot + log
    /// replay instead of wiping to genesis — see
    /// [`Blockchain::recover_from_store`].
    pub fn new_persistent(
        genesis: GenesisFactory,
        validator_index: Option<usize>,
        produce_interval_us: u64,
        announce_interval_us: u64,
        store: Arc<Mutex<ChainLog>>,
        snapshot_every: u64,
    ) -> ChainReplica {
        let mut replica = ChainReplica::new(
            genesis,
            validator_index,
            produce_interval_us,
            announce_interval_us,
        );
        replica.chain.attach_store(store.clone(), snapshot_every);
        replica.store = Some(store);
        replica.snapshot_every = snapshot_every;
        replica
    }

    /// The wrapped chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// Mutable access (tests inject transactions through this).
    pub fn chain_mut(&mut self) -> &mut Blockchain {
        &mut self.chain
    }

    /// Whether the replica is currently resynchronising.
    pub fn is_syncing(&self) -> bool {
        self.syncing
    }

    /// The per-block digest checkpoints of the replica's current chain
    /// (`(height, block hash)`, ascending height).
    pub fn block_checkpoints(&self) -> &[(u64, Digest)] {
        &self.block_checkpoints
    }

    /// First height at which this replica's chain and `other`'s
    /// disagree, or `None` when one is a prefix of the other of equal
    /// length. Chaos harnesses call this after a run to localize a
    /// replica divergence to its forking block without diffing block
    /// bodies — the seed of the committee checkpoint fraud proof
    /// (ROADMAP item 1).
    pub fn first_divergent_height(&self, other: &ChainReplica) -> Option<u64> {
        pds2_obs::diff::first_divergent_height(&self.block_checkpoints, &other.block_checkpoints)
    }

    /// Reconciles the checkpoint list with the chain after any apply,
    /// fork switch, or crash recovery. Block hashes chain, so if the
    /// tail entry still matches its block the whole prefix matches;
    /// otherwise entries invalidated by rewritten history pop off
    /// before the new suffix is recorded.
    fn record_block_checkpoints(&mut self) {
        let blocks = self.chain.blocks();
        self.block_checkpoints.truncate(blocks.len());
        while let Some((_, digest)) = self.block_checkpoints.last() {
            let i = self.block_checkpoints.len() - 1;
            if blocks[i].header.hash() == *digest {
                break;
            }
            self.block_checkpoints.pop();
        }
        for block in &blocks[self.block_checkpoints.len()..] {
            self.block_checkpoints
                .push((block.header.height, block.header.hash()));
        }
    }

    fn my_turn(&self) -> bool {
        self.validator_index
            .is_some_and(|i| (self.chain.height() as usize) % self.n_validators == i)
    }

    fn broadcast(&self, ctx: &mut Ctx<'_, SyncMsg>, msg: SyncMsg) {
        for to in 0..ctx.n_nodes {
            if to != ctx.id {
                ctx.send(to, msg.clone());
            }
        }
    }

    /// Applies consecutive external blocks, skipping any already-known
    /// prefix, with signature verification pipelined one block ahead of
    /// state application. Returns `Err` on the first validation failure.
    fn apply_batch(&mut self, blocks: &[Block]) -> Result<(), ChainError> {
        let start = blocks
            .iter()
            .position(|b| b.header.height >= self.chain.height())
            .unwrap_or(blocks.len());
        match self.chain.apply_external_blocks_pipelined(&blocks[start..]) {
            Ok(n) => {
                self.blocks_applied += n as u64;
                Ok(())
            }
            Err((applied, e)) => {
                self.blocks_applied += applied as u64;
                Err(e)
            }
        }
    }

    /// Fork choice on rejoin: rebuild from genesis and re-validate the
    /// offered chain end to end; adopt it iff it is valid and strictly
    /// longer than the local one. Returns whether the switch happened.
    ///
    /// On a switch, every transaction the abandoned fork carried — in its
    /// orphaned blocks or still pending in its mempool — is fed back
    /// through admission on the adopted chain, so work the doomed fork
    /// accepted is not silently lost: transactions the new chain already
    /// includes (or whose nonce it consumed) drop out as duplicates, the
    /// rest wait in the pool for the next block.
    fn adopt_if_longer(&mut self, blocks: &[Block]) -> bool {
        if blocks.len() as u64 <= self.chain.height() {
            return false;
        }
        let mut candidate = (self.genesis)();
        if candidate.apply_external_blocks_pipelined(blocks).is_err() {
            self.blocks_rejected += 1;
            return false;
        }
        self.blocks_applied += blocks.len() as u64;
        self.forks_adopted += 1;
        let orphaned = std::mem::replace(&mut self.chain, candidate);
        let mut reinstated: Vec<crate::tx::SignedTransaction> = Vec::new();
        for block in orphaned.blocks() {
            reinstated.extend(block.transactions.iter().cloned());
        }
        reinstated.extend(orphaned.mempool_txs());
        self.txs_reinstated += self.chain.reinstate_transactions(reinstated) as u64;
        true
    }
}

impl Node for ChainReplica {
    type Msg = SyncMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, SyncMsg>) {
        self.chain.set_trace_ctx(ctx.incoming());
        // Stagger by id so same-instant production/announce rounds keep a
        // stable per-node order without relying on queue tie-breaks.
        ctx.set_timer(self.produce_interval_us + ctx.id as u64, TIMER_PRODUCE);
        ctx.set_timer(self.announce_interval_us + ctx.id as u64, TIMER_ANNOUNCE);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SyncMsg>, tag: u64) {
        self.chain.set_trace_ctx(ctx.incoming());
        match tag {
            TIMER_PRODUCE => {
                if !self.syncing && self.my_turn() {
                    let block = self.chain.produce_block();
                    self.blocks_produced += 1;
                    self.record_block_checkpoints();
                    self.broadcast(ctx, SyncMsg::NewBlock(block));
                }
                ctx.set_timer(self.produce_interval_us, TIMER_PRODUCE);
            }
            TIMER_ANNOUNCE => {
                self.broadcast(
                    ctx,
                    SyncMsg::Announce {
                        height: self.chain.height(),
                    },
                );
                ctx.set_timer(self.announce_interval_us, TIMER_ANNOUNCE);
            }
            _ => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SyncMsg>, from: NodeId, msg: SyncMsg) {
        // Chain operations triggered by this message (apply, validate,
        // produce) run under the sender's causal context: cross-node hops
        // become parent→child edges in the trace DAG.
        self.chain.set_trace_ctx(ctx.incoming());
        match msg {
            SyncMsg::NewBlock(block) => {
                let height = block.header.height;
                if height == self.chain.height() {
                    match self.chain.apply_external_block(&block) {
                        Ok(()) => {
                            self.blocks_applied += 1;
                            self.syncing = false;
                        }
                        Err(_) => self.blocks_rejected += 1,
                    }
                } else if height > self.chain.height() {
                    // Missed at least one block: ask the proposer for the
                    // gap instead of applying out of order.
                    self.catchup_requests += 1;
                    ctx.send(
                        from,
                        SyncMsg::Request {
                            from_height: self.chain.height(),
                        },
                    );
                }
                // Blocks below our height are stale duplicates: ignore.
            }
            SyncMsg::Request { from_height } => {
                let have = self.chain.height();
                if from_height < have {
                    let batch: Vec<Block> = self.chain.blocks()[from_height as usize..].to_vec();
                    ctx.send(from, SyncMsg::Blocks(batch));
                }
            }
            SyncMsg::Blocks(blocks) => {
                if self.apply_batch(&blocks).is_err() {
                    // The suffix does not extend our chain (we diverged
                    // while isolated, or a block was corrupted in flight).
                    // Re-request the peer's full chain and let the
                    // fork-choice rule arbitrate.
                    self.blocks_rejected += 1;
                    if blocks.first().is_some_and(|b| b.header.height > 0) {
                        self.catchup_requests += 1;
                        ctx.send(from, SyncMsg::Request { from_height: 0 });
                    }
                } else if !blocks.is_empty() {
                    self.syncing = false;
                }
                if blocks.first().is_some_and(|b| b.header.height == 0) {
                    // Full-chain offer: apply fork choice even if the
                    // incremental path failed.
                    self.adopt_if_longer(&blocks);
                    if blocks.len() as u64 <= self.chain.height() {
                        self.syncing = false;
                    }
                }
            }
            SyncMsg::Announce { height } => {
                if height > self.chain.height() {
                    self.catchup_requests += 1;
                    ctx.send(
                        from,
                        SyncMsg::Request {
                            from_height: self.chain.height(),
                        },
                    );
                } else if self.syncing && height <= self.chain.height() {
                    // Nobody visible is ahead of us any more.
                    self.syncing = false;
                }
            }
        }
        self.record_block_checkpoints();
    }

    fn msg_size(msg: &SyncMsg) -> u64 {
        msg.to_bytes().len() as u64
    }

    fn msg_kind(msg: &SyncMsg) -> u8 {
        match msg {
            SyncMsg::NewBlock(_) => kind::NEW_BLOCK,
            SyncMsg::Request { .. } => kind::REQUEST,
            SyncMsg::Blocks(_) => kind::BLOCKS,
            SyncMsg::Announce { .. } => kind::ANNOUNCE,
        }
    }

    fn msg_digest(msg: &SyncMsg) -> u64 {
        msg.content_hash().fold_u64()
    }

    /// Byzantine corruption: flip one random bit of the wire encoding and
    /// re-decode. If the mangled bytes no longer parse, the frame is
    /// destroyed; if they do, the receiver gets a structurally valid but
    /// semantically corrupt message its validation must catch.
    fn corrupt_msg(msg: &SyncMsg, rng: &mut StdRng) -> Option<SyncMsg> {
        let mut bytes = msg.to_bytes();
        if bytes.is_empty() {
            return None;
        }
        let bit = rng.random_range(0..bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        SyncMsg::from_bytes(&bytes).ok()
    }

    /// Crash-stop: everything volatile is lost. A persistent replica
    /// recovers from its snapshot + log (journaled but unincluded
    /// transactions re-enter the mempool); a volatile one only keeps its
    /// keys and genesis config (encoded in the factory). Either way the
    /// replica resyncs from peers before proposing again.
    fn on_crash(&mut self) {
        self.chain = match &self.store {
            Some(store) => {
                Blockchain::recover_from_store((self.genesis)(), store.clone(), self.snapshot_every)
            }
            None => (self.genesis)(),
        };
        self.syncing = true;
        self.record_block_checkpoints();
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, SyncMsg>) {
        self.chain.set_trace_ctx(ctx.incoming());
        // Re-arm timers (the crash dropped the schedule) and ask every
        // peer for the canonical chain before proposing again.
        ctx.set_timer(self.produce_interval_us + ctx.id as u64, TIMER_PRODUCE);
        ctx.set_timer(self.announce_interval_us + ctx.id as u64, TIMER_ANNOUNCE);
        self.catchup_requests += 1;
        self.broadcast(
            ctx,
            SyncMsg::Request {
                from_height: self.chain.height(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::chain::ChainConfig;
    use crate::contract::ContractRegistry;
    use pds2_crypto::KeyPair;

    fn factory() -> GenesisFactory {
        Arc::new(|| {
            Blockchain::new(
                (0..3).map(|i| KeyPair::from_seed(9_000 + i)).collect(),
                &[(Address::of(&KeyPair::from_seed(1).public), 1_000_000)],
                ContractRegistry::new(),
                ChainConfig::default(),
            )
        })
    }

    #[test]
    fn sync_msg_codec_roundtrip() {
        let f = factory();
        let mut chain = f();
        let block = chain.produce_block();
        let msgs = [
            SyncMsg::NewBlock(block),
            SyncMsg::Request { from_height: 7 },
            SyncMsg::Blocks(chain.blocks().to_vec()),
            SyncMsg::Announce { height: 3 },
        ];
        for msg in &msgs {
            let back = SyncMsg::from_bytes(&msg.to_bytes()).unwrap();
            assert_eq!(back.to_bytes(), msg.to_bytes());
            assert_eq!(ChainReplica::msg_kind(&back), ChainReplica::msg_kind(msg));
        }
    }

    #[test]
    fn unknown_tag_fails_to_decode() {
        assert!(SyncMsg::from_bytes(&[99]).is_err());
    }

    #[test]
    fn corrupt_msg_never_panics_and_often_survives_decoding() {
        use rand::SeedableRng;
        let f = factory();
        let mut chain = f();
        let block = chain.produce_block();
        let msg = SyncMsg::NewBlock(block);
        let mut rng = StdRng::seed_from_u64(5);
        let mut survived = 0;
        for _ in 0..200 {
            if let Some(mangled) = ChainReplica::corrupt_msg(&msg, &mut rng) {
                survived += 1;
                // A surviving corruption must differ from the original.
                assert_ne!(mangled.to_bytes(), msg.to_bytes());
            }
        }
        assert!(survived > 0, "some corruptions should still decode");
    }

    #[test]
    fn adopt_if_longer_takes_valid_longer_chain_only() {
        let f = factory();
        let mut canonical = f();
        for _ in 0..4 {
            canonical.produce_block();
        }
        let mut replica = ChainReplica::new(f, Some(0), 1_000, 5_000);
        replica.chain_mut().produce_block();
        assert_eq!(replica.chain().height(), 1);

        // Shorter offer: refused.
        assert!(!replica.adopt_if_longer(&canonical.blocks()[..1]));
        // Tampered offer: refused.
        let mut forged = canonical.blocks().to_vec();
        forged[2].header.height = 9;
        assert!(!replica.adopt_if_longer(&forged));
        assert_eq!(replica.blocks_rejected, 1);
        // Valid longer offer: adopted wholesale.
        assert!(replica.adopt_if_longer(canonical.blocks()));
        assert_eq!(replica.chain().height(), 4);
        assert_eq!(replica.chain().head_hash(), canonical.head_hash());
        assert_eq!(replica.forks_adopted, 1);
    }

    #[test]
    fn fork_adoption_reinstates_orphaned_transactions() {
        use crate::tx::{Transaction, TxKind};
        let f = factory();
        let mut canonical = f();
        for _ in 0..4 {
            canonical.produce_block();
        }
        let mut replica = ChainReplica::new(f, Some(0), 1_000, 5_000);
        let alice = KeyPair::from_seed(1);
        let bob = Address::of(&KeyPair::from_seed(2).public);
        let tx = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer {
                to: bob,
                amount: 42,
            },
            gas_limit: 100_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        let h = replica.chain_mut().submit(tx).unwrap();
        replica.chain_mut().produce_block(); // included on the doomed fork
        assert!(replica.chain().receipt(&h).is_some());

        // The longer canonical chain (no alice tx) replaces the fork; the
        // orphaned transaction must re-enter the pool, not vanish.
        assert!(replica.adopt_if_longer(canonical.blocks()));
        assert_eq!(replica.txs_reinstated, 1);
        assert_eq!(replica.chain().mempool_len(), 1);
        assert!(replica.chain().receipt(&h).is_none(), "not yet re-included");

        // The next block on the adopted chain re-includes it.
        let b = replica.chain_mut().produce_block();
        assert_eq!(b.transactions.len(), 1);
        assert_eq!(b.transactions[0].hash(), h);
        assert_eq!(replica.chain().state.balance(&bob), 42);
    }

    #[test]
    fn crash_wipes_to_genesis() {
        let f = factory();
        let mut replica = ChainReplica::new(f, Some(0), 1_000, 5_000);
        replica.chain_mut().produce_block();
        assert_eq!(replica.chain().height(), 1);
        replica.on_crash();
        assert_eq!(replica.chain().height(), 0);
        assert!(replica.is_syncing());
    }

    #[test]
    fn persistent_crash_recovers_from_store() {
        use crate::tx::{Transaction, TxKind};
        let f = factory();
        let store = Arc::new(Mutex::new(ChainLog::new()));
        let mut replica = ChainReplica::new_persistent(f, Some(0), 1_000, 5_000, store, 2);
        for _ in 0..3 {
            replica.chain_mut().produce_block();
        }
        // A journaled-but-unincluded transaction must survive the crash.
        let alice = KeyPair::from_seed(1);
        let tx = Transaction {
            from: alice.public.clone(),
            nonce: 0,
            kind: TxKind::Transfer {
                to: Address::of(&KeyPair::from_seed(2).public),
                amount: 7,
            },
            gas_limit: 100_000,
            max_fee_per_gas: 0,
            priority_fee_per_gas: 0,
        }
        .sign(&alice);
        replica.chain_mut().submit(tx).unwrap();
        let head = replica.chain().head_hash();
        let root = replica.chain().state.state_root();

        replica.on_crash();
        assert_eq!(replica.chain().height(), 3, "blocks replayed from the log");
        assert_eq!(replica.chain().head_hash(), head);
        assert_eq!(replica.chain().state.state_root(), root);
        assert_eq!(replica.chain().mempool_len(), 1, "pending tx reinstated");
        assert!(replica.is_syncing(), "still resyncs before proposing");
        // The recovered chain keeps journaling: the next block persists.
        replica.chain_mut().produce_block();
        assert!(replica.chain().has_store());
    }
}
